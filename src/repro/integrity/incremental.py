"""Incremental Merkle tree: lazy subtrees plus a deferred-update scheduler.

The eager :class:`~repro.integrity.merkle.MerkleTree` materializes every
node at ``build()`` and walks to the root on every update — fine for the
paper's working-set sizes, prohibitive for multi-GB covered ranges where
a workload only ever touches a sparse sliver. This implementation follows
the deferred-maintenance direction of Freij et al. (*Streamlining
Integrity Tree Updates for Secure Persistent Non-Volatile Memory*):

Lazy subtrees
    ``build()`` is O(1): it anchors the root over the deterministic
    zero-fill image and materializes nothing. An *unmaterialized* node is
    definitionally the zero block — the on-chip materialization set (the
    complement of what has been written) vouches for it, so it costs no
    memory read and no MAC check. A level-1 node is *adopted* on first
    touch: its MAC slots are computed from the covered blocks' current
    memory content (lazy measurement, the same trust step as an eager
    boot-time ``build()``, taken per-subtree on demand).

Scheduled, coalesced updates
    ``update()`` touches exactly one node: the leaf's parent is patched
    in an on-chip *dirty set* — a write-back cache of node blocks whose
    current bytes have not reached memory. Re-hashing of the levels above
    is deferred to :meth:`drain`, which walks the dirty set bottom-up:
    each dirty node is written back once, its MAC patched into its parent
    (dirtying it in turn), and the root register is refreshed once per
    batch when the top node lands. Overlapping dirty paths therefore
    merge — ``arity`` leaf updates under one parent cost one node write
    and one parent patch instead of ``arity`` full walks.

Soundness through the half-built tree
    Verification resolves nodes dirty-first: a dirty node's bytes are
    on-chip and trusted outright; a clean materialized node is fetched
    from memory and checked against its parent's *effective* (dirty or
    verified) bytes. The invariant is that a clean child's MAC slot in
    its parent's effective bytes always matches the child's memory
    content, so any tamper after a block was first measured raises
    :class:`IntegrityError` at any point mid-amortization, with any
    partial drain in between. What the lazy tree deliberately does not
    detect is tampering with blocks *never yet touched* — they have not
    been measured, exactly as pre-boot memory is unmeasured for the
    eager tree.

After ``drain(full=True)`` — adopt every level-1 node, then drain — the
tree is node-for-node identical to an eager build over the same memory;
property tests pin that root equality.
"""

from __future__ import annotations

from ..mem.layout import BLOCK_SIZE, block_address
from ..core.errors import IntegrityError
from .merkle import MerkleTreeBase


class IncrementalMerkleTree(MerkleTreeBase):
    """Lazy-materialization tree with a coalescing update scheduler.

    ``coalesce=True`` (the default) queues dirty paths and merges them at
    the next :meth:`drain` / :meth:`flush_pending`; ``coalesce=False``
    keeps the lazy subtrees but drains each update's path as soon as it
    is scheduled, refreshing the root per update like the eager tree.
    """

    def __init__(self, memory, geometry, mac, trusted_capacity=None, coalesce=True):
        super().__init__(memory, geometry, mac, trusted_capacity=trusted_capacity)
        self.coalesce = coalesce
        # On-chip write-back cache: (level, index) -> current node bytes
        # not yet written to memory. Authoritative over memory and over
        # the clean trusted cache.
        self._dirty: dict[tuple[int, int], bytes] = {}
        # Nodes whose bytes have ever been written to memory. Everything
        # else is definitionally the zero block (level >= 2) or awaits
        # adoption (level 1). Persisted across hibernation.
        self._materialized: set[tuple[int, int]] = set()
        # Statistics.
        self.scheduled_updates = 0
        self.coalesced_updates = 0  # updates absorbed into an already-dirty node
        self.drained_nodes = 0  # node blocks written back by drains
        self.drains = 0  # drain batches that wrote at least one node
        self.adoptions = 0  # level-1 nodes materialized on first touch

    # -- construction ----------------------------------------------------------

    def build(self) -> None:
        """Anchor the root over the zero image — O(1), nothing materialized.

        Covered memory and the node region start zero-filled (the
        :class:`~repro.mem.dram.BlockMemory` is sparse), so the root over
        the all-zero top node is consistent with what memory holds;
        subtrees earn real content on first touch.
        """
        self._dirty.clear()
        self._materialized.clear()
        self._trusted.clear()
        self._root_mac_memo = None
        self.root.store(self._mac_top(bytes(BLOCK_SIZE)))

    # -- node resolution -------------------------------------------------------

    def _node_address(self, level: int, index: int) -> int:
        return self.geometry.level_bases[level - 1] + index * BLOCK_SIZE

    def _adopt(self, index: int) -> bytes:
        """Materialize level-1 node ``index`` from current leaf memory.

        This is the lazy-measurement step: the subtree's covered blocks
        are measured now, exactly as an eager ``build()`` would have
        measured them at boot. The fresh node enters the dirty set (its
        bytes are on-chip only until the next drain)."""
        geometry = self.geometry
        mac_bytes = self.mac.mac_bytes
        first, count = geometry.node_child_range(1, index)
        node = bytearray(BLOCK_SIZE)
        for slot in range(count):
            child = first + slot
            leaf = self.memory.read_block(geometry.covered_start + child * BLOCK_SIZE)
            node[slot * mac_bytes : (slot + 1) * mac_bytes] = self._mac_child(leaf, 0, child)
        node_bytes = bytes(node)
        self.adoptions += 1
        self._set_dirty(1, index, node_bytes)
        return node_bytes

    def _set_dirty(self, level: int, index: int, node_bytes: bytes) -> None:
        """Install a node's current bytes in the on-chip dirty set.

        Any clean trusted copy of the same node is stale and dropped —
        the dirty bytes are now the node's only truth."""
        self._dirty[(level, index)] = node_bytes
        self._trusted.pop(self._node_address(level, index), None)

    def _trusted_node(self, level: int, index: int) -> bytes:
        """Current *effective* bytes of node (level, index), trusted.

        Resolution order: dirty set (on-chip, trusted outright) → clean
        trusted cache → unmaterialized (zero block at level >= 2, adopt
        at level 1) → memory fetch verified against the parent's
        effective bytes (or the root register at the top)."""
        key = (level, index)
        dirty = self._dirty.get(key)
        if dirty is not None:
            self.trusted_hits += 1
            return dirty
        address = self._node_address(level, index)
        cached = self._trusted.get(address)
        if cached is not None:
            self.trusted_hits += 1
            self._trusted.move_to_end(address)
            return cached
        if key not in self._materialized:
            if level == 1:
                return self._adopt(index)
            # Unbuilt subtree: the deterministic zero block, vouched for
            # by the on-chip materialization set — no memory read.
            return bytes(BLOCK_SIZE)
        raw = self.memory.read_block(address)
        self.node_fetches += 1
        if level == self.geometry.levels:
            if self.root.value is None:
                raise IntegrityError("tree has no root; call build() first", kind="root")
            if self._mac_top(raw) != self.root.value:
                raise IntegrityError(
                    f"Merkle root mismatch for top node at {address:#x}",
                    address=address,
                    kind="root",
                )
        else:
            parent = self._trusted_node(level + 1, index // self.geometry.arity)
            slot = index % self.geometry.arity
            mac_bytes = self.mac.mac_bytes
            stored = parent[slot * mac_bytes : (slot + 1) * mac_bytes]
            if self._mac_child(raw, level, index) != stored:
                raise IntegrityError(
                    f"Merkle node mismatch at level {level}, index {index}",
                    address=address,
                    kind="node",
                )
        self._trust(address, raw)
        return raw

    # -- verification ----------------------------------------------------------

    def verify(self, address: int, data: bytes | None = None) -> None:
        """Verify the covered block at ``address`` against the effective tree.

        The parent resolves through the dirty set first, so verification
        is sound at any point mid-amortization — queued updates count."""
        self.verifications += 1
        geometry = self.geometry
        index = geometry.child_index(address)
        raw = data if data is not None else self.memory.read_block(block_address(address))
        parent = self._trusted_node(1, index // geometry.arity)
        slot = index % geometry.arity
        mac_bytes = self.mac.mac_bytes
        stored = parent[slot * mac_bytes : (slot + 1) * mac_bytes]
        if self._mac_child(raw, 0, index) != stored:
            raise IntegrityError(
                f"Merkle leaf mismatch for block at {address:#x}",
                address=address,
                kind="leaf",
            )

    # -- update scheduling -----------------------------------------------------

    def update(self, address: int, new_data: bytes) -> None:
        """Schedule re-anchoring of the covered block at ``address``.

        ``new_data`` must already be the block's bytes in memory. Only
        the leaf's parent is touched: its slot is patched in the dirty
        set; re-hashing the levels above waits for the next drain. In
        non-coalescing mode the path drains immediately."""
        geometry = self.geometry
        index = geometry.child_index(address)
        parent_index = index // geometry.arity
        # Dirty-by-a-previous-update is what coalescing absorbs; resolving
        # the parent below may adopt it (dirtying it as a side effect), so
        # snapshot first.
        was_dirty = (1, parent_index) in self._dirty
        parent = bytearray(self._trusted_node(1, parent_index))
        slot = index % geometry.arity
        mac_bytes = self.mac.mac_bytes
        parent[slot * mac_bytes : (slot + 1) * mac_bytes] = self._mac_child(new_data, 0, index)
        self.scheduled_updates += 1
        if was_dirty:
            self.coalesced_updates += 1
        self._set_dirty(1, parent_index, bytes(parent))
        if not self.coalesce:
            self.flush_pending(block_address(address), BLOCK_SIZE)

    # -- draining --------------------------------------------------------------

    def _drain_dirty(self, targets: set[tuple[int, int]] | None, budget: int | None) -> int:
        """Write back dirty nodes bottom-up, optionally limited to
        ``targets`` and/or a node ``budget``. Returns nodes written.

        Bottom-up order makes a budget cut sound: a written child's MAC
        lands in its (still dirty, on-chip) parent before anything above
        is considered, so the invariant — clean children match their
        parent's effective slot — holds at every prefix."""
        geometry = self.geometry
        arity = geometry.arity
        mac_bytes = self.mac.mac_bytes
        levels = geometry.levels
        written = 0
        for level in range(1, levels + 1):
            keys = sorted(key for key in self._dirty if key[0] == level)
            if targets is not None:
                keys = [key for key in keys if key in targets]
            for key in keys:
                if budget is not None and written >= budget:
                    if written:
                        self.drains += 1
                    return written
                node_bytes = self._dirty.pop(key)
                _, index = key
                self.memory.write_block(self._node_address(level, index), node_bytes)
                self._materialized.add(key)
                self._trust(self._node_address(level, index), node_bytes)
                written += 1
                self.drained_nodes += 1
                if level == levels:
                    # One root refresh per batch: the single top node.
                    self.root.store(self._mac_top(node_bytes))
                    self._root_mac_memo = None
                else:
                    parent_index = index // arity
                    parent = bytearray(self._trusted_node(level + 1, parent_index))
                    slot = index % arity
                    parent[slot * mac_bytes : (slot + 1) * mac_bytes] = self._mac_child(
                        node_bytes, level, index
                    )
                    self._set_dirty(level + 1, parent_index, bytes(parent))
        if written:
            self.drains += 1
        return written

    def drain(self, budget: int | None = None, full: bool = False) -> int:
        """Apply up to ``budget`` pending node writes (all, if None).

        ``full=True`` first adopts every level-1 node, then drains
        everything (``budget`` is ignored): the finished tree is
        node-for-node identical to an eager build over the same memory.
        """
        if full:
            for index in range(self.geometry.level_counts[0]):
                key = (1, index)
                if key not in self._materialized and key not in self._dirty:
                    self._adopt(index)
            budget = None
        return self._drain_dirty(None, budget)

    def flush_pending(self, start: int | None = None, length: int | None = None) -> int:
        """Drain the dirty nodes on the paths covering [start, start+length).

        Ancestors of the range's leaves are included up to the root, so
        the root register covers the flushed region afterwards. With no
        arguments, drains everything."""
        if start is None:
            return self._drain_dirty(None, None)
        geometry = self.geometry
        span = BLOCK_SIZE if length is None else length
        targets: set[tuple[int, int]] = set()
        for addr in range(block_address(start), start + span, BLOCK_SIZE):
            if not geometry.covers(addr):
                continue
            for ref in geometry.walk(addr):
                targets.add((ref.level, ref.index))
        if not targets:
            return 0
        return self._drain_dirty(targets, None)

    # -- lifecycle -------------------------------------------------------------

    def clear_volatile(self) -> None:
        """Flush the write-back queue, then drop the clean trusted copies.

        The dirty set is volatile on-chip state holding bytes memory does
        not: a power event must write it back (like any dirty cache)
        before the trusted copies can drop. The root register and the
        materialization set persist, as for the eager tree's root."""
        self._drain_dirty(None, None)
        super().clear_volatile()

    def persist_state(self):
        """Non-volatile state for hibernation: the materialization set.

        Without it a resumed tree would re-adopt already-measured leaves,
        silently blessing any tampering done while powered down — the
        hibernation attack the paper's design detects. The machine calls
        :meth:`flush_pending` first, so the dirty set is empty here."""
        return {"materialized": sorted(self._materialized)}

    def restore_state(self, state) -> None:
        if state:
            self._materialized = {(level, index) for level, index in state["materialized"]}

    # -- gauges ----------------------------------------------------------------

    def pending_updates(self) -> int:
        """Dirty node blocks queued on-chip, not yet written to memory."""
        return len(self._dirty)

    def materialized_fraction(self) -> float:
        """Fraction of the tree's node blocks materialized in memory."""
        total = sum(self.geometry.level_counts)
        return len(self._materialized) / total if total else 1.0

    def coalesce_ratio(self) -> float:
        """Scheduled updates absorbed into an already-dirty node / total."""
        if not self.scheduled_updates:
            return 0.0
        return self.coalesced_updates / self.scheduled_updates
