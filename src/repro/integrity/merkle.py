"""Functional Merkle trees over a region of (attackable) physical memory.

This is the real thing, not a timing abstraction: node blocks live in the
:class:`~repro.mem.dram.BlockMemory` where an adversary can flip them, the
root MAC lives in an on-chip register, and every read of a covered block
verifies a MAC chain up to the first *trusted on-chip copy* of a node (the
caching optimization of [Gassend et al. HPCA'03] that the paper builds on).

Two implementations share the :class:`MerkleTreeBase` interface:

* :class:`MerkleTree` (this module) — the eager tree: ``build()``
  materializes every node up front and each ``update()`` walks to the
  root synchronously, write-through.
* :class:`~repro.integrity.incremental.IncrementalMerkleTree` — lazy
  subtree instantiation plus a scheduler that queues dirty paths and
  coalesces them into batched root refreshes (the Freij et al. style of
  deferred tree maintenance; see that module's docstring).

Trusted copies are write-through here: updates recompute the MAC chain,
store new node bytes both on-chip and in memory, and finally refresh the
root register. Evicting a trusted copy is therefore always safe.

Node blocks are mutated only through the tree's own update/scheduler API
— the SCH002 lint rule holds the rest of the repository to that (no
direct node-store writes outside ``repro.integrity``), so every path
that can move the root is auditable in this package.
"""

from __future__ import annotations

from collections import OrderedDict

from ..crypto.mac import MacFunction
from ..mem.dram import BlockMemory
from ..mem.layout import BLOCK_SIZE, block_address
from ..core.errors import IntegrityError
from .geometry import TreeGeometry


class RootRegister:
    """The on-chip secure register holding the tree's root MAC."""

    def __init__(self):
        self.value: bytes | None = None
        self.updates = 0

    def store(self, mac: bytes) -> None:
        self.value = bytes(mac)
        self.updates += 1


class MerkleTreeBase:
    """The tree interface: shared MAC helpers, trusted-copy cache, root.

    Subclasses implement :meth:`build`, :meth:`verify`, :meth:`update`
    and :meth:`_trusted_node`. The deferred-update surface
    (:meth:`flush_pending`, :meth:`drain`, :meth:`pending_updates`, the
    materialization/coalescing statistics, and the hibernation state
    hooks) defaults to the eager tree's trivial answers, so callers —
    the machine, the swap path, the obs adapters — can treat every tree
    uniformly without knowing which implementation they hold.
    """

    def __init__(
        self,
        memory: BlockMemory,
        geometry: TreeGeometry,
        mac: MacFunction,
        trusted_capacity: int | None = None,
    ):
        self.memory = memory
        self.geometry = geometry
        self.mac = mac
        self.root = RootRegister()
        self._trusted: OrderedDict[int, bytes] = OrderedDict()
        self._trusted_capacity = trusted_capacity
        # verify_root() memo: (top-node raw bytes, MAC over them). Keyed
        # on the bytes themselves, so a stale entry is impossible — any
        # change to the top node misses and recomputes.
        self._root_mac_memo: tuple[bytes, bytes] | None = None
        # Statistics.
        self.verifications = 0
        self.node_fetches = 0  # node blocks read from memory (not on-chip)
        self.trusted_hits = 0

    # -- MAC helpers ---------------------------------------------------------

    def _mac_child(self, child_bytes: bytes, child_level: int, child_index: int) -> bytes:
        """MAC binding a child block to its level and position (anti-splicing)."""
        binding = child_level.to_bytes(2, "big") + child_index.to_bytes(8, "big")
        return self.mac.compute(child_bytes + binding)

    def _mac_top(self, top_bytes: bytes) -> bytes:
        return self.mac.compute(top_bytes + b"\xff\xfftree-root")

    # -- trusted on-chip copies ----------------------------------------------

    def _trust(self, address: int, node_bytes: bytes) -> None:
        cache = self._trusted
        if address in cache:
            cache.move_to_end(address)
        cache[address] = node_bytes
        if self._trusted_capacity is not None and len(cache) > self._trusted_capacity:
            cache.popitem(last=False)  # write-through: safe to drop

    def trusted_nodes(self) -> int:
        return len(self._trusted)

    def clear_volatile(self) -> None:
        """Drop every trusted on-chip node copy (power cycle).

        The root register and the in-memory nodes survive; future reads
        re-verify MAC chains up from memory against the preserved root.
        """
        self._trusted.clear()

    def drop_trusted(self, address: int) -> bool:
        return self._trusted.pop(address, None) is not None

    def invalidate_covered_range(self, start: int, length: int) -> int:
        """Drop trusted copies of every node covering [start, start+length).

        Used when a page is swapped out: future accesses to the reused
        frame must re-verify through memory (paper section 5.1, step 3).
        Only the clean on-chip copies are dropped — a deferred tree's
        pending (dirty, authoritative) state is owned by its scheduler
        and survives until drained.
        """
        geometry = self.geometry
        dropped = set()
        first = block_address(start)
        for addr in range(first, start + length, BLOCK_SIZE):
            if not geometry.covers(addr):
                continue
            for ref in geometry.walk(addr):
                if ref.address in self._trusted and ref.address not in dropped:
                    # Only drop nodes fully inside the invalidated subtree;
                    # upper shared nodes stay (they are still valid).
                    first_child, count = geometry.node_child_range(ref.level, ref.index)
                    if ref.level == 1:
                        child_lo = geometry.covered_start + first_child * BLOCK_SIZE
                        child_hi = child_lo + count * BLOCK_SIZE
                        if start <= child_lo and child_hi <= start + length:
                            dropped.add(ref.address)
        for address in dropped:
            self._trusted.pop(address, None)
        return len(dropped)

    # -- spot checks -----------------------------------------------------------

    def verify_root(self) -> None:
        """Check the top node in memory still matches the root register.

        One block read plus (at most) one MAC — cheap enough for the
        runtime sanitizer to call periodically. Reads via ``raw_read`` so
        the check itself neither consumes pending bus intercepts nor
        shows up in the access log (it models on-chip logic, not a bus
        transaction). The MAC over the top node is memoized on the raw
        bytes themselves: repeated spot checks between updates cost no
        MAC computation, and any change to the node (an update's rewrite
        or an adversary's flip) misses the memo and recomputes.
        """
        if self.root.value is None:
            raise IntegrityError("tree has no root; call build() first", kind="root")
        top_address = self.geometry.level_bases[-1]
        raw = self.memory.raw_read(top_address)
        memo = self._root_mac_memo
        if memo is not None and memo[0] == raw:
            mac = memo[1]
        else:
            mac = self._mac_top(raw)
            self._root_mac_memo = (raw, mac)
        if mac != self.root.value:
            raise IntegrityError(
                f"root register does not match top node at {top_address:#x}",
                address=top_address,
                kind="root",
            )

    # -- the tree contract -----------------------------------------------------

    def build(self) -> None:
        """(Re)establish the root over current memory (secure boot)."""
        raise NotImplementedError

    def verify(self, address: int, data: bytes | None = None) -> None:
        """Verify the covered block at ``address``; raises IntegrityError."""
        raise NotImplementedError

    def update(self, address: int, new_data: bytes) -> None:
        """Re-anchor the tree after the covered block at ``address`` changed."""
        raise NotImplementedError

    def _trusted_node(self, level: int, index: int) -> bytes:
        """Return verified bytes of node (level, index)."""
        raise NotImplementedError

    # -- deferred-update surface (trivial for the eager tree) ------------------

    def pending_updates(self) -> int:
        """Scheduled node updates not yet applied to memory (eager: none)."""
        return 0

    def flush_pending(self, start: int | None = None, length: int | None = None) -> int:
        """Apply pending updates for [start, start+length) — or all of
        them — to memory, refreshing the root. Returns nodes written.

        The swap path calls this when a page's counter run is installed
        (its fresh metadata must be anchored before the image's page root
        can ever verify against it) and the machine calls the no-argument
        form before hibernating (the pending queue is volatile; the
        persisted root must cover what memory holds).
        """
        return 0

    def drain(self, budget: int | None = None, full: bool = False) -> int:
        """Apply up to ``budget`` scheduled node updates (all, if None).

        ``full=True`` additionally materializes every lazy subtree first,
        making the finished tree node-for-node identical to an eager
        build over the same memory — the eager-vs-incremental root
        equality invariant the property tests pin.
        """
        return 0

    def materialized_fraction(self) -> float:
        """Fraction of tree nodes materialized in memory (eager: all)."""
        return 1.0

    def coalesce_ratio(self) -> float:
        """Scheduled updates absorbed by coalescing / total scheduled."""
        return 0.0

    def persist_state(self):
        """Small non-volatile tree state for hibernation (eager: none)."""
        return None

    def restore_state(self, state) -> None:
        """Restore :meth:`persist_state` output after resume."""
        return None

    def restore_root(self, mac: bytes) -> None:
        """Reload the sealed root register after hibernation resume.

        The one sanctioned root write from outside the tree: the value
        comes from the machine's NVRAM capsule, not from a recompute, so
        it goes through this method rather than ``root.store`` directly
        (the SCH002 lint rule holds callers to that).
        """
        self.root.store(mac)
        self._root_mac_memo = None


class MerkleTree(MerkleTreeBase):
    """The eager tree: every node materialized, write-through updates."""

    # -- construction ----------------------------------------------------------

    def build(self) -> None:
        """(Re)compute every node from current memory content.

        Models the secure-boot step the paper assumes has already happened
        (section 3): the processor computes the tree over the loaded image.
        """
        geometry = self.geometry
        arity = geometry.arity
        mac_bytes = self.mac.mac_bytes
        children = geometry.covered_bytes // BLOCK_SIZE
        child_reader = lambda i: self.memory.read_block(geometry.covered_start + i * BLOCK_SIZE)
        for level in range(1, geometry.levels + 1):
            base = geometry.level_bases[level - 1]
            count = geometry.level_counts[level - 1]
            next_reader_blocks = []
            for node_index in range(count):
                node = bytearray(BLOCK_SIZE)
                first = node_index * arity
                for slot in range(min(arity, children - first)):
                    child_index = first + slot
                    mac = self._mac_child(child_reader(child_index), level - 1, child_index)
                    node[slot * mac_bytes : (slot + 1) * mac_bytes] = mac
                node_bytes = bytes(node)
                self.memory.write_block(base + node_index * BLOCK_SIZE, node_bytes)
                next_reader_blocks.append(node_bytes)
            children = count
            child_reader = lambda i, blocks=next_reader_blocks: blocks[i]
        self.root.store(self._mac_top(child_reader(0)))
        self._trusted.clear()
        self._root_mac_memo = None

    # -- verification ------------------------------------------------------------

    def _trusted_node(self, level: int, index: int) -> bytes:
        """Return verified bytes of node (level, index), fetching + checking
        the chain above it as needed."""
        address = self.geometry.level_bases[level - 1] + index * BLOCK_SIZE
        cached = self._trusted.get(cache_key := address)
        if cached is not None:
            self.trusted_hits += 1
            self._trusted.move_to_end(cache_key)
            return cached
        raw = self.memory.read_block(address)
        self.node_fetches += 1
        if level == self.geometry.levels:
            if self.root.value is None:
                raise IntegrityError("tree has no root; call build() first", kind="root")
            if self._mac_top(raw) != self.root.value:
                raise IntegrityError(
                    f"Merkle root mismatch for top node at {address:#x}",
                    address=address,
                    kind="root",
                )
        else:
            parent = self._trusted_node(level + 1, index // self.geometry.arity)
            slot = index % self.geometry.arity
            mac_bytes = self.mac.mac_bytes
            stored = parent[slot * mac_bytes : (slot + 1) * mac_bytes]
            if self._mac_child(raw, level, index) != stored:
                raise IntegrityError(
                    f"Merkle node mismatch at level {level}, index {index}",
                    address=address,
                    kind="node",
                )
        self._trust(address, raw)
        return raw

    def verify(self, address: int, data: bytes | None = None) -> None:
        """Verify the covered block at ``address`` (optionally with the
        just-fetched ``data`` to avoid a re-read). Raises IntegrityError."""
        self.verifications += 1
        geometry = self.geometry
        index = geometry.child_index(address)
        raw = data if data is not None else self.memory.read_block(block_address(address))
        parent = self._trusted_node(1, index // geometry.arity)
        slot = index % geometry.arity
        mac_bytes = self.mac.mac_bytes
        stored = parent[slot * mac_bytes : (slot + 1) * mac_bytes]
        if self._mac_child(raw, 0, index) != stored:
            raise IntegrityError(
                f"Merkle leaf mismatch for block at {address:#x}",
                address=address,
                kind="leaf",
            )

    # -- update ---------------------------------------------------------------

    def update(self, address: int, new_data: bytes) -> None:
        """Re-anchor the tree after the covered block at ``address`` changed.

        ``new_data`` must already be the block's bytes in memory (the
        memory controller writes data first, then updates the tree).
        """
        geometry = self.geometry
        arity = geometry.arity
        mac_bytes = self.mac.mac_bytes
        index = geometry.child_index(address)
        child_bytes = new_data
        for level in range(1, geometry.levels + 1):
            node_index = index // arity
            node = bytearray(self._trusted_node(level, node_index))
            slot = index % arity
            node[slot * mac_bytes : (slot + 1) * mac_bytes] = self._mac_child(
                child_bytes, level - 1, index
            )
            node_bytes = bytes(node)
            node_address = geometry.level_bases[level - 1] + node_index * BLOCK_SIZE
            self.memory.write_block(node_address, node_bytes)
            self._trust(node_address, node_bytes)
            child_bytes = node_bytes
            index = node_index
        self.root.store(self._mac_top(child_bytes))
