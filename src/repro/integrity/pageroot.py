"""Page Root Directory: extending Merkle protection to swap memory.

The paper's section 5.1 insight: the physical memory is covered by the
Merkle tree, so it is *secure storage*. Dedicating a small region of it
to hold the page-root MAC of every swapped-out page makes the single
on-chip root cover the disk as well. Installing or reading a page root
goes through normal protected memory operations, so the directory itself
needs no special handling — the tree covers it.

The page root here is a MAC over the page's full swapped image (cipher-
text + counter block + per-block MACs), computed by the kernel's swap
path; see ``repro.osmodel.swap``.
"""

from __future__ import annotations

from ..mem.dram import BlockMemory
from ..mem.layout import BLOCK_SIZE
from ..core.errors import IntegrityError


class PageRootDirectory:
    """One MAC slot per swap-device page, in tree-covered physical memory.

    Reads and writes must go through the supplied ``metadata_read`` /
    ``metadata_write`` callbacks, which the machine wires to its integrity
    engine so directory accesses are themselves verified and re-anchored.
    """

    def __init__(
        self,
        memory: BlockMemory,
        base: int,
        swap_pages: int,
        mac_bytes: int,
        metadata_read=None,
        metadata_write=None,
    ):
        self.memory = memory
        self.base = base
        self.swap_pages = swap_pages
        self.mac_bytes = mac_bytes
        self.slots_per_block = BLOCK_SIZE // mac_bytes
        # Default to raw access; the machine overrides with verified access.
        self._read = metadata_read or (lambda addr: memory.read_block(addr))
        self._write = metadata_write or (lambda addr, raw: memory.write_block(addr, raw))
        self.installs = 0
        self.lookups = 0

    @property
    def region_bytes(self) -> int:
        blocks = (self.swap_pages + self.slots_per_block - 1) // self.slots_per_block
        return blocks * BLOCK_SIZE

    def _locate(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.swap_pages:
            raise IndexError(f"swap slot {slot} out of range (0..{self.swap_pages - 1})")
        byte_offset = slot * self.mac_bytes
        return self.base + (byte_offset // BLOCK_SIZE) * BLOCK_SIZE, byte_offset % BLOCK_SIZE

    def slot_block_address(self, slot: int) -> int:
        return self._locate(slot)[0]

    def install(self, slot: int, page_root: bytes) -> None:
        """Record the page root of the page now occupying swap ``slot``."""
        if len(page_root) != self.mac_bytes:
            raise ValueError(f"page root must be {self.mac_bytes} bytes")
        block_addr, offset = self._locate(slot)
        raw = bytearray(self._read(block_addr))
        raw[offset : offset + self.mac_bytes] = page_root
        self._write(block_addr, bytes(raw))
        self.installs += 1

    def lookup(self, slot: int) -> bytes:
        """Fetch (with verification) the page root for swap ``slot``."""
        block_addr, offset = self._locate(slot)
        raw = self._read(block_addr)
        self.lookups += 1
        return raw[offset : offset + self.mac_bytes]

    def verify_page_image(self, slot: int, image_mac: bytes) -> None:
        """Compare a recomputed swapped-page MAC against the directory."""
        stored = self.lookup(slot)
        if stored != image_mac:
            raise IntegrityError(
                f"swap page in slot {slot} failed page-root verification",
                kind="swap",
            )
