"""Bonsai Merkle Tree integrity verification (paper section 5.2).

The scheme rests on the paper's claim: with counter-mode encryption, data
blocks need no Merkle coverage provided that

1. each block carries its own keyed MAC,
2. that MAC binds the block's counter value and address, and
3. counter integrity is guaranteed — here, by a (much smaller) Merkle
   tree built over the counter storage.

Replaying an old (ciphertext, MAC) pair then fails because verification
uses the *fresh* counter whose integrity the bonsai tree enforces:
``M_old = H_K(C_old, ctr_old) != H_K(C_old, ctr_fresh)``.

The bonsai tree also covers the page-root directory so swap protection
(section 5.1) composes: counter blocks swap out with their page and the
page root covers data + counters + per-block MACs.
"""

from __future__ import annotations

from .. import fastpath, obs
from ..crypto.mac import MacFunction
from ..mem.dram import BlockMemory
from ..core import sanitizer
from ..core.errors import IntegrityError
from .macs import MacStore
from .merkle import MerkleTree


class BonsaiMerkleIntegrity:
    """Per-block counter-bound MACs + Merkle tree over counters."""

    kind = "bonsai"
    detects_replay = True

    def __init__(self, memory: BlockMemory, store: MacStore, tree: MerkleTree, mac: MacFunction):
        self.memory = memory
        self.store = store
        self.tree = tree  # covers counter region (+ page root directory)
        self.mac = mac
        self.verifications = 0
        self._updates_since_root_check = 0
        # Fast path: per-address memo of the last *verified* (cipher,
        # counter, stored-MAC) triple. A hit means all three inputs to
        # the MAC check are byte-equal to a combination that already
        # passed, so recomputing H_K would provably pass again — any
        # tampering with the ciphertext, the counter, or the stored MAC
        # changes the triple and takes the full recompute path. None
        # with the gate off (the reference always recomputes).
        self._verified: dict | None = {} if fastpath.enabled() else None

    def _compute(self, address: int, cipher: bytes, counter: int) -> bytes:
        message = cipher + counter.to_bytes(16, "big") + address.to_bytes(8, "big")
        return self.mac.compute(message)

    def compute_data_mac(self, address: int, cipher: bytes, counter: int) -> bytes:
        """The MAC this scheme would store for (address, cipher, counter).

        Public so speculative consumers (counter prediction) can test
        candidate counters against the stored MAC without reaching into
        the scheme's internals.
        """
        return self._compute(address, cipher, counter)

    # -- data blocks: MAC check only, no tree walk --------------------------

    def verify_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        """Check a fetched block against its stored MAC.

        ``counter`` must be the block's *verified* counter value — the
        memory controller obtains it via :meth:`verify_metadata` on the
        counter block before calling this.
        """
        self.verifications += 1
        stored = self.store.load(address)
        memo = self._verified
        if memo is not None and memo.get(address) == (cipher, counter, stored):
            return
        if self._compute(address, cipher, counter) != stored:
            raise IntegrityError(
                f"bonsai data MAC mismatch at {address:#x}", address=address, kind="mac"
            )
        if memo is not None:
            if len(memo) >= 65536:
                memo.clear()
            memo[address] = (cipher, counter, stored)

    def update_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        self.store.store(address, self._compute(address, cipher, counter))

    # -- counter blocks (and page-root directory): bonsai tree --------------

    def verify_metadata(self, address: int, raw: bytes) -> None:
        with obs.span("verify_bmt"):
            self.tree.verify(address, raw)

    def update_metadata(self, address: int, raw: bytes) -> None:
        self.tree.update(address, raw)
        if sanitizer.enabled("bmt_root_spot_check"):
            # Every Nth metadata update, re-check that the on-chip root
            # register still matches the top node the update chain left in
            # memory — the drift the Freij et al. update-ordering bugs
            # produce. Divergence here is indistinguishable from tampering,
            # so it raises IntegrityError, not SanitizerError. Counting up
            # (not down) makes a lowered spot_check_interval take effect on
            # the very next update.
            self._updates_since_root_check += 1
            if self._updates_since_root_check >= max(1, sanitizer.spot_interval()):
                self._updates_since_root_check = 0
                self.tree.verify_root()


class StandardMerkleIntegrity:
    """The conventional organization: one tree over data + counters + PRD."""

    kind = "merkle"
    detects_replay = True

    def __init__(self, memory: BlockMemory, tree: MerkleTree):
        self.memory = memory
        self.tree = tree
        self.verifications = 0

    def verify_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        self.verifications += 1
        self.tree.verify(address, cipher)

    def update_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        self.tree.update(address, cipher)

    def verify_metadata(self, address: int, raw: bytes) -> None:
        self.tree.verify(address, raw)

    def update_metadata(self, address: int, raw: bytes) -> None:
        self.tree.update(address, raw)
