"""Memory integrity verification schemes.

* :class:`MacOnlyIntegrity` — per-block MACs (spoofing/splicing only).
* :class:`StandardMerkleIntegrity` — one Merkle tree over data+counters.
* :class:`BonsaiMerkleIntegrity` — the paper's BMT: tree over counters,
  counter-bound per-block MACs for data.
* :class:`LogHashIntegrity` — deferred log-hash baseline.
* :class:`PageRootDirectory` — swap-extension of Merkle protection.

Two functional tree engines share the :class:`MerkleTreeBase` interface:
the eager :class:`MerkleTree` and the lazy, deferred-update
:class:`IncrementalMerkleTree`.
"""

from .bonsai import BonsaiMerkleIntegrity, StandardMerkleIntegrity
from .geometry import NodeRef, TreeGeometry
from .incremental import IncrementalMerkleTree
from .loghash import LogHashIntegrity
from .macs import MacOnlyIntegrity, MacStore
from .merkle import MerkleTree, MerkleTreeBase, RootRegister
from .pageroot import PageRootDirectory

__all__ = [
    "TreeGeometry",
    "NodeRef",
    "MerkleTreeBase",
    "MerkleTree",
    "IncrementalMerkleTree",
    "RootRegister",
    "MacStore",
    "MacOnlyIntegrity",
    "StandardMerkleIntegrity",
    "BonsaiMerkleIntegrity",
    "LogHashIntegrity",
    "PageRootDirectory",
]
