"""Per-block MAC storage and the MAC-only integrity baseline.

A MAC region in physical memory holds one MAC per covered data block.
The MAC-only scheme ([Lie et al. ASPLOS'00]-style, paper section 5)
authenticates each block independently with M = H_K(ciphertext || addr):
it detects spoofing and splicing but **not replay** — rolling back a
(block, MAC) pair to an older consistent version passes verification.
The test suite demonstrates that gap; the paper's BMT closes it by
binding the counter (whose integrity the bonsai tree guarantees) into
the MAC.
"""

from __future__ import annotations

from ..crypto.mac import MacFunction
from ..mem.dram import BlockMemory
from ..mem.layout import BLOCK_SIZE
from ..core.errors import IntegrityError


class MacStore:
    """Per-block MACs packed into 64-byte blocks of a memory region.

    Block ``i``'s MAC lives at ``base + i * mac_bytes`` inside the store's
    region; reads and writes go through the underlying (attackable)
    memory block by block.
    """

    def __init__(self, memory: BlockMemory, base: int, covered_start: int, covered_bytes: int, mac_bytes: int):
        self.memory = memory
        self.base = base
        self.covered_start = covered_start
        self.covered_bytes = covered_bytes
        self.mac_bytes = mac_bytes
        self.macs_per_block = BLOCK_SIZE // mac_bytes

    @property
    def region_bytes(self) -> int:
        blocks = self.covered_bytes // BLOCK_SIZE
        mac_blocks = (blocks + self.macs_per_block - 1) // self.macs_per_block
        return mac_blocks * BLOCK_SIZE

    def _locate(self, address: int) -> tuple[int, int]:
        """(mac_block_address, offset) of the MAC for a covered address."""
        if not self.covered_start <= address < self.covered_start + self.covered_bytes:
            raise ValueError(f"address {address:#x} outside MAC-covered range")
        index = (address - self.covered_start) // BLOCK_SIZE
        byte_offset = index * self.mac_bytes
        return self.base + (byte_offset // BLOCK_SIZE) * BLOCK_SIZE, byte_offset % BLOCK_SIZE

    def mac_block_address(self, address: int) -> int:
        """Address of the 64B MAC block for a covered address (timing model hook)."""
        return self._locate(address)[0]

    def load(self, address: int) -> bytes:
        block_addr, offset = self._locate(address)
        raw = self.memory.read_block(block_addr)
        return raw[offset : offset + self.mac_bytes]

    def store(self, address: int, mac: bytes) -> None:
        if len(mac) != self.mac_bytes:
            raise ValueError(f"MAC must be {self.mac_bytes} bytes, got {len(mac)}")
        block_addr, offset = self._locate(address)
        raw = bytearray(self.memory.read_block(block_addr))
        raw[offset : offset + self.mac_bytes] = mac
        self.memory.write_block(block_addr, bytes(raw))


class MacOnlyIntegrity:
    """Spoofing/splicing detection via one address-bound MAC per block."""

    kind = "mac_only"
    detects_replay = False

    def __init__(self, memory: BlockMemory, store: MacStore, mac: MacFunction):
        self.memory = memory
        self.store = store
        self.mac = mac
        self.verifications = 0

    def _compute(self, address: int, cipher: bytes) -> bytes:
        return self.mac.compute(cipher + address.to_bytes(8, "big"))

    def verify_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        self.verifications += 1
        stored = self.store.load(address)
        if self._compute(address, cipher) != stored:
            raise IntegrityError(
                f"block MAC mismatch at {address:#x}", address=address, kind="mac"
            )

    def update_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        self.store.store(address, self._compute(address, cipher))

    # Counter blocks are not protected by this baseline.
    def verify_metadata(self, address: int, raw: bytes) -> None:
        return None

    def update_metadata(self, address: int, raw: bytes) -> None:
        return None
