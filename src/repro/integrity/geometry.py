"""Merkle tree geometry, shared by the functional trees and the timing model.

A tree covers a contiguous byte range of physical memory. Level 0 is the
covered range itself, in 64-byte blocks. Each higher level is an array of
64-byte *node blocks*, each holding ``arity = 64 / mac_bytes`` MACs of the
level below. Levels shrink by ``arity`` until a single node block remains;
the MAC of that top block lives in the on-chip root register.

The geometry answers, for any covered address: which node block (and MAC
slot within it) holds its MAC at each level — which is all the timing
simulator needs to model Merkle-walk traffic, and all the functional tree
needs to locate stored MACs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.layout import BLOCK_SIZE


@dataclass(frozen=True)
class NodeRef:
    """One Merkle node lookup step: the node block's address and MAC slot."""

    level: int  # 1 = first MAC level above the covered range
    address: int  # physical address of the 64B node block holding the MAC
    slot: int  # MAC index within the node block
    index: int  # node-block index within its level


class TreeGeometry:
    """Shapes a Merkle tree over ``[covered_start, covered_start+covered_bytes)``.

    Node blocks are laid out level by level starting at ``nodes_start``
    (level 1 first). ``mac_bytes`` fixes the arity.
    """

    def __init__(self, covered_start: int, covered_bytes: int, nodes_start: int, mac_bytes: int):
        if covered_bytes <= 0 or covered_bytes % BLOCK_SIZE:
            raise ValueError("covered range must be a positive whole number of blocks")
        arity = BLOCK_SIZE // mac_bytes
        if arity < 2:
            raise ValueError(f"MAC of {mac_bytes}B leaves no fan-out in a {BLOCK_SIZE}B node")
        self.covered_start = covered_start
        self.covered_bytes = covered_bytes
        self.nodes_start = nodes_start
        self.mac_bytes = mac_bytes
        self.arity = arity

        # level_counts[k] = number of 64B node blocks at level k+1.
        counts = []
        children = covered_bytes // BLOCK_SIZE
        while children > 1:
            nodes = (children + arity - 1) // arity
            counts.append(nodes)
            children = nodes
        if not counts:
            counts = [1]  # degenerate: a single covered block still gets one node
        self.level_counts = counts
        self.levels = len(counts)

        bases = []
        base = nodes_start
        for count in counts:
            bases.append(base)
            base += count * BLOCK_SIZE
        self.level_bases = bases
        self.nodes_end = base

    @property
    def node_bytes(self) -> int:
        """Total bytes of node storage (all levels)."""
        return sum(self.level_counts) * BLOCK_SIZE

    @property
    def root_block_address(self) -> int:
        """Address of the single top-level node block (the root register
        holds the MAC *of* this block)."""
        return self.level_bases[-1]

    def covers(self, address: int) -> bool:
        return self.covered_start <= address < self.covered_start + self.covered_bytes

    def is_node_address(self, address: int) -> bool:
        return self.nodes_start <= address < self.nodes_end

    def child_index(self, address: int) -> int:
        """Level-0 block index of a covered address."""
        if not self.covers(address):
            raise ValueError(f"address {address:#x} not in covered range")
        return (address - self.covered_start) // BLOCK_SIZE

    def node_ref(self, level: int, child_index: int) -> NodeRef:
        """The node (at ``level`` >= 1) holding the MAC of child ``child_index``
        from the level below."""
        node_index = child_index // self.arity
        slot = child_index % self.arity
        address = self.level_bases[level - 1] + node_index * BLOCK_SIZE
        return NodeRef(level=level, address=address, slot=slot, index=node_index)

    def walk(self, address: int) -> list[NodeRef]:
        """All node lookups needed to verify a covered address, leaf to top."""
        refs = []
        index = self.child_index(address)
        for level in range(1, self.levels + 1):
            ref = self.node_ref(level, index)
            refs.append(ref)
            index = ref.index
        return refs

    def node_child_range(self, level: int, node_index: int) -> tuple[int, int]:
        """(first_child_index, count) of the children covered by a node block."""
        first = node_index * self.arity
        if level == 1:
            total_children = self.covered_bytes // BLOCK_SIZE
        else:
            total_children = self.level_counts[level - 2]
        count = min(self.arity, total_children - first)
        return first, count

    def child_block_address(self, level: int, child_index: int) -> int:
        """Address of a child block: covered memory for level 1, node blocks above."""
        if level == 1:
            return self.covered_start + child_index * BLOCK_SIZE
        return self.level_bases[level - 2] + child_index * BLOCK_SIZE
