"""The no-op integrity engine (encryption-only or unprotected machines).

Lives here — not in ``core.machine`` — so the scheme descriptor layer
(:mod:`repro.schemes`) can construct it without importing the machine.
"""

from __future__ import annotations


class NullIntegrity:
    """No integrity protection: every check passes, nothing is stored."""

    kind = "none"
    detects_replay = False

    def verify_data(self, address, cipher, counter=0):
        return None

    def update_data(self, address, cipher, counter=0):
        return None

    def verify_metadata(self, address, raw):
        return None

    def update_metadata(self, address, raw):
        return None
