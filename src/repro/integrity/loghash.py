"""Log-hash integrity verification baseline ([Suh et al. MICRO'03]).

Instead of verifying every fetch, the processor maintains two incremental
multiset hashes. WriteLog folds in every (address, value, timestamp) the
processor puts into memory; ReadLog folds in every (address, value,
timestamp) taken back out. At a *check*, the processor sweeps the
remaining live blocks into ReadLog; untampered memory makes the two logs
cancel exactly.

Invariant maintained here: every live block appears in WriteLog exactly
once, at its current timestamp, with the value the processor believes it
wrote. A read consumes the memory's (possibly tampered) version and
re-logs it; a write consumes the processor's shadow copy — modelling the
cache fill that precedes any writeback in the original hardware scheme —
and logs the new version.

The paper (section 2, citing [20]) notes the scheme's weakness: the long
interval between checks leaves the system open — tampering is detected
only at the next check, not at use. ``tests/integrity/test_loghash.py``
demonstrates exactly that deferred-detection window.

Multiset hash: XOR of a keyed hash of each (addr, value, ts) triple —
incremental and order-independent, structurally the MSet-XOR-Hash of the
original work.
"""

from __future__ import annotations

from ..crypto.mac import MacFunction
from ..mem.dram import BlockMemory
from ..core.errors import IntegrityError


class LogHashIntegrity:
    """Deferred, epoch-based integrity checking with multiset hashes."""

    kind = "loghash"
    detects_replay = True  # ...but only at the next periodic check

    def __init__(self, memory: BlockMemory, mac: MacFunction):
        self.memory = memory
        self.mac = mac
        self._write_log = 0
        self._read_log = 0
        self._timestamps: dict[int, int] = {}
        # The processor's belief of each live block's current value (the
        # on-chip cached copy in the original scheme).
        self._shadow: dict[int, bytes] = {}
        self._clock = 0
        self.checks = 0

    def _fold(self, address: int, value: bytes, timestamp: int) -> int:
        digest = self.mac.compute(
            address.to_bytes(8, "big") + value + timestamp.to_bytes(8, "big")
        )
        return int.from_bytes(digest, "big")

    def _log_current(self, address: int, value: bytes) -> None:
        self._clock += 1
        self._write_log ^= self._fold(address, value, self._clock)
        self._timestamps[address] = self._clock
        self._shadow[address] = value

    # -- per-access hooks (cheap: one or two hashes, no tree walk) -----------

    def update_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        """Writeback: consume the previous version, log the new one."""
        old_ts = self._timestamps.get(address)
        if old_ts is not None:
            self._read_log ^= self._fold(address, self._shadow[address], old_ts)
        self._log_current(address, cipher)

    def verify_data(self, address: int, cipher: bytes, counter: int = 0) -> None:
        """Fetch: consume what memory handed us, re-log it.

        Never raises — deferred detection is the point of the baseline;
        a tampered ``cipher`` makes the logs diverge and :meth:`check`
        fail later.
        """
        old_ts = self._timestamps.get(address)
        if old_ts is None:
            self._log_current(address, cipher)  # first sight: adopt
            return
        self._read_log ^= self._fold(address, cipher, old_ts)
        self._log_current(address, cipher)

    def verify_metadata(self, address: int, raw: bytes) -> None:
        return None

    def update_metadata(self, address: int, raw: bytes) -> None:
        return None

    # -- the periodic check ---------------------------------------------------

    def check(self) -> None:
        """Sweep all live blocks and compare logs. Raises on any tamper
        since the previous check (spoofing, splicing, or replay)."""
        self.checks += 1
        read_log = self._read_log
        for address, timestamp in self._timestamps.items():
            value = self.memory.read_block(address)
            read_log ^= self._fold(address, value, timestamp)
        if read_log != self._write_log:
            raise IntegrityError("log-hash check failed: memory was tampered", kind="loghash")
        # Start a new epoch from current (now known-consistent) memory.
        self._read_log = 0
        self._write_log = 0
        addresses = list(self._timestamps)
        self._timestamps = {}
        self._shadow = {}
        for address in addresses:
            self._log_current(address, self.memory.read_block(address))
