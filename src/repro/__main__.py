"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report``   — regenerate the paper's tables and figures (text).
* ``sweep``    — simulate the (benchmark x configuration) grid, optionally in
  parallel (``--workers``) and against a persistent result cache
  (``--cache``); emits deterministic per-cell JSON.
* ``simulate`` — run one benchmark trace against one configuration.
* ``trace``    — run one workload under full observability: Chrome trace-event
  JSON (Perfetto-loadable), optional JSONL event stream and interval
  snapshots (see docs/observability.md).
* ``metrics``  — export a metric snapshot (a ``sweep --fleet`` report, a
  ``trace --snapshots`` file, or a bare snapshot) as Prometheus text
  format or JSON.
* ``precompile`` — lower a workload's trace to the compiled fastpath
  program ahead of time and report the pattern mix.
* ``serve``    — run the simulation service: an asyncio job server that
  answers simulate/sweep/trace/precompile requests from many concurrent
  clients over newline-delimited JSON (see docs/service.md).
* ``submit``   — submit one request to a running service and print the
  versioned response envelope.
* ``attacks``  — print the attack-detection matrix for a configuration.
* ``storage``  — print the analytic storage breakdown (Table 2 model).
* ``analyze``  — run the security-invariant linter (see docs/static-analysis.md).

The simulation knobs are spelled the same everywhere: ``--events``,
``--workers``, ``--cache-dir``, ``--metrics`` on the CLI are
``events=``, ``workers=``, ``cache_dir=``, ``metrics=`` on the
:mod:`repro.api` facade and in the service protocol (the API002 lint
rule keeps them in sync). ``--json`` on simulate/sweep/trace prints the
versioned :mod:`repro.api.schema` envelope instead of the legacy text.

Global flags: ``--log-level {debug,info,warning,error}`` (or ``-v`` for
debug) tune the stderr diagnostics every command routes through
:mod:`repro.obs.log`.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args) -> int:
    from .evalx.report import main as report_main

    forwarded = ["--events", str(args.events), "--workers", str(args.workers)]
    if args.figures:
        forwarded += ["--figures", *args.figures]
    if args.out:
        forwarded += ["--out", args.out]
    if args.data_dir:
        forwarded += ["--data-dir", args.data_dir]
    if args.cache_dir:
        forwarded += ["--cache", args.cache_dir]
    return report_main(forwarded)


def _cmd_sweep(args) -> int:
    import json

    from . import api
    from .evalx.report import render_table
    from .evalx.tables import results_table
    from .obs import fleet as fleet_mod
    from .obs.log import get_logger

    log = get_logger("cli")
    # Fleet capture rides along whenever any observability output is
    # requested; it never changes the result payload (byte-identical
    # with or without, a CI-enforced invariant).
    want_fleet = bool(args.fleet or args.fleet_chrome)
    sinks = []
    if args.live:
        sinks.append(fleet_mod.TtyProgressSink())
    if args.live_jsonl:
        sinks.append(fleet_mod.JsonlProgressSink(args.live_jsonl))
    try:
        run = api.sweep(
            configs=args.configs or None,
            benchmarks=args.benchmarks or None,
            events=args.events,
            mac_bits=tuple(args.mac_bits) if args.mac_bits else (None,),
            workers=args.workers,
            cache_dir=args.cache_dir,
            metrics=args.metrics,
            fleet=want_fleet,
            live_sinks=sinks or None,
        )
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    # Deterministic payload: sorted keys, lossless floats — two sweeps of
    # the same grid (serial or parallel, cached or cold) diff byte-equal.
    text = json.dumps(run.to_payload(), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        log.info("%d cells written to %s", len(run.grid), args.out)
    elif args.json:
        from .api import schema

        envelope = schema.sweep_envelope(run.to_payload())
        print(json.dumps(envelope.to_wire(), indent=2, sort_keys=True))
    else:
        print(text)
    if args.live_jsonl:
        log.info("progress stream written to %s", args.live_jsonl)
    if run.fleet is not None:
        report = run.fleet
        if args.fleet:
            with open(args.fleet, "w") as f:
                json.dump(report.to_payload(), f, indent=2, sort_keys=True)
                f.write("\n")
            log.info("fleet report (%d cells, %d aggregated metrics) "
                     "written to %s", report.total, len(report.aggregate),
                     args.fleet)
        if args.fleet_chrome:
            with open(args.fleet_chrome, "w") as f:
                json.dump(fleet_mod.fleet_chrome_trace(report), f,
                          indent=2, sort_keys=True)
                f.write("\n")
            log.info("fleet chrome trace written to %s", args.fleet_chrome)
        log.info("engines: %s; fallback reasons: %s",
                 dict(sorted(report.engines.items())),
                 dict(sorted(report.fallback_reasons.items())) or "none")
    if run.runner.cache is not None:
        c = run.runner.cache
        log.info("cache %s: %d hits, %d misses, %d writes, %d corrupt, "
                 "%d stale tmp swept", c.root, c.hits, c.misses, c.writes,
                 c.corrupt, c.stale_tmp)
        if c.worker_hits or c.worker_misses or c.worker_writes:
            log.info("cache (workers): %d hits, %d misses, %d writes, "
                     "%d corrupt, %d stale tmp swept", c.worker_hits,
                     c.worker_misses, c.worker_writes, c.worker_corrupt,
                     c.worker_stale_tmp)
    if args.summary:
        summary_labels = [label for label in run.labels if label != "base"]
        if "base" in run.labels and summary_labels:
            print(render_table(results_table(run.runner, summary_labels)), file=sys.stderr)
    return 0


def _cmd_simulate(args) -> int:
    from . import api
    from .core.config import ConfigurationError, MachineConfig
    from .obs.log import get_logger

    log = get_logger("cli")
    try:
        trace = api.load_trace(args.benchmark, args.events)
        config = MachineConfig.preset(f"{args.encryption}+{args.integrity}",
                                      mac_bits=args.mac_bits)
    except (ValueError, ConfigurationError) as exc:
        log.error("%s", exc)
        return 2
    result = api.simulate(trace, config, metrics=args.metrics)
    if args.json:
        import json

        from .api import schema

        envelope = schema.result_envelope(
            result.to_dict(), workload=args.benchmark,
            config=f"{args.encryption}+{args.integrity}")
        print(json.dumps(envelope.to_wire(), indent=2, sort_keys=True))
        return 0
    base = api.simulate(trace, "base")
    print(f"benchmark        : {args.benchmark} ({args.events} L2 accesses)")
    print(f"configuration    : {args.encryption}+{args.integrity}, {args.mac_bits}-bit MACs")
    print(f"cycles           : {result.cycles:,.0f} (base {base.cycles:,.0f})")
    print(f"overhead         : {result.overhead_vs(base):.1%}")
    print(f"IPC              : {result.ipc:.2f}")
    print(f"L2 miss rate     : {result.l2_miss_rate:.1%} (base {base.l2_miss_rate:.1%})")
    print(f"L2 data fraction : {result.l2_data_fraction:.1%}")
    print(f"bus utilization  : {result.bus_utilization:.1%} (base {base.bus_utilization:.1%})")
    if result.counter_accesses:
        print(f"counter miss rate: {result.counter_miss_rate:.1%}")
        print(f"exposed AES      : {result.exposed_decrypt_cycles:,.0f} cycles")
    return 0


def _cmd_trace(args) -> int:
    import json

    from . import api
    from .core.config import ConfigurationError
    from .obs import chrome
    from .obs.log import get_logger

    log = get_logger("cli")
    jsonl_file = open(args.jsonl, "w") if args.jsonl else None
    try:
        run = api.trace(args.workload, args.config, events=args.events,
                        interval=args.interval, warmup=args.warmup,
                        jsonl=jsonl_file)
    except (ValueError, ConfigurationError) as exc:
        log.error("%s", exc)
        return 2
    finally:
        if jsonl_file is not None:
            jsonl_file.close()

    problems = chrome.validate_chrome_trace(run.chrome)
    if problems:
        for problem in problems[:20]:
            log.error("invalid chrome trace: %s", problem)
        return 1
    with open(args.out, "w") as f:
        json.dump(run.chrome, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.snapshots:
        payload = {
            "workload": args.workload,
            "config": args.config,
            "events": args.events,
            "interval": args.interval,
            "samples": run.samples,
            "phases": run.phases,
            "result": run.result.to_dict(),
        }
        with open(args.snapshots, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        log.info("%d interval snapshots written to %s",
                 len(run.samples), args.snapshots)
    if args.jsonl:
        log.info("%d events streamed to %s", len(run.events), args.jsonl)
    if args.json:
        from .api import schema

        envelope = schema.trace_envelope(run.to_payload())
        print(json.dumps(envelope.to_wire(), indent=2, sort_keys=True))
        return 0
    print(f"workload      : {run.workload} ({args.events} L2 accesses)")
    print(f"configuration : {run.config_label}")
    print(f"cycles        : {run.result.cycles:,.0f} (IPC {run.result.ipc:.2f})")
    print(f"trace         : {args.out} ({len(run.chrome['traceEvents'])} records, "
          f"{len(run.events)} events, {len(run.samples)} samples)")
    return 0


def _cmd_precompile(args) -> int:
    import json

    from . import api
    from .core.config import ConfigurationError
    from .obs.log import get_logger

    log = get_logger("cli")
    try:
        summary = api.precompile(args.workload, args.config,
                                 events=args.events)
    except (ValueError, ConfigurationError) as exc:
        log.error("%s", exc)
        return 2
    # The summary's "trace" is the live Trace object (the memo host);
    # report the workload name on the wire, same as the service does.
    wire = {"workload": args.workload, "config": args.config,
            "events": summary["events"], "misses": summary["misses"],
            "patterns": summary["patterns"], "cached": summary["cached"]}
    if args.json:
        from .api import schema

        envelope = schema.ok_envelope(op="precompile", **wire)
        print(json.dumps(envelope.to_wire(), indent=2, sort_keys=True))
        return 0
    print(f"workload : {args.workload} ({wire['events']} events, "
          f"{wire['misses']} misses)")
    print(f"config   : {args.config}")
    print(f"patterns : {wire['patterns']}")
    print(f"cached   : {wire['cached']}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .obs.log import get_logger
    from .service.server import SweepService

    log = get_logger("cli")
    service = SweepService(
        cache_dir=args.cache_dir,
        lru_capacity=args.lru_capacity,
        pool_capacity=args.pool_capacity,
        trace_capacity=args.trace_capacity,
        sim_slots=args.sim_slots,
        sweep_jobs=args.sweep_jobs,
    )

    async def run() -> None:
        await service.start(args.host, args.port)
        log.info("sweep service listening on %s:%d (cache_dir=%s)",
                 args.host, service.port, args.cache_dir or "none")
        print(f"listening on {args.host}:{service.port}", flush=True)
        await service.serve_until_stopped()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        log.info("interrupted; shutting down")
    return 0


def _cmd_submit(args) -> int:
    import json

    from .api import schema
    from .obs.log import get_logger
    from .service.client import ServiceClient, ServiceError

    log = get_logger("cli")
    mac_bits = tuple(args.mac_bits) if args.mac_bits else (None,)
    requests = {
        "simulate": lambda: schema.SimulateRequest(
            workload=args.workload, config=args.config, events=args.events,
            overlap=args.overlap, warmup=args.warmup, metrics=args.metrics),
        "sweep": lambda: schema.SweepRequest(
            configs=args.configs or None, benchmarks=args.benchmarks or None,
            events=args.events, mac_bits=mac_bits, workers=args.workers,
            metrics=args.metrics, overlap=args.overlap, warmup=args.warmup),
        "trace": lambda: schema.TraceRequest(
            workload=args.workload, config=args.config, events=args.events,
            interval=args.interval, warmup=args.warmup),
        "precompile": lambda: schema.PrecompileRequest(
            workload=args.workload, config=args.config, events=args.events),
        "presets": lambda: schema.PresetsRequest(full=args.full),
        "status": lambda: schema.StatusRequest(),
        "shutdown": lambda: schema.ShutdownRequest(),
    }
    try:
        with ServiceClient(args.host, args.port, tenant=args.tenant) as client:
            if args.subscribe:
                client.subscribe()
            envelope = client.request(requests[args.op]())
            if args.op == "sweep" and args.out:
                # Legacy bytes: the body IS SweepRun.to_payload(), so this
                # file diffs byte-equal against `repro sweep --out`.
                with open(args.out, "w") as f:
                    f.write(json.dumps(envelope.body, indent=2,
                                       sort_keys=True) + "\n")
                log.info("%d cells written to %s",
                         len(envelope.body["cells"]), args.out)
            else:
                print(json.dumps(envelope.to_wire(), indent=2,
                                 sort_keys=True))
            if args.subscribe:
                for event in client.events:
                    print(json.dumps(event, sort_keys=True), file=sys.stderr)
    except (ConnectionError, OSError) as exc:
        log.error("cannot reach service at %s:%d: %s",
                  args.host, args.port, exc)
        return 2
    except ServiceError as exc:
        log.error("service error: %s", exc)
        return 1
    return 0


def _cmd_attacks(args) -> int:
    from .attacks import run_all
    from .core.config import MachineConfig
    from .core.machine import SecureMemorySystem

    machine = SecureMemorySystem(
        MachineConfig(physical_bytes=16 * 4096, encryption=args.encryption,
                      integrity=args.integrity)
    )
    machine.boot()
    print(f"configuration: {args.encryption}+{args.integrity}")
    for result in run_all(machine):
        verdict = "DETECTED" if result.detected else "MISSED"
        print(f"  {result.scenario:15} {verdict:9} {result.detail}")
    return 0


def _cmd_storage(args) -> int:
    from .core.storage import storage_breakdown

    b = storage_breakdown(args.encryption, args.integrity, args.mac_bits,
                          data_bytes=args.data_mb << 20)
    print(f"configuration   : {args.encryption}+{args.integrity}, "
          f"{args.mac_bits}-bit MACs, {args.data_mb}MB data")
    print(f"counters        : {b.counter_bytes / (1 << 20):10.2f} MB  ({b.counter_fraction:6.2%})")
    print(f"MACs/tree nodes : {b.merkle_bytes / (1 << 20):10.2f} MB  ({b.merkle_fraction:6.2%})")
    print(f"page root dir   : {b.page_root_bytes / (1 << 20):10.2f} MB  ({b.page_root_fraction:6.2%})")
    print(f"total overhead  : {b.overhead_fraction:.2%} of total memory")
    return 0


def _cmd_metrics(args) -> int:
    import json

    from .obs import fleet as fleet_mod
    from .obs import prom
    from .obs.log import get_logger

    log = get_logger("cli")
    try:
        with open(args.input) as f:
            doc = json.load(f)
        snapshot = fleet_mod.extract_snapshot(doc)
    except (OSError, ValueError) as exc:
        log.error("%s: %s", args.input, exc)
        return 2
    if args.format == "prometheus":
        text = prom.prometheus_exposition(snapshot, prefix=args.prefix)
        if args.check:
            problems = prom.validate_prometheus_text(text)
            if problems:
                for problem in problems[:20]:
                    log.error("invalid exposition: %s", problem)
                return 1
    else:
        text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        log.info("%d metrics written to %s (%s)",
                 len(snapshot), args.out, args.format)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_analyze(args) -> int:
    from .analysis.cli import main as analyze_main

    return analyze_main(args.analyzer_args)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        # Dispatch before argparse: the analyzer owns its own option
        # parsing, and argparse.REMAINDER chokes on a leading option
        # token (``repro analyze --list-rules``).
        from .analysis.cli import main as analyze_main

        return analyze_main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="stderr diagnostic verbosity (default: info, "
                             "or $REPRO_LOG_LEVEL)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="shorthand for --log-level debug")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate the paper's tables and figures")
    # The paper's figures are measured at 120k events; the report command
    # keeps that fidelity default rather than the interactive knob grammar.
    p.add_argument("--events", type=int, default=120_000)  # repro: allow(API002)
    p.add_argument("--figures", nargs="*", default=None)
    p.add_argument("--out", default=None)
    p.add_argument("--data-dir", default=None)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-dir", "--cache", dest="cache_dir", default=None,
                   metavar="DIR")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("sweep", help="simulate the benchmark x configuration grid")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width (1 = serial, 0 = one per core)")
    p.add_argument("--cache-dir", "--cache", dest="cache_dir", default=None,
                   metavar="DIR",
                   help="persistent result-cache directory "
                        "(e.g. benchmarks/results/cache); --cache is the "
                        "deprecated spelling")
    p.add_argument("--events", type=int, default=60_000)
    p.add_argument("--benchmarks", nargs="*", default=None,
                   help="subset of benchmarks (default: all 21)")
    p.add_argument("--configs", nargs="*", default=None,
                   help="subset of registry configs (default: all)")
    p.add_argument("--mac-bits", type=int, nargs="*", default=None,
                   help="MAC-size overrides (default: each config's own)")
    p.add_argument("--out", default=None, help="write per-cell JSON here")
    p.add_argument("--json", action="store_true",
                   help="print the versioned response envelope to stdout "
                        "instead of the bare payload (ignored with --out)")
    p.add_argument("--summary", action="store_true",
                   help="also print a measured-averages table (stderr)")
    p.add_argument("--metrics", action="store_true",
                   help="attach per-cell metrics-registry snapshots to the "
                        "JSON results")
    p.add_argument("--live", action="store_true",
                   help="render live sweep progress on stderr (cells done, "
                        "cells/sec, ETA, cache hit ratio)")
    p.add_argument("--live-jsonl", default=None, metavar="FILE",
                   help="stream typed progress records as JSON Lines")
    p.add_argument("--fleet", default=None, metavar="FILE",
                   help="write the aggregated fleet observability report "
                        "(per-cell engine attribution, merged metrics, "
                        "per-worker utilization)")
    p.add_argument("--fleet-chrome", default=None, metavar="FILE",
                   help="write a whole-sweep Chrome trace, one lane per "
                        "worker process (Perfetto-loadable)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("simulate", help="simulate one benchmark/configuration")
    p.add_argument("--benchmark", default="art")
    p.add_argument("--encryption", default="aise")
    p.add_argument("--integrity", default="bonsai")
    p.add_argument("--mac-bits", type=int, default=128)
    p.add_argument("--events", type=int, default=60_000)
    p.add_argument("--metrics", action="store_true",
                   help="attach the end-of-run metrics-registry snapshot "
                        "to the result")
    p.add_argument("--json", action="store_true",
                   help="print the versioned result envelope instead of "
                        "the human summary")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("trace", help="run one workload under full observability")
    p.add_argument("workload",
                   help="a SPEC benchmark name, or stream/chase/resident")
    p.add_argument("--config", default="aise+bmt",
                   help="registry configuration label (default: aise+bmt)")
    p.add_argument("--events", type=int, default=60_000)
    p.add_argument("--interval", type=int, default=1024,
                   help="measured events between metric snapshots")
    p.add_argument("--warmup", type=float, default=0.25)
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace-event JSON output (Perfetto-loadable)")
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="also stream raw events as JSON Lines")
    p.add_argument("--snapshots", default=None, metavar="FILE",
                   help="also write interval snapshots + final result JSON")
    p.add_argument("--json", action="store_true",
                   help="print the versioned trace envelope instead of "
                        "the human summary")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("precompile",
                       help="lower a workload's trace to the compiled "
                            "fastpath program ahead of time")
    p.add_argument("workload",
                   help="a SPEC benchmark name, or stream/chase/resident")
    p.add_argument("--config", default="aise+bmt",
                   help="registry configuration label (default: aise+bmt)")
    p.add_argument("--events", type=int, default=60_000)
    p.add_argument("--json", action="store_true",
                   help="print the versioned response envelope")
    p.set_defaults(func=_cmd_precompile)

    p = sub.add_parser("serve",
                       help="run the simulation service (see docs/service.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8737,
                   help="listen port (0 = ephemeral; default: 8737)")
    p.add_argument("--cache-dir", "--cache", dest="cache_dir", default=None,
                   metavar="DIR",
                   help="persistent result-cache directory shared by all "
                        "tenants; --cache is the deprecated spelling")
    p.add_argument("--lru-capacity", type=int, default=4096,
                   help="in-memory result-tier capacity (cells)")
    p.add_argument("--pool-capacity", type=int, default=8,
                   help="warm machine pool capacity")
    p.add_argument("--trace-capacity", type=int, default=8,
                   help="decoded-trace store capacity")
    p.add_argument("--sim-slots", type=int, default=None,
                   help="max concurrent in-process simulations "
                        "(default: cores - 1)")
    p.add_argument("--sweep-jobs", type=int, default=1,
                   help="max concurrent process-pool sweep jobs")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit",
                       help="submit one request to a running service")
    p.add_argument("op", choices=["simulate", "sweep", "trace", "precompile",
                                  "presets", "status", "shutdown"])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8737)
    p.add_argument("--tenant", default="anon",
                   help="tenant name reported to the service")
    p.add_argument("--workload", default="stream",
                   help="(simulate/trace/precompile) workload name")
    p.add_argument("--config", default="aise+bmt",
                   help="(simulate/trace/precompile) configuration label")
    p.add_argument("--configs", nargs="*", default=None,
                   help="(sweep) subset of registry configs (default: all)")
    p.add_argument("--benchmarks", nargs="*", default=None,
                   help="(sweep) subset of benchmarks (default: all 21)")
    p.add_argument("--mac-bits", type=int, nargs="*", default=None,
                   help="(sweep) MAC-size overrides")
    p.add_argument("--events", type=int, default=60_000)
    p.add_argument("--workers", type=int, default=1,
                   help="(sweep) 1 = warm single-machine path, >1 or 0 = "
                        "server-side process pool")
    p.add_argument("--metrics", action="store_true",
                   help="attach per-cell metrics-registry snapshots")
    p.add_argument("--overlap", type=float, default=0.7)
    p.add_argument("--warmup", type=float, default=0.25)
    p.add_argument("--interval", type=int, default=1024,
                   help="(trace) measured events between metric snapshots")
    p.add_argument("--subscribe", action="store_true",
                   help="receive fleet progress events (echoed to stderr "
                        "as JSON lines)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="(sweep) write the bare per-cell payload here — "
                        "byte-identical to `repro sweep --out`")
    p.add_argument("--full", action="store_true",
                   help="(presets) include registry-valid non-canonical "
                        "combinations")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("attacks", help="run the attack-detection matrix")
    p.add_argument("--encryption", default="aise")
    p.add_argument("--integrity", default="bonsai")
    p.set_defaults(func=_cmd_attacks)

    p = sub.add_parser("storage", help="analytic storage breakdown (Table 2 model)")
    p.add_argument("--encryption", default="aise")
    p.add_argument("--integrity", default="bonsai")
    p.add_argument("--mac-bits", type=int, default=128)
    p.add_argument("--data-mb", type=int, default=1024)
    p.set_defaults(func=_cmd_storage)

    p = sub.add_parser("metrics",
                       help="export a metric snapshot (fleet report, traced "
                            "run, or bare snapshot) as Prometheus text or JSON")
    p.add_argument("input", help="JSON file holding the snapshot (e.g. a "
                                 "--fleet report or trace --snapshots file)")
    p.add_argument("--format", default="prometheus",
                   choices=["prometheus", "json"])
    p.add_argument("--prefix", default="repro",
                   help="metric-name prefix for Prometheus output")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write here instead of stdout")
    p.add_argument("--check", action="store_true",
                   help="validate the Prometheus exposition before emitting")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("analyze", help="run the security-invariant linter",
                       add_help=False)
    p.add_argument("analyzer_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to repro.analysis (see --list-rules)")
    p.set_defaults(func=_cmd_analyze)

    args = parser.parse_args(argv)
    from .obs.log import configure, verbosity_to_level

    configure(args.log_level or verbosity_to_level(args.verbose))
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
