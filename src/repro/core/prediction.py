"""Counter prediction: the latency-hiding alternative to counter caching.

Prior work ([Shi et al. ISCA'05], paper section 4.1) hides decryption
latency by *predicting* a missed block's counter instead of waiting for
the counter fetch: speculative pads are generated for a few candidate
counter values, and the per-block MAC tells which (if any) candidate was
right. Table 1 notes the asymmetry this module makes concrete:

* AISE / per-block minor counters are **predictable** — a page's minors
  cluster near the page's recent write intensity, so a handful of
  candidates around the last observed value usually contains the truth;
* 64-bit **global** counter stamps are effectively unpredictable — the
  stamp is a global write serial number, so no small candidate set can
  cover it.

Correctness is never at risk: a candidate is accepted only if the
block's (counter-bound) MAC verifies, and a wrong guess falls back to
the architectural path — the verified counter fetch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.layout import PAGE_SIZE, block_address, block_in_page
from .config import INT_BMT
from .counters import MINOR_MAX
from .encryption import AiseEncryption
from .errors import ConfigurationError
from .machine import SecureMemorySystem
from .seeds import SeedInput


@dataclass
class PredictionStats:
    """Speculation outcomes: attempts, hits, candidate trials, fallbacks."""

    attempts: int = 0
    hits: int = 0
    candidate_trials: int = 0
    fallbacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.attempts if self.attempts else 0.0


class CounterPredictor:
    """Speculative decryption for AISE+BMT machines.

    Keeps a small *LPID table* (the page's 64-bit identifier without its
    64 minor counters — 8x the reach of a counter cache for the same
    on-chip budget) plus, per page, the last minor counter value it
    observed. On a read whose counter block is not on-chip, it tries
    ``max_candidates`` minors around that observation; the per-block MAC
    arbitrates.
    """

    def __init__(self, machine: SecureMemorySystem, max_candidates: int = 8):
        if machine.config.integrity != INT_BMT:
            raise ConfigurationError(
                "counter prediction needs per-block counter-bound MACs (BMT)"
            )
        if not isinstance(machine.encryption, AiseEncryption):
            raise ConfigurationError(
                "counter prediction targets per-block minor counters (AISE-family)"
            )
        self.machine = machine
        self.engine: AiseEncryption = machine.encryption
        self.max_candidates = max_candidates
        self._lpids: dict[int, int] = {}  # page index -> LPID
        self._last_minor: dict[int, int] = {}  # page index -> recent minor
        self.stats = PredictionStats()

    # -- observation --------------------------------------------------------

    def observe(self, page_index: int, lpid: int, minor: int) -> None:
        """Feed the predictor from architectural accesses."""
        self._lpids[page_index] = lpid
        self._last_minor[page_index] = minor

    def _candidates(self, page_index: int) -> list[int]:
        base = self._last_minor.get(page_index, 0)
        out = []
        for delta in range(self.max_candidates):
            candidate = base + delta - 1  # one below, then upward
            if 0 <= candidate <= MINOR_MAX and candidate not in out:
                out.append(candidate)
        return out

    # -- the speculative read path -------------------------------------------

    def read_block(self, paddr: int) -> tuple[bytes, bool]:
        """Read with speculation. Returns (plaintext, predicted?).

        ``predicted=True`` means the block was decrypted and verified
        without touching the counter block — the fetch the prediction
        hides. Either way the result is architecturally correct.
        """
        paddr = block_address(paddr)
        page_index = paddr // PAGE_SIZE
        lpid = self._lpids.get(page_index)
        on_chip = self.engine.has_cached_counters(page_index)
        if lpid is not None and not on_chip:
            self.stats.attempts += 1
            cipher = self.machine.memory.read_block(paddr)
            stored_mac = self.machine.integrity.store.load(paddr)
            for minor in self._candidates(page_index):
                self.stats.candidate_trials += 1
                tag = (lpid << 7) | minor
                computed = self.machine.integrity.compute_data_mac(paddr, cipher, tag)
                if computed == stored_mac:
                    seeds = self.engine.scheme.seeds_for_block(
                        SeedInput(paddr=paddr, lpid=lpid, counter=minor)
                    )
                    self.stats.hits += 1
                    self._last_minor[page_index] = minor
                    return self.engine.decrypt_with_seeds(cipher, seeds), True
            self.stats.fallbacks += 1
        # Architectural path (fetches + verifies the counter block).
        plain = self.machine.read_block(paddr)
        block = self.engine.page_counters(page_index)
        self.observe(page_index, block.lpid, block.minors[block_in_page(paddr)])
        return plain, False
