"""Analytic model of in-memory storage overheads (paper Table 2).

Every protected byte of data drags metadata into memory: counters, Merkle
tree nodes, per-block MACs, and the page-root directory for swapped-out
pages. This module computes those sizes exactly; Table 2 of the paper is
reproduced to two decimal places by ``repro.evalx.tables.table2``.

Model (validated against all 16 cells of the paper's Table 2 before
implementation — see DESIGN.md section 5):

* Percentages are fractions of *total* memory (data + all metadata).
* A 64-byte tree node holds ``arity = 64 / mac_bytes`` child MACs, so a
  tree covering ``C`` bytes occupies ``C / (arity - 1)`` bytes total.
* The **standard Merkle tree** covers data *and* its counter storage.
* The **Bonsai Merkle tree** covers only the counter storage, while each
  data block additionally carries an (untreed) MAC: ``mac_bytes/64`` per
  data byte.
* The **page root directory** holds one MAC per swap page, with swap
  sized equal to physical memory by default.
* Counter storage: AISE = 64B per 4KB page (1/64); a ``b``-bit global
  counter scheme stores ``b/8`` bytes per 64B block.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.layout import BLOCK_SIZE, PAGE_SIZE
from .config import (
    ENC_AISE,
    ENC_GLOBAL32,
    ENC_GLOBAL64,
    ENC_NONE,
    INT_BMT,
    INT_BMT_LAZY,
    INT_MAC,
    INT_MT,
    INT_NONE,
    MachineConfig,
)
from .errors import ConfigurationError


@dataclass(frozen=True)
class StorageBreakdown:
    """Absolute metadata sizes for a protected memory of ``data_bytes``."""

    data_bytes: float
    counter_bytes: float
    merkle_bytes: float  # tree nodes + (for BMT) per-block data MACs
    page_root_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.data_bytes + self.counter_bytes + self.merkle_bytes + self.page_root_bytes

    # Fractions of total memory — the quantities Table 2 reports.
    @property
    def merkle_fraction(self) -> float:
        return self.merkle_bytes / self.total_bytes

    @property
    def page_root_fraction(self) -> float:
        return self.page_root_bytes / self.total_bytes

    @property
    def counter_fraction(self) -> float:
        return self.counter_bytes / self.total_bytes

    @property
    def overhead_fraction(self) -> float:
        """Total metadata as a fraction of total memory (Table 2's 'Total')."""
        return (self.total_bytes - self.data_bytes) / self.total_bytes

    @property
    def data_fraction(self) -> float:
        return self.data_bytes / self.total_bytes


def counter_bytes_per_data_byte(encryption: str, minor_counter_bits: int = 7) -> float:
    """In-memory counter storage per byte of protected data."""
    if encryption in (ENC_NONE, "direct"):
        return 0.0
    if encryption in (ENC_AISE, "split_ctr"):
        return BLOCK_SIZE / PAGE_SIZE  # one 64B counter block per 4KB page
    if encryption == ENC_GLOBAL64:
        return 8 / BLOCK_SIZE
    if encryption == ENC_GLOBAL32:
        return 4 / BLOCK_SIZE
    if encryption in ("phys_addr", "virt_addr"):
        # Per-block counter of the configured width, packed.
        return (minor_counter_bits / 8) / BLOCK_SIZE
    raise ConfigurationError(f"no counter storage model for scheme {encryption!r}")


def tree_bytes(covered_bytes: float, mac_bytes: int) -> float:
    """Total size of a Merkle tree (all levels) covering ``covered_bytes``."""
    arity = BLOCK_SIZE // mac_bytes
    if arity < 2:
        raise ConfigurationError(
            f"{mac_bytes * 8}-bit MACs leave no fan-out in a {BLOCK_SIZE}B node"
        )
    return covered_bytes / (arity - 1)


def storage_breakdown(
    encryption: str,
    integrity: str,
    mac_bits: int,
    data_bytes: int = 1 << 30,
    swap_bytes: int | None = None,
    minor_counter_bits: int = 7,
) -> StorageBreakdown:
    """Compute the Table 2 storage breakdown for one configuration."""
    if swap_bytes is None:
        swap_bytes = data_bytes
    mac_bytes = mac_bits // 8
    counters = counter_bytes_per_data_byte(encryption, minor_counter_bits) * data_bytes

    if integrity == INT_NONE:
        merkle = 0.0
        page_roots = 0.0
    elif integrity == INT_MAC:
        merkle = data_bytes * mac_bytes / BLOCK_SIZE
        page_roots = 0.0
    elif integrity == INT_MT:
        merkle = tree_bytes(data_bytes + counters, mac_bytes)
        page_roots = swap_bytes / PAGE_SIZE * mac_bytes
    elif integrity in (INT_BMT, INT_BMT_LAZY):
        # The lazy engine reserves the same node region; it just fills
        # it on demand, so the Table 2 breakdown is identical.
        per_block_macs = data_bytes * mac_bytes / BLOCK_SIZE
        merkle = per_block_macs + tree_bytes(counters, mac_bytes)
        page_roots = swap_bytes / PAGE_SIZE * mac_bytes
    else:
        raise ConfigurationError(f"no storage model for integrity scheme {integrity!r}")

    return StorageBreakdown(
        data_bytes=float(data_bytes),
        counter_bytes=counters,
        merkle_bytes=merkle,
        page_root_bytes=page_roots,
    )


@dataclass(frozen=True)
class SwapProtectionCosts:
    """Cost comparison of the two ways to extend integrity to the disk."""

    scheme: str
    on_chip_root_bytes: int  # secure registers the chip must provide
    memory_overhead_bytes: float  # extra off-chip storage
    trees_to_manage: int


def compare_swap_protection(
    processes: int,
    avg_process_bytes: int,
    mac_bits: int = 128,
    physical_bytes: int = 1 << 30,
    swap_bytes: int | None = None,
) -> dict[str, SwapProtectionCosts]:
    """Single tree + page-root directory vs. one Merkle tree per process.

    Section 5.1 mentions the alternative from [Suh et al. ICS'03]: build
    each process's tree over its *virtual* space so it covers the disk
    too — at the price of one secure on-chip root per live process and
    the management of many trees. This quantifies that trade for the
    paper's design point.
    """
    if swap_bytes is None:
        swap_bytes = physical_bytes
    mac_bytes = mac_bits // 8

    # The paper's design: one tree over physical memory, page roots for
    # swapped pages stored in (tree-covered) physical memory.
    directory = swap_bytes / PAGE_SIZE * mac_bytes
    single = SwapProtectionCosts(
        scheme="single-tree + page-root directory",
        on_chip_root_bytes=mac_bytes,
        memory_overhead_bytes=directory,
        trees_to_manage=1,
    )

    # Per-process virtual-space trees: each process's tree covers its own
    # footprint wherever it lives; every live process needs a secure root.
    per_process_nodes = processes * tree_bytes(avg_process_bytes, mac_bytes)
    per_process = SwapProtectionCosts(
        scheme="per-process virtual-space trees",
        on_chip_root_bytes=processes * mac_bytes,
        memory_overhead_bytes=per_process_nodes,
        trees_to_manage=processes,
    )
    return {"single": single, "per_process": per_process}


def breakdown_for_config(config: MachineConfig) -> StorageBreakdown:
    """Storage breakdown for a machine configuration (Table 2 row)."""
    return storage_breakdown(
        config.encryption,
        config.integrity,
        config.mac_bits,
        data_bytes=config.physical_bytes,
        swap_bytes=config.swap_bytes,
        minor_counter_bits=config.minor_counter_bits,
    )
