"""The functional secure processor: encryption + integrity over real bytes.

:class:`SecureMemorySystem` wires together a physical memory (attackable
:class:`~repro.mem.dram.BlockMemory`), an encryption engine, an integrity
engine, the page-root directory, and the on-chip secrets (keys, GPC, root
register). Its block read/write path is the paper's hardware datapath:

    read:  fetch ciphertext -> obtain verified counter -> check MAC /
           Merkle chain -> generate pad from seed -> XOR -> plaintext
    write: advance counter (handling overflow) -> pad -> XOR ->
           store ciphertext -> update MAC / Merkle chain

It also provides the page-granular primitives the OS model needs for
swapping (export/install page images, page roots, subtree invalidation)
— crucially *without* decrypting anything for AISE-encrypted pages.

Everything scheme-specific — counter-region sizing, engine construction,
the per-page counter run a swap image carries — comes from the scheme
descriptors in :mod:`repro.schemes`; this module only orchestrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.mac import make_mac
from ..integrity.pageroot import PageRootDirectory
from ..mem.dram import BlockMemory
from ..mem.layout import BLOCK_SIZE, BLOCKS_PER_PAGE, PAGE_SIZE, block_address, round_to_blocks
from ..schemes import encryption_scheme, integrity_scheme
from .config import MachineConfig
from .counters import GlobalPageCounter
from .encryption import AccessContext, NULL_CONTEXT
from .errors import ConfigurationError


@dataclass(frozen=True)
class PhysicalLayout:
    """Where each metadata region lives in the functional physical memory.

    Regions are laid out contiguously::

        [ data | counters | page-root directory | tree nodes | data MACs ]

    so a Merkle tree can cover a contiguous prefix of the metadata.
    """

    data_bytes: int
    counter_base: int
    counter_bytes: int
    prd_base: int
    prd_bytes: int
    tree_base: int
    tree_bytes: int
    mac_base: int
    mac_bytes_region: int

    @property
    def total_bytes(self) -> int:
        return self.mac_base + self.mac_bytes_region

    def region_of(self, address: int) -> str:
        if address < self.data_bytes:
            return "data"
        if address < self.prd_base:
            return "counter"
        if address < self.tree_base:
            return "page_root"
        if address < self.mac_base:
            return "tree"
        if address < self.total_bytes:
            return "mac"
        return "outside"


def plan_layout(config: MachineConfig):
    """Compute the physical memory map for a configuration.

    Region sizes come from the configuration's scheme descriptors: the
    encryption scheme sizes the counter region, the integrity scheme
    plans its tree geometry and data-MAC region over the result.
    """
    data = config.physical_bytes
    if data % PAGE_SIZE:
        raise ConfigurationError("data region must be a whole number of pages")

    enc_scheme = encryption_scheme(config.encryption)
    integ_scheme = integrity_scheme(config.integrity)

    counter_bytes = enc_scheme.counter_region_bytes(data)
    swap_pages = (config.swap_bytes or data) // PAGE_SIZE
    prd_bytes = round_to_blocks(swap_pages * config.mac_bytes) if integ_scheme.uses_tree else 0

    counter_base = data
    prd_base = counter_base + counter_bytes
    tree_base = prd_base + prd_bytes

    geometry = integ_scheme.plan_tree(
        config,
        data_bytes=data,
        counter_base=counter_base,
        counter_bytes=counter_bytes,
        prd_bytes=prd_bytes,
        tree_base=tree_base,
    )
    tree_bytes_total = geometry.node_bytes if geometry else 0

    mac_base = tree_base + tree_bytes_total
    mac_region = integ_scheme.mac_region_bytes(config, data)

    layout = PhysicalLayout(
        data_bytes=data,
        counter_base=counter_base,
        counter_bytes=counter_bytes,
        prd_base=prd_base,
        prd_bytes=prd_bytes,
        tree_base=tree_base,
        tree_bytes=tree_bytes_total,
        mac_base=mac_base,
        mac_bytes_region=mac_region,
    )
    return layout, geometry


# Swapped-page image format: 8-byte origin-frame header, 4096B of raw
# (still encrypted) page content, then the page's counter run — one 64B
# block for AISE-family and counter-free schemes, more for flat-counter
# schemes whose per-page counters span several blocks (global64: 8).
# These module-level constants describe the *single-counter-block* image
# (the AISE shape); a machine's actual image size is ``image_bytes`` /
# ``image_blocks`` on the instance, derived from its scheme descriptor.
IMAGE_HEADER = 8
IMAGE_BYTES = IMAGE_HEADER + PAGE_SIZE + BLOCK_SIZE
IMAGE_BLOCKS = round_to_blocks(IMAGE_BYTES) // BLOCK_SIZE


class SecureMemorySystem:
    """A functional secure processor plus its protected physical memory."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        master_key: bytes = b"\x00" * 32,
        fast_crypto: bool = True,
        seed_audit=None,
    ):
        self.config = config or MachineConfig()
        self.enc_scheme = encryption_scheme(self.config.encryption)
        self.integ_scheme = integrity_scheme(self.config.integrity)
        self.layout, geometry = plan_layout(self.config)
        self.memory = BlockMemory(self.layout.total_bytes, name="physical")
        self.fast_crypto = fast_crypto
        self._fast_crypto = fast_crypto  # back-compat alias

        # Swap image geometry for this machine's scheme (multi-block
        # counter runs make images larger than the module constants).
        self.image_counter_blocks = self.enc_scheme.image_counter_blocks
        self.image_bytes = IMAGE_HEADER + PAGE_SIZE + self.image_counter_blocks * BLOCK_SIZE
        self.image_blocks = round_to_blocks(self.image_bytes) // BLOCK_SIZE

        # Independent keys for encryption and authentication, derived from
        # the master key exactly like the hardware's key ladder would.
        import hashlib

        self.encryption_key = hashlib.blake2s(master_key, person=b"enc-key0").digest()
        self.mac_key = hashlib.blake2s(master_key, person=b"mac-key0").digest()

        self.gpc = GlobalPageCounter()
        self.mac_fn = make_mac(self.mac_key, self.config.mac_bits, fast=fast_crypto)
        self._mac_fn = self.mac_fn  # back-compat alias

        # Engines, built by the scheme descriptors.
        self.integrity = self.integ_scheme.build_engine(self, geometry)
        self.tree = getattr(self.integrity, "tree", None)
        self.encryption = self.enc_scheme.build_engine(self, seed_audit=seed_audit)

        # Wire the engine's metadata path through the integrity scheme.
        self.encryption.metadata_verify = self.integrity.verify_metadata
        self.encryption.metadata_update = self.integrity.update_metadata
        self.encryption.verify_block = self.integrity.verify_data
        self.encryption.rewrite_block = self._rewrite_block

        # Page-root directory (swap protection), verified through the tree.
        swap_pages = (self.config.swap_bytes or self.layout.data_bytes) // PAGE_SIZE
        self.page_roots = PageRootDirectory(
            self.memory,
            self.layout.prd_base,
            swap_pages,
            self.config.mac_bytes,
            metadata_read=self._verified_metadata_read,
            metadata_write=self._verified_metadata_write,
        ) if self.layout.prd_bytes else None

        self.reads = 0
        self.writes = 0
        self._booted = False

    # -- boot --------------------------------------------------------------------

    @property
    def booted(self) -> bool:
        """Whether :meth:`boot` has built the integrity structures."""
        return self._booted

    def boot(self) -> None:
        """Build integrity structures over current memory (secure boot).

        Models the paper's steady-state assumption (section 3): the
        processor computes the Merkle tree — and, for MAC-carrying
        schemes, every per-block MAC — over the loaded memory image.
        """
        if self.tree is not None:
            self.tree.build()
        if self.integ_scheme.uses_data_macs:
            uses_counters = self.encryption.uses_counters
            for paddr in range(0, self.layout.data_bytes, BLOCK_SIZE):
                cipher = self.memory.read_block(paddr)
                tag = self.encryption.counter_tag(paddr) if uses_counters else 0
                self.integrity.update_data(paddr, cipher, tag)
        self._booted = True

    def reboot(self) -> None:
        """Power-cycle: volatile on-chip state is lost; the GPC (non-volatile,
        section 4.3) and the securely persisted root MAC survive."""
        self.encryption.clear_volatile()
        if self.tree is not None:
            self.tree.clear_volatile()

    # -- hibernation ------------------------------------------------------------------

    def hibernate(self) -> tuple[dict, dict]:
        """Power down completely. Returns ``(nonvolatile, memory_image)``.

        ``nonvolatile`` models the chip's NVRAM (section 4.3): the GPC
        and the sealed root MAC — small, trusted, tamper-free.
        ``memory_image`` is the DRAM contents written to disk — fully
        attacker-accessible while the machine sleeps. Resuming restores
        the root from NVRAM rather than recomputing it, so any tampering
        of the sleeping image is caught on first use.
        """
        if self.tree is not None:
            # A deferred tree's pending queue is volatile: flush it so the
            # persisted root covers what the sleeping image actually holds.
            self.tree.flush_pending()
        nonvolatile = {
            "gpc": self.gpc.save_state(),
            "root": self.tree.root.value if self.tree is not None else None,
            "tree_state": self.tree.persist_state() if self.tree is not None else None,
            "config": (self.config.encryption, self.config.integrity, self.config.mac_bits,
                       self.config.physical_bytes, self.config.swap_bytes),
        }
        memory_image = self.memory.snapshot_blocks()
        return nonvolatile, memory_image

    @classmethod
    def resume(
        cls,
        nonvolatile: dict,
        memory_image: dict,
        config: MachineConfig,
        master_key: bytes = b"\x00" * 32,
        fast_crypto: bool = True,
    ) -> "SecureMemorySystem":
        """Wake a hibernated machine from its NVRAM state + memory image."""
        fingerprint = (config.encryption, config.integrity, config.mac_bits,
                       config.physical_bytes, config.swap_bytes)
        if fingerprint != nonvolatile["config"]:
            raise ConfigurationError("resume configuration does not match hibernated machine")
        machine = cls(config, master_key=master_key, fast_crypto=fast_crypto)
        machine.memory.restore_blocks(memory_image)
        machine.gpc.restore_state(nonvolatile["gpc"])
        if machine.tree is not None:
            machine.tree.restore_root(nonvolatile["root"])
            # A lazy tree's materialization set is part of the sealed
            # state: without it a resumed tree would re-measure (and
            # silently bless) leaves tampered while powered down.
            machine.tree.restore_state(nonvolatile.get("tree_state"))
        machine._booted = True
        return machine

    # -- metadata plumbing ----------------------------------------------------------

    def _verified_metadata_read(self, address: int) -> bytes:
        raw = self.memory.read_block(address)
        self.integrity.verify_metadata(address, raw)
        return raw

    def _verified_metadata_write(self, address: int, raw: bytes) -> None:
        self.memory.write_block(address, raw)
        self.integrity.update_metadata(address, raw)

    def _rewrite_block(self, address: int, cipher: bytes, tag: int) -> None:
        """Engine hook used during page / whole-memory re-encryption."""
        self.memory.write_block(address, cipher)
        self.integrity.update_data(address, cipher, tag)

    # -- the block datapath -----------------------------------------------------------

    def read_block(self, paddr: int, ctx: AccessContext = NULL_CONTEXT) -> bytes:
        """Fetch, verify, and decrypt one 64B block of protected data."""
        if not self._booted:
            raise ConfigurationError("call boot() before accessing protected memory")
        if paddr % BLOCK_SIZE or not 0 <= paddr < self.layout.data_bytes:
            raise ValueError(f"invalid data block address {paddr:#x}")
        self.reads += 1
        cipher = self.memory.read_block(paddr)
        tag = self.encryption.counter_tag(paddr, ctx)
        self.integrity.verify_data(paddr, cipher, tag)
        return self.encryption.decrypt(paddr, cipher, ctx)

    def write_block(self, paddr: int, plain: bytes, ctx: AccessContext = NULL_CONTEXT) -> None:
        """Encrypt, store, and re-anchor one 64B block of protected data."""
        if not self._booted:
            raise ConfigurationError("call boot() before accessing protected memory")
        if paddr % BLOCK_SIZE or not 0 <= paddr < self.layout.data_bytes:
            raise ValueError(f"invalid data block address {paddr:#x}")
        self.writes += 1
        cipher, tag = self.encryption.encrypt_for_write(paddr, plain, ctx)
        self.memory.write_block(paddr, cipher)
        self.integrity.update_data(paddr, cipher, tag)

    # Byte-granular convenience (read-modify-write across blocks).

    def read_bytes(self, paddr: int, length: int, ctx: AccessContext = NULL_CONTEXT) -> bytes:
        """Byte-granular read spanning blocks (convenience wrapper)."""
        out = bytearray()
        cursor = paddr
        end = paddr + length
        while cursor < end:
            base = block_address(cursor)
            block = self.read_block(base, ctx)
            lo = cursor - base
            hi = min(BLOCK_SIZE, end - base)
            out.extend(block[lo:hi])
            cursor = base + hi
        return bytes(out)

    def write_bytes(self, paddr: int, data: bytes, ctx: AccessContext = NULL_CONTEXT) -> None:
        """Byte-granular write; partial blocks read-modify-write."""
        cursor = paddr
        offset = 0
        end = paddr + len(data)
        while cursor < end:
            base = block_address(cursor)
            lo = cursor - base
            hi = min(BLOCK_SIZE, end - base)
            if lo == 0 and hi == BLOCK_SIZE:
                block = data[offset : offset + BLOCK_SIZE]
            else:
                block = bytearray(self.read_block(base, ctx))
                block[lo:hi] = data[offset : offset + (hi - lo)]
                block = bytes(block)
            self.write_block(base, block, ctx)
            offset += hi - lo
            cursor = base + hi

    # -- page-granular primitives for the OS model ----------------------------------

    def export_page_image(self, frame_index: int) -> bytes:
        """Serialize a frame for swap-out: raw ciphertext + counter run.

        No decryption happens — for AISE this is the paper's point
        (section 4.4): the page and its counter block move to disk as-is.
        Flat-counter schemes export their page's whole counter run (which
        may span several blocks), so nothing is lost across the swap.
        """
        page_base = frame_index * PAGE_SIZE
        body = bytearray(page_base.to_bytes(IMAGE_HEADER, "big"))
        for block in range(BLOCKS_PER_PAGE):
            body.extend(self.memory.read_block(page_base + block * BLOCK_SIZE))
        body.extend(self.enc_scheme.export_counter_run(self, frame_index))
        body.extend(bytes(self.image_blocks * BLOCK_SIZE - len(body)))  # pad to blocks
        return bytes(body)

    def page_root_of_image(self, image: bytes) -> bytes:
        """The page-root MAC stored in the page root directory."""
        return self.mac_fn.compute(image + b"page-root")

    def install_page_image(self, frame_index: int, image: bytes) -> None:
        """Swap-in: place raw ciphertext + counters at a (possibly new) frame
        and re-anchor integrity metadata. Still no decryption for AISE."""
        page_base = frame_index * PAGE_SIZE
        offset = IMAGE_HEADER
        counter_lo = IMAGE_HEADER + PAGE_SIZE
        counter_raw = image[counter_lo : counter_lo + self.image_counter_blocks * BLOCK_SIZE]
        self.enc_scheme.install_counter_run(self, frame_index, counter_raw)
        if self.tree is not None:
            # A deferred tree must anchor the freshly installed counter
            # run before the page's data MACs can ever verify against it.
            run = self.enc_scheme.counter_run_range(self, frame_index)
            if run is not None:
                self.tree.flush_pending(run[0], run[1])
        for block in range(BLOCKS_PER_PAGE):
            paddr = page_base + block * BLOCK_SIZE
            cipher = image[offset : offset + BLOCK_SIZE]
            offset += BLOCK_SIZE
            self.memory.write_block(paddr, cipher)
            tag = self.encryption.counter_tag(paddr) if self.encryption.uses_counters else 0
            self.integrity.update_data(paddr, cipher, tag)

    def invalidate_page(self, frame_index: int) -> None:
        """Drop on-chip state for a frame being vacated (section 5.1 step 3)."""
        page_base = frame_index * PAGE_SIZE
        if self.tree is not None and self.tree.geometry.covers(page_base):
            self.tree.invalidate_covered_range(page_base, PAGE_SIZE)
        self.enc_scheme.drop_page_state(self, frame_index)

    @property
    def data_pages(self) -> int:
        return self.layout.data_bytes // PAGE_SIZE
