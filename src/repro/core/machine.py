"""The functional secure processor: encryption + integrity over real bytes.

:class:`SecureMemorySystem` wires together a physical memory (attackable
:class:`~repro.mem.dram.BlockMemory`), an encryption engine, an integrity
engine, the page-root directory, and the on-chip secrets (keys, GPC, root
register). Its block read/write path is the paper's hardware datapath:

    read:  fetch ciphertext -> obtain verified counter -> check MAC /
           Merkle chain -> generate pad from seed -> XOR -> plaintext
    write: advance counter (handling overflow) -> pad -> XOR ->
           store ciphertext -> update MAC / Merkle chain

It also provides the page-granular primitives the OS model needs for
swapping (export/install page images, page roots, subtree invalidation)
— crucially *without* decrypting anything for AISE-encrypted pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.mac import make_mac
from ..integrity.bonsai import BonsaiMerkleIntegrity, StandardMerkleIntegrity
from ..integrity.geometry import TreeGeometry
from ..integrity.loghash import LogHashIntegrity
from ..integrity.macs import MacOnlyIntegrity, MacStore
from ..integrity.merkle import MerkleTree
from ..integrity.pageroot import PageRootDirectory
from ..mem.dram import BlockMemory
from ..mem.layout import BLOCK_SIZE, BLOCKS_PER_PAGE, PAGE_SIZE, block_address
from .config import (
    ENC_AISE,
    ENC_DIRECT,
    ENC_GLOBAL32,
    ENC_GLOBAL64,
    ENC_NONE,
    ENC_PHYS,
    ENC_SPLIT,
    ENC_VIRT,
    INT_BMT,
    INT_LOGHASH,
    INT_MAC,
    INT_MT,
    INT_NONE,
    MachineConfig,
)
from .counters import GlobalPageCounter
from .encryption import (
    AccessContext,
    AddressSeedEncryption,
    AiseEncryption,
    EncryptionEngine,
    GlobalCounterEncryption,
    NULL_CONTEXT,
    NullEncryption,
)
from .errors import ConfigurationError


def _round_blocks(size: int) -> int:
    return (size + BLOCK_SIZE - 1) // BLOCK_SIZE * BLOCK_SIZE


@dataclass(frozen=True)
class PhysicalLayout:
    """Where each metadata region lives in the functional physical memory.

    Regions are laid out contiguously::

        [ data | counters | page-root directory | tree nodes | data MACs ]

    so a Merkle tree can cover a contiguous prefix of the metadata.
    """

    data_bytes: int
    counter_base: int
    counter_bytes: int
    prd_base: int
    prd_bytes: int
    tree_base: int
    tree_bytes: int
    mac_base: int
    mac_bytes_region: int

    @property
    def total_bytes(self) -> int:
        return self.mac_base + self.mac_bytes_region

    def region_of(self, address: int) -> str:
        if address < self.data_bytes:
            return "data"
        if address < self.prd_base:
            return "counter"
        if address < self.tree_base:
            return "page_root"
        if address < self.mac_base:
            return "tree"
        if address < self.total_bytes:
            return "mac"
        return "outside"


def plan_layout(config: MachineConfig) -> tuple[PhysicalLayout, TreeGeometry | None]:
    """Compute the physical memory map for a configuration."""
    data = config.physical_bytes
    if data % PAGE_SIZE:
        raise ConfigurationError("data region must be a whole number of pages")

    if config.encryption in (ENC_AISE, ENC_SPLIT):
        counter_bytes = data // PAGE_SIZE * BLOCK_SIZE
    elif config.encryption == ENC_GLOBAL64:
        counter_bytes = _round_blocks(data // BLOCK_SIZE * 8)
    elif config.encryption == ENC_GLOBAL32:
        counter_bytes = _round_blocks(data // BLOCK_SIZE * 4)
    elif config.encryption in (ENC_PHYS, ENC_VIRT):
        counter_bytes = _round_blocks(data // BLOCK_SIZE * 4)
    else:
        counter_bytes = 0

    uses_tree = config.integrity in (INT_MT, INT_BMT)
    swap_pages = (config.swap_bytes or data) // PAGE_SIZE
    prd_bytes = _round_blocks(swap_pages * config.mac_bytes) if uses_tree else 0

    counter_base = data
    prd_base = counter_base + counter_bytes
    tree_base = prd_base + prd_bytes

    geometry = None
    if config.integrity == INT_MT:
        covered = data + counter_bytes + prd_bytes
        geometry = TreeGeometry(0, covered, tree_base, config.mac_bytes)
    elif config.integrity == INT_BMT:
        if counter_bytes == 0:
            raise ConfigurationError(
                "a Bonsai Merkle Tree needs counter storage to cover: "
                "use a counter-mode encryption scheme with it"
            )
        covered = counter_bytes + prd_bytes
        geometry = TreeGeometry(counter_base, covered, tree_base, config.mac_bytes)
    tree_bytes_total = geometry.node_bytes if geometry else 0

    mac_base = tree_base + tree_bytes_total
    if config.integrity in (INT_BMT, INT_MAC):
        mac_region = _round_blocks(data // BLOCK_SIZE * config.mac_bytes)
    else:
        mac_region = 0

    layout = PhysicalLayout(
        data_bytes=data,
        counter_base=counter_base,
        counter_bytes=counter_bytes,
        prd_base=prd_base,
        prd_bytes=prd_bytes,
        tree_base=tree_base,
        tree_bytes=tree_bytes_total,
        mac_base=mac_base,
        mac_bytes_region=mac_region,
    )
    return layout, geometry


# Swapped-page image format: 8-byte origin-frame header, 4096B of raw
# (still encrypted) page content, 64B counter block.
IMAGE_HEADER = 8
IMAGE_BYTES = IMAGE_HEADER + PAGE_SIZE + BLOCK_SIZE
IMAGE_BLOCKS = _round_blocks(IMAGE_BYTES) // BLOCK_SIZE


class SecureMemorySystem:
    """A functional secure processor plus its protected physical memory."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        master_key: bytes = b"\x00" * 32,
        fast_crypto: bool = True,
        seed_audit=None,
    ):
        self.config = config or MachineConfig()
        self.layout, geometry = plan_layout(self.config)
        self.memory = BlockMemory(self.layout.total_bytes, name="physical")
        self._fast_crypto = fast_crypto

        # Independent keys for encryption and authentication, derived from
        # the master key exactly like the hardware's key ladder would.
        import hashlib

        self.encryption_key = hashlib.blake2s(master_key, person=b"enc-key0").digest()
        self.mac_key = hashlib.blake2s(master_key, person=b"mac-key0").digest()

        self.gpc = GlobalPageCounter()
        mac_fn = make_mac(self.mac_key, self.config.mac_bits, fast=fast_crypto)
        self._mac_fn = mac_fn

        # Integrity engine.
        self.tree: MerkleTree | None = None
        integrity = self.config.integrity
        if integrity == INT_MT:
            self.tree = MerkleTree(self.memory, geometry, mac_fn)
            self.integrity = StandardMerkleIntegrity(self.memory, self.tree)
        elif integrity == INT_BMT:
            self.tree = MerkleTree(self.memory, geometry, mac_fn)
            store = MacStore(
                self.memory, self.layout.mac_base, 0, self.layout.data_bytes, self.config.mac_bytes
            )
            self.integrity = BonsaiMerkleIntegrity(self.memory, store, self.tree, mac_fn)
        elif integrity == INT_MAC:
            store = MacStore(
                self.memory, self.layout.mac_base, 0, self.layout.data_bytes, self.config.mac_bytes
            )
            self.integrity = MacOnlyIntegrity(self.memory, store, mac_fn)
        elif integrity == INT_LOGHASH:
            self.integrity = LogHashIntegrity(self.memory, mac_fn)
        elif integrity == INT_NONE:
            self.integrity = _NullIntegrity()
        else:
            raise ConfigurationError(f"unsupported integrity scheme {integrity!r}")

        # Encryption engine.
        enc = self.config.encryption
        common = dict(
            memory=self.memory,
            counter_base=self.layout.counter_base,
            data_bytes=self.layout.data_bytes,
        )
        if enc == ENC_AISE:
            self.encryption: EncryptionEngine = AiseEncryption(
                self.encryption_key, gpc=self.gpc, fast_crypto=fast_crypto,
                seed_audit=seed_audit, **common
            )
        elif enc == ENC_SPLIT:
            from .encryption import SplitCounterEncryption

            self.encryption = SplitCounterEncryption(
                self.encryption_key, fast_crypto=fast_crypto, seed_audit=seed_audit, **common
            )
        elif enc in (ENC_GLOBAL32, ENC_GLOBAL64):
            bits = 32 if enc == ENC_GLOBAL32 else 64
            self.encryption = GlobalCounterEncryption(
                self.encryption_key, bits=bits, fast_crypto=fast_crypto, **common
            )
        elif enc in (ENC_PHYS, ENC_VIRT):
            self.encryption = AddressSeedEncryption(
                self.encryption_key,
                virtual=(enc == ENC_VIRT),
                fast_crypto=fast_crypto,
                seed_audit=seed_audit,
                **common,
            )
        elif enc == ENC_DIRECT:
            from .encryption import DirectEncryption

            self.encryption = DirectEncryption(self.encryption_key)
        elif enc == ENC_NONE:
            self.encryption = NullEncryption()
        else:
            raise ConfigurationError(f"unsupported encryption scheme {enc!r}")

        # Wire the engine's metadata path through the integrity scheme.
        self.encryption.metadata_verify = self.integrity.verify_metadata
        self.encryption.metadata_update = self.integrity.update_metadata
        self.encryption.rewrite_block = self._rewrite_block

        # Page-root directory (swap protection), verified through the tree.
        swap_pages = (self.config.swap_bytes or self.layout.data_bytes) // PAGE_SIZE
        self.page_roots = PageRootDirectory(
            self.memory,
            self.layout.prd_base,
            swap_pages,
            self.config.mac_bytes,
            metadata_read=self._verified_metadata_read,
            metadata_write=self._verified_metadata_write,
        ) if self.layout.prd_bytes else None

        self.reads = 0
        self.writes = 0
        self._booted = False

    # -- boot --------------------------------------------------------------------

    def boot(self) -> None:
        """Build integrity structures over current memory (secure boot).

        Models the paper's steady-state assumption (section 3): the
        processor computes the Merkle tree — and, for MAC-carrying
        schemes, every per-block MAC — over the loaded memory image.
        """
        if self.tree is not None:
            self.tree.build()
        if self.config.integrity in (INT_BMT, INT_MAC):
            uses_counters = self.encryption.uses_counters
            for paddr in range(0, self.layout.data_bytes, BLOCK_SIZE):
                cipher = self.memory.read_block(paddr)
                tag = self.encryption.counter_tag(paddr) if uses_counters else 0
                self.integrity.update_data(paddr, cipher, tag)
        self._booted = True

    def reboot(self) -> None:
        """Power-cycle: volatile on-chip state is lost; the GPC (non-volatile,
        section 4.3) and the securely persisted root MAC survive."""
        if isinstance(self.encryption, AiseEncryption):
            self.encryption._cache.clear()
        if self.tree is not None:
            self.tree._trusted.clear()

    # -- hibernation ------------------------------------------------------------------

    def hibernate(self) -> tuple[dict, dict]:
        """Power down completely. Returns ``(nonvolatile, memory_image)``.

        ``nonvolatile`` models the chip's NVRAM (section 4.3): the GPC
        and the sealed root MAC — small, trusted, tamper-free.
        ``memory_image`` is the DRAM contents written to disk — fully
        attacker-accessible while the machine sleeps. Resuming restores
        the root from NVRAM rather than recomputing it, so any tampering
        of the sleeping image is caught on first use.
        """
        nonvolatile = {
            "gpc": self.gpc.save_state(),
            "root": self.tree.root.value if self.tree is not None else None,
            "config": (self.config.encryption, self.config.integrity, self.config.mac_bits,
                       self.config.physical_bytes, self.config.swap_bytes),
        }
        memory_image = dict(self.memory._blocks)
        return nonvolatile, memory_image

    @classmethod
    def resume(
        cls,
        nonvolatile: dict,
        memory_image: dict,
        config: MachineConfig,
        master_key: bytes = b"\x00" * 32,
        fast_crypto: bool = True,
    ) -> "SecureMemorySystem":
        """Wake a hibernated machine from its NVRAM state + memory image."""
        fingerprint = (config.encryption, config.integrity, config.mac_bits,
                       config.physical_bytes, config.swap_bytes)
        if fingerprint != nonvolatile["config"]:
            raise ConfigurationError("resume configuration does not match hibernated machine")
        machine = cls(config, master_key=master_key, fast_crypto=fast_crypto)
        machine.memory._blocks = dict(memory_image)
        machine.gpc.restore_state(nonvolatile["gpc"])
        if machine.tree is not None:
            machine.tree.root.store(nonvolatile["root"])
        machine._booted = True
        return machine

    # -- metadata plumbing ----------------------------------------------------------

    def _verified_metadata_read(self, address: int) -> bytes:
        raw = self.memory.read_block(address)
        self.integrity.verify_metadata(address, raw)
        return raw

    def _verified_metadata_write(self, address: int, raw: bytes) -> None:
        self.memory.write_block(address, raw)
        self.integrity.update_metadata(address, raw)

    def _rewrite_block(self, address: int, cipher: bytes, tag: int) -> None:
        """Engine hook used during page / whole-memory re-encryption."""
        self.memory.write_block(address, cipher)
        self.integrity.update_data(address, cipher, tag)

    # -- the block datapath -----------------------------------------------------------

    def read_block(self, paddr: int, ctx: AccessContext = NULL_CONTEXT) -> bytes:
        """Fetch, verify, and decrypt one 64B block of protected data."""
        if not self._booted:
            raise ConfigurationError("call boot() before accessing protected memory")
        if paddr % BLOCK_SIZE or not 0 <= paddr < self.layout.data_bytes:
            raise ValueError(f"invalid data block address {paddr:#x}")
        self.reads += 1
        cipher = self.memory.read_block(paddr)
        tag = self.encryption.counter_tag(paddr, ctx)
        self.integrity.verify_data(paddr, cipher, tag)
        return self.encryption.decrypt(paddr, cipher, ctx)

    def write_block(self, paddr: int, plain: bytes, ctx: AccessContext = NULL_CONTEXT) -> None:
        """Encrypt, store, and re-anchor one 64B block of protected data."""
        if not self._booted:
            raise ConfigurationError("call boot() before accessing protected memory")
        if paddr % BLOCK_SIZE or not 0 <= paddr < self.layout.data_bytes:
            raise ValueError(f"invalid data block address {paddr:#x}")
        self.writes += 1
        cipher, tag = self.encryption.encrypt_for_write(paddr, plain, ctx)
        self.memory.write_block(paddr, cipher)
        self.integrity.update_data(paddr, cipher, tag)

    # Byte-granular convenience (read-modify-write across blocks).

    def read_bytes(self, paddr: int, length: int, ctx: AccessContext = NULL_CONTEXT) -> bytes:
        """Byte-granular read spanning blocks (convenience wrapper)."""
        out = bytearray()
        cursor = paddr
        end = paddr + length
        while cursor < end:
            base = block_address(cursor)
            block = self.read_block(base, ctx)
            lo = cursor - base
            hi = min(BLOCK_SIZE, end - base)
            out.extend(block[lo:hi])
            cursor = base + hi
        return bytes(out)

    def write_bytes(self, paddr: int, data: bytes, ctx: AccessContext = NULL_CONTEXT) -> None:
        """Byte-granular write; partial blocks read-modify-write."""
        cursor = paddr
        offset = 0
        end = paddr + len(data)
        while cursor < end:
            base = block_address(cursor)
            lo = cursor - base
            hi = min(BLOCK_SIZE, end - base)
            if lo == 0 and hi == BLOCK_SIZE:
                block = data[offset : offset + BLOCK_SIZE]
            else:
                block = bytearray(self.read_block(base, ctx))
                block[lo:hi] = data[offset : offset + (hi - lo)]
                block = bytes(block)
            self.write_block(base, block, ctx)
            offset += hi - lo
            cursor = base + hi

    # -- page-granular primitives for the OS model ----------------------------------

    def export_page_image(self, frame_index: int) -> bytes:
        """Serialize a frame for swap-out: raw ciphertext + counter block.

        No decryption happens — for AISE this is the paper's point
        (section 4.4): the page and its counter block move to disk as-is.
        """
        page_base = frame_index * PAGE_SIZE
        body = bytearray(page_base.to_bytes(IMAGE_HEADER, "big"))
        for block in range(BLOCKS_PER_PAGE):
            body.extend(self.memory.read_block(page_base + block * BLOCK_SIZE))
        body.extend(self._export_counter_block(frame_index))
        body.extend(bytes(IMAGE_BLOCKS * BLOCK_SIZE - len(body)))  # pad to blocks
        return bytes(body)

    def _export_counter_block(self, frame_index: int) -> bytes:
        if isinstance(self.encryption, AiseEncryption):
            return self.encryption.export_counter_block(frame_index)
        if self.encryption.uses_counters:
            # Flat-counter schemes: copy the raw counter bytes for the page.
            out = bytearray()
            for block in range(BLOCKS_PER_PAGE):
                paddr = frame_index * PAGE_SIZE + block * BLOCK_SIZE
                addr = self.encryption.counter_block_address(paddr)
                raw = self.memory.read_block(addr)
                out = bytearray(raw)  # page's counters share at most one block here
            return bytes(out[:BLOCK_SIZE].ljust(BLOCK_SIZE, b"\x00"))
        return bytes(BLOCK_SIZE)

    def page_root_of_image(self, image: bytes) -> bytes:
        """The page-root MAC stored in the page root directory."""
        return self._mac_fn.compute(image + b"page-root")

    def install_page_image(self, frame_index: int, image: bytes) -> None:
        """Swap-in: place raw ciphertext + counters at a (possibly new) frame
        and re-anchor integrity metadata. Still no decryption for AISE."""
        page_base = frame_index * PAGE_SIZE
        offset = IMAGE_HEADER
        counter_raw = image[IMAGE_HEADER + PAGE_SIZE : IMAGE_HEADER + PAGE_SIZE + BLOCK_SIZE]
        if isinstance(self.encryption, AiseEncryption):
            self.encryption.install_counter_block(frame_index, counter_raw)
        for block in range(BLOCKS_PER_PAGE):
            paddr = page_base + block * BLOCK_SIZE
            cipher = image[offset : offset + BLOCK_SIZE]
            offset += BLOCK_SIZE
            self.memory.write_block(paddr, cipher)
            tag = self.encryption.counter_tag(paddr) if self.encryption.uses_counters else 0
            self.integrity.update_data(paddr, cipher, tag)

    def invalidate_page(self, frame_index: int) -> None:
        """Drop on-chip state for a frame being vacated (section 5.1 step 3)."""
        page_base = frame_index * PAGE_SIZE
        if self.tree is not None and self.tree.geometry.covers(page_base):
            self.tree.invalidate_covered_range(page_base, PAGE_SIZE)
        if isinstance(self.encryption, AiseEncryption):
            self.encryption.drop_cached_counters(frame_index)

    @property
    def data_pages(self) -> int:
        return self.layout.data_bytes // PAGE_SIZE


class _NullIntegrity:
    """No integrity protection (encryption-only or unprotected machines)."""

    kind = "none"
    detects_replay = False

    def verify_data(self, address, cipher, counter=0):
        return None

    def update_data(self, address, cipher, counter=0):
        return None

    def verify_metadata(self, address, raw):
        return None

    def update_metadata(self, address, raw):
        return None
