"""Runtime sanitizer: cheap invariant assertions at the security seams.

The static rules in :mod:`repro.analysis` claim the code *preserves* the
paper's invariants; this module gives those claims a dynamic counterpart.
When armed, hot paths run inexpensive checks at the existing seams:

* **counter monotonicity** (:mod:`repro.core.counters`) — minor counters
  stay in their 7-bit range and only step forward or wrap through the
  overflow APIs (paper sections 4.1/4.3: a rolled-back counter is a
  reused pad);
* **BMT root consistency** (:mod:`repro.integrity.bonsai`) — every Nth
  metadata update re-checks that the in-memory top tree node still
  matches the on-chip root register (the update-ordering bugs Freij et
  al. catalogue show exactly this drifting);
* **cache inclusion/bookkeeping** (:mod:`repro.mem.cache`) — sets never
  exceed their associativity and the per-class line tallies match a
  recount (Figure 9's occupancy numbers are only as good as these
  tallies);
* **frame/swap ownership** (:mod:`repro.osmodel.swap`) — kernel DMA only
  targets allocated swap slots (section 5.1's page-root protocol assumes
  slot identity is stable while a page is out).

Arming is ambient (module-level) so the functional machine, the kernel,
and the test-suite can all run "sanitized" without threading a flag
through every constructor: use the :func:`sanitized` context manager,
call :func:`arm` explicitly, or set ``REPRO_SANITIZE=1`` in the
environment before import (how CI runs the armed test suite).

Checks raise :class:`SanitizerError` for *internal* invariant breaks
(bugs in this codebase). Divergence that a real attacker could have
caused (the BMT spot check) raises the usual
:class:`~repro.core.errors.IntegrityError` so detection semantics stay
uniform.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace


class SanitizerError(AssertionError):
    """An armed invariant check failed — a codebase bug, not an attack."""


@dataclass(frozen=True)
class SanitizerConfig:
    """Which invariant checks are armed, and how often the periodic ones run."""

    counter_monotonicity: bool = True
    bmt_root_spot_check: bool = True
    cache_inclusion: bool = True
    swap_ownership: bool = True
    # Periodic checks (BMT root, full cache recount) run every Nth event;
    # per-event checks (counter steps, slot ownership) always run.
    spot_check_interval: int = 64


_active: SanitizerConfig | None = None


def arm(config: SanitizerConfig | None = None) -> SanitizerConfig:
    """Turn the sanitizer on (idempotent); returns the active config."""
    global _active
    _active = config if config is not None else SanitizerConfig()
    return _active


def disarm() -> None:
    global _active
    _active = None


def active() -> SanitizerConfig | None:
    """The armed configuration, or None when the sanitizer is off."""
    return _active


def enabled(check: str) -> bool:
    """Fast hot-path predicate: is the named check armed?"""
    config = _active
    return config is not None and getattr(config, check)


def spot_interval() -> int:
    """The armed spot-check interval (0 when disarmed — callers skip)."""
    config = _active
    return config.spot_check_interval if config is not None else 0


@contextmanager
def sanitized(**overrides):
    """Arm the sanitizer for a ``with`` block, restoring the prior state.

    Keyword overrides are applied to a default :class:`SanitizerConfig`
    (or to the currently armed one), e.g.::

        with sanitized(spot_check_interval=1):
            machine.write_block(0, payload)
    """
    global _active
    previous = _active
    base = previous if previous is not None else SanitizerConfig()
    _active = replace(base, **overrides) if overrides else base
    try:
        yield _active
    finally:
        _active = previous


def check(condition: bool, message: str) -> None:
    """Raise :class:`SanitizerError` unless ``condition`` holds."""
    if not condition:
        raise SanitizerError(message)


# CI and benchmark runs arm the whole process by exporting REPRO_SANITIZE=1.
if os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0"):
    arm()
