"""Seed composition schemes for counter-mode memory encryption.

The security of counter-mode hinges on *global seed uniqueness* — spatial
(across blocks) and temporal (across versions of one block). The paper
contrasts four ways of achieving (or failing to achieve) it:

* ``global`` — one monotonic counter stamped on every writeback. Unique by
  construction but caches poorly and wraps (whole-memory re-encryption).
* ``phys_addr`` — physical block address + per-block counter. Unique in
  RAM, but page swaps relocate blocks: pages must be re-encrypted on swap
  and pads can be reused between a swapped-out page and its old frame.
* ``virt_addr`` — virtual address (+ optionally process ID) + per-block
  counter. Without the PID, different processes reuse pads; with it,
  shared-memory IPC, fork/COW and shared libraries break.
* ``aise`` (the paper's proposal) — logical page identifier + page offset
  + per-block minor counter + chunk id. Address-free, hence unique across
  physical and swap memory and over the machine's lifetime.

Each scheme packs its components into a 128-bit seed (one per 16-byte
chunk) and carries the qualitative properties reported in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import fastpath
from ..mem.layout import BLOCK_SIZE, CHUNKS_PER_BLOCK, block_in_page
from .errors import SeedReuseError

_SEED_MASK = (1 << 128) - 1


@dataclass(frozen=True, slots=True)
class SeedInput:
    """Everything a seed scheme might need for one block access.

    Only the fields a given scheme uses need to be meaningful; the
    memory controller fills in whatever its configuration requires.
    """

    paddr: int = 0  # block-aligned physical address
    vaddr: int = 0  # block-aligned virtual address
    pid: int = 0  # process id (virt_addr scheme)
    lpid: int = 0  # logical page identifier (AISE)
    counter: int = 0  # per-block counter or stamped global counter value


@dataclass(frozen=True)
class SchemeProperties:
    """The qualitative comparison axes of Table 1."""

    name: str
    ipc_support: str
    latency_hiding: str
    storage_overhead: str
    other_issues: str
    reencrypt_on_swap: bool
    supports_shared_memory: bool
    counter_bytes_per_data_byte: float  # in-memory counter storage / data


class SeedScheme:
    """Base class: composes the four per-chunk seeds for one block.

    Under :mod:`repro.fastpath` the per-block seed tuples are *interned*:
    a seed is a pure function of the (immutable) scheme parameters and
    the :class:`SeedInput`, so identical inputs yield the one memoized
    tuple instead of recomposing four 128-bit integers per access. The
    memo is bounded (cleared wholesale at :attr:`MEMO_CAPACITY`) and
    disabled entirely when the gate is off, restoring the reference
    behaviour.
    """

    __slots__ = ("_seed_memo",)

    name = "abstract"

    #: Entries held in the per-scheme seed-tuple memo before a wholesale
    #: clear; every writeback bumps a counter and mints a fresh input, so
    #: the memo would otherwise grow with trace length.
    MEMO_CAPACITY = 8192

    def __init__(self):
        self._seed_memo: dict | None = {} if fastpath.enabled() else None

    def seed(self, ctx: SeedInput, chunk: int) -> int:
        raise NotImplementedError

    def seeds_for_block(self, ctx: SeedInput) -> tuple[int, ...]:
        memo = self._seed_memo
        if memo is None:
            return tuple(self.seed(ctx, chunk) & _SEED_MASK for chunk in range(CHUNKS_PER_BLOCK))
        seeds = memo.get(ctx)
        if seeds is None:
            seeds = tuple(self.seed(ctx, chunk) & _SEED_MASK for chunk in range(CHUNKS_PER_BLOCK))
            if len(memo) >= self.MEMO_CAPACITY:
                memo.clear()
            memo[ctx] = seeds
        return seeds

    @property
    def properties(self) -> SchemeProperties:
        raise NotImplementedError


class AiseSeedScheme(SeedScheme):
    """AISE: seed = LPID | minor counter | page offset (block + chunk).

    Matches Figure 3: 64-bit LPID, 7-bit counter, 6-bit block-in-page,
    2-bit chunk id, zero-padded to 128 bits.
    """

    __slots__ = ()

    name = "aise"

    def seed(self, ctx: SeedInput, chunk: int) -> int:
        block = block_in_page(ctx.paddr if ctx.lpid else ctx.vaddr)
        return (ctx.lpid << 64) | (ctx.counter << 16) | (block << 8) | chunk

    @property
    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            name="AISE",
            ipc_support="Yes",
            latency_hiding="Good",
            storage_overhead="Low (1.6%)",
            other_issues="None",
            reencrypt_on_swap=False,
            supports_shared_memory=True,
            counter_bytes_per_data_byte=BLOCK_SIZE / 4096,  # 64B per 4KB page
        )


class GlobalCounterSeedScheme(SeedScheme):
    """Global-counter baseline: seed = stamped counter value | chunk id."""

    __slots__ = ("bits", "name")

    def __init__(self, bits: int = 64):
        super().__init__()
        self.bits = bits
        self.name = f"global{bits}"

    def seed(self, ctx: SeedInput, chunk: int) -> int:
        return (ctx.counter << 8) | chunk

    @property
    def properties(self) -> SchemeProperties:
        per_block = self.bits / 8 / BLOCK_SIZE
        hiding = "Caching: Poor, Prediction: Difficult"
        storage = f"High ({self.bits}-bit: {per_block:.1%})"
        issues = "None" if self.bits >= 64 else "Frequent whole-memory re-encryption"
        return SchemeProperties(
            name=f"Global Counter ({self.bits}-bit)",
            ipc_support="Yes",
            latency_hiding=hiding,
            storage_overhead=storage,
            other_issues=issues,
            reencrypt_on_swap=False,
            supports_shared_memory=True,
            counter_bytes_per_data_byte=per_block,
        )


class PhysicalAddressSeedScheme(SeedScheme):
    """Baseline: seed = physical block address | per-block counter | chunk."""

    __slots__ = ("counter_bits",)

    name = "phys_addr"

    def __init__(self, counter_bits: int = 32):
        super().__init__()
        self.counter_bits = counter_bits

    def seed(self, ctx: SeedInput, chunk: int) -> int:
        block_number = ctx.paddr // BLOCK_SIZE
        return (block_number << 64) | (ctx.counter << 8) | chunk

    @property
    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            name="Counter (Phys Addr)",
            ipc_support="Yes",
            latency_hiding="Depends on counter size",
            storage_overhead="Depends on counter size",
            other_issues="Re-enc on page swap",
            reencrypt_on_swap=True,
            supports_shared_memory=True,
            counter_bytes_per_data_byte=self.counter_bits / 8 / BLOCK_SIZE,
        )


class VirtualAddressSeedScheme(SeedScheme):
    """Baseline: seed = [PID |] virtual block address | counter | chunk.

    ``include_pid=False`` reproduces the pad-reuse vulnerability between
    processes that share virtual addresses; ``include_pid=True`` fixes the
    reuse but breaks shared-memory IPC (different processes see different
    seeds for the same physical block).
    """

    __slots__ = ("counter_bits", "include_pid")

    name = "virt_addr"

    def __init__(self, counter_bits: int = 32, include_pid: bool = True):
        super().__init__()
        self.counter_bits = counter_bits
        self.include_pid = include_pid

    def seed(self, ctx: SeedInput, chunk: int) -> int:
        block_number = ctx.vaddr // BLOCK_SIZE
        seed = (block_number << 64) | (ctx.counter << 8) | chunk
        if self.include_pid:
            seed |= ctx.pid << 96
        return seed

    @property
    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            name="Counter (Virt Addr)",
            ipc_support="No shared-memory IPC",
            latency_hiding="Depends on counter size",
            storage_overhead="Depends on counter size",
            other_issues="VA storage in L2; PIDs non-reusable",
            reencrypt_on_swap=False,
            supports_shared_memory=False,
            counter_bytes_per_data_byte=self.counter_bits / 8 / BLOCK_SIZE,
        )


class SplitCounterSeedScheme(SeedScheme):
    """Split-counter baseline [Yan et al. ISCA'06]: seed = physical block
    address | 64-bit major counter | 7-bit minor counter | chunk id.

    Identical counter storage layout to AISE (one 64B block per page),
    but the *address* in the seed keeps the swap re-encryption obligation
    — the storage-efficiency of AISE without its OS-friendliness. AISE
    replaces the major counter with the LPID (paper section 4.3).
    """

    __slots__ = ()

    name = "split_ctr"

    def seed(self, ctx: SeedInput, chunk: int) -> int:
        block_number = ctx.paddr // BLOCK_SIZE
        # ctx.lpid carries the major counter for this scheme.
        return (block_number << 80) | (ctx.lpid << 16) | (ctx.counter << 8) | chunk

    @property
    def properties(self) -> SchemeProperties:
        return SchemeProperties(
            name="Split Counter (Phys Addr)",
            ipc_support="Yes",
            latency_hiding="Good",
            storage_overhead="Low (1.6%)",
            other_issues="Re-enc on page swap",
            reencrypt_on_swap=True,
            supports_shared_memory=True,
            counter_bytes_per_data_byte=BLOCK_SIZE / 4096,
        )


@dataclass
class SeedAudit:
    """Test instrumentation that detects pad (seed) reuse.

    Wraps a scheme and records every seed it emits for *encryption*; a
    repeat is the counter-mode break the paper's design rules out. Real
    hardware has no such detector — this exists so the test suite can
    demonstrate the vulnerabilities of the baseline schemes concretely.
    """

    scheme: SeedScheme
    _seen: set = field(default_factory=set)
    strict: bool = True
    reuses: int = 0

    def record_encryption(self, ctx: SeedInput) -> tuple[int, ...]:
        seeds = self.scheme.seeds_for_block(ctx)
        for seed in seeds:
            if seed in self._seen:
                self.reuses += 1
                if self.strict:
                    raise SeedReuseError(
                        f"scheme {self.scheme.name!r} reused seed {seed:#x}"
                    )
            else:
                self._seen.add(seed)
        return seeds

    @property
    def unique_seeds(self) -> int:
        return len(self._seen)


def make_seed_scheme(name: str) -> SeedScheme:
    """Factory mapping config identifiers to scheme objects."""
    if name == "aise":
        return AiseSeedScheme()
    if name == "global32":
        return GlobalCounterSeedScheme(32)
    if name == "global64":
        return GlobalCounterSeedScheme(64)
    if name == "phys_addr":
        return PhysicalAddressSeedScheme()
    if name == "virt_addr":
        return VirtualAddressSeedScheme()
    if name == "split_ctr":
        return SplitCounterSeedScheme()
    raise ValueError(f"no seed scheme named {name!r}")
