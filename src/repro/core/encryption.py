"""Functional memory encryption engines.

Each engine turns plaintext cache blocks into the ciphertext that lives in
(attackable) DRAM and back, managing whatever counter storage its seed
scheme requires. Counter storage itself resides in a dedicated region of
physical memory — where the integrity scheme can (or, for the baselines
that don't protect it, cannot) see it — and is cached on-chip through a
small write-through functional counter cache.

Engines report, per block, a *counter tag*: the value the Bonsai scheme
binds into per-block MACs (LPID||minor for AISE, the stamped counter for
the global scheme, the per-block counter for address-based schemes).

Overflow behaviour follows the paper:

* AISE — a minor-counter wrap assigns a fresh LPID from the GPC and
  re-encrypts only that page (section 4.3).
* Global counter — a wrap forces a whole-memory re-encryption under a new
  key (section 4.1); the engine performs it and counts it.
* Address-based — per-block counters wide enough not to wrap in practice.
"""

from __future__ import annotations

from .. import fastpath
from ..crypto.aes import AES
from ..crypto.ctr_mode import CounterModeCipher
from ..mem.dram import BlockMemory
from ..mem.layout import (
    BLOCK_SIZE,
    BLOCKS_PER_PAGE,
    CHUNK_SIZE,
    CHUNKS_PER_BLOCK,
    PAGE_SIZE,
    block_in_page,
)
from .counters import (
    GlobalPageCounter,
    MINOR_MAX,
    MonotonicGlobalCounter,
    PageCounterBlock,
)
from .seeds import (
    AiseSeedScheme,
    GlobalCounterSeedScheme,
    PhysicalAddressSeedScheme,
    SeedInput,
    SeedScheme,
    VirtualAddressSeedScheme,
)


class AccessContext:
    """Per-access OS-supplied context (virtual address, process id).

    Only the address-based baseline schemes need it; AISE deliberately
    does not (that independence is the contribution).
    """

    __slots__ = ("vaddr", "pid")

    def __init__(self, vaddr: int = 0, pid: int = 0):
        self.vaddr = vaddr
        self.pid = pid


NULL_CONTEXT = AccessContext()


class EncryptionEngine:
    """Interface shared by all engines."""

    name = "abstract"
    uses_counters = False

    # Wired by the machine: called to verify/update counter-region blocks
    # through the integrity scheme, to verify data blocks (ciphertext +
    # counter tag) before a re-encryption path trusts their plaintext,
    # and to rewrite data blocks during page/memory re-encryption.
    metadata_verify = staticmethod(lambda addr, raw: None)
    metadata_update = staticmethod(lambda addr, raw: None)
    verify_block = staticmethod(lambda addr, cipher, tag: None)
    rewrite_block = staticmethod(lambda addr, cipher, tag: None)

    def counter_tag(self, paddr: int, ctx: AccessContext = NULL_CONTEXT) -> int:
        """Current counter value bound into this block's MAC (0 if none)."""
        return 0

    @property
    def pad_cache(self):
        """The fastpath keystream pad memo, if this engine has one.

        Resolved through the live cipher on every read: re-keying
        replaces the cipher (and with it the memo), and gauges bound via
        :func:`repro.obs.adapters.register_pad_cache` must follow. None
        for pad-less engines or with :mod:`repro.fastpath` disabled.
        """
        cipher = getattr(self, "_cipher", None)
        return cipher.pad_cache if cipher is not None else None

    def clear_volatile(self) -> None:
        """Drop volatile on-chip state (power cycle); a no-op by default."""
        return None

    def counter_block_address(self, paddr: int) -> int | None:
        """Counter-region block a fetch of ``paddr`` depends on, if any."""
        return None

    def decrypt(self, paddr: int, cipher: bytes, ctx: AccessContext = NULL_CONTEXT) -> bytes:
        raise NotImplementedError

    def encrypt_for_write(
        self, paddr: int, plain: bytes, ctx: AccessContext = NULL_CONTEXT
    ) -> tuple[bytes, int]:
        """Advance counters and encrypt. Returns (ciphertext, counter_tag)."""
        raise NotImplementedError


class NullEncryption(EncryptionEngine):
    """Unprotected baseline: plaintext in memory."""

    name = "none"

    def decrypt(self, paddr, cipher, ctx=NULL_CONTEXT):
        return cipher

    def encrypt_for_write(self, paddr, plain, ctx=NULL_CONTEXT):
        return plain, 0


class DirectEncryption(EncryptionEngine):
    """Direct (ECB-style) AES over each 16-byte chunk.

    The early-secure-processor baseline (section 2): decryption latency
    sits on the critical path, and equal plaintexts produce equal
    ciphertexts. No counters.
    """

    name = "direct"

    def __init__(self, key: bytes):
        self._aes = AES(key)

    def decrypt(self, paddr, cipher, ctx=NULL_CONTEXT):
        out = b""
        for chunk in range(CHUNKS_PER_BLOCK):
            out += self._aes.decrypt_block(cipher[chunk * CHUNK_SIZE : (chunk + 1) * CHUNK_SIZE])
        return out

    def encrypt_for_write(self, paddr, plain, ctx=NULL_CONTEXT):
        out = b""
        for chunk in range(CHUNKS_PER_BLOCK):
            out += self._aes.encrypt_block(plain[chunk * CHUNK_SIZE : (chunk + 1) * CHUNK_SIZE])
        return out, 0


class AiseEncryption(EncryptionEngine):
    """AISE: LPID-seeded counter mode with per-page counter blocks."""

    name = "aise"
    uses_counters = True

    def __init__(
        self,
        key: bytes,
        memory: BlockMemory,
        counter_base: int,
        data_bytes: int,
        gpc: GlobalPageCounter,
        fast_crypto: bool = True,
        seed_audit=None,
    ):
        self._cipher = CounterModeCipher(key, fast=fast_crypto)
        self.memory = memory
        self.counter_base = counter_base
        self.data_bytes = data_bytes
        self.gpc = gpc
        self.scheme: SeedScheme = AiseSeedScheme()
        self.seed_audit = seed_audit
        self._cache: dict[int, PageCounterBlock] = {}  # page index -> parsed block
        # Fast path: (paddr, lpid, minor) -> whole-block pad as an int.
        # The AISE seed tuple — and therefore the pad — is a pure
        # function of exactly that triple (plus the fixed key), so the
        # memo collapses seed construction and four pad derivations into
        # one dict probe. Any counter bump or page re-encryption changes
        # the key. None with the gate off.
        self._pad_memo: dict | None = {} if fastpath.enabled() else None
        self.page_reencryptions = 0
        self.pages_initialized = 0
        self.pads_generated = 0

    # -- counter-block plumbing ------------------------------------------------

    def counter_block_address(self, paddr: int) -> int:
        return self.counter_base + (paddr // PAGE_SIZE) * BLOCK_SIZE

    def _load(self, page_idx: int) -> PageCounterBlock:
        cached = self._cache.get(page_idx)
        if cached is not None:
            return cached
        address = self.counter_base + page_idx * BLOCK_SIZE
        raw = self.memory.read_block(address)
        self.metadata_verify(address, raw)
        block = PageCounterBlock.from_bytes(raw)
        self._cache[page_idx] = block
        return block

    def _store(self, page_idx: int, block: PageCounterBlock) -> None:
        address = self.counter_base + page_idx * BLOCK_SIZE
        raw = block.to_bytes()
        self.memory.write_block(address, raw)
        self.metadata_update(address, raw)
        self._cache[page_idx] = block

    def drop_cached_counters(self, page_idx: int) -> None:
        """Evict the on-chip copy (page swapped out / attack experiments)."""
        self._cache.pop(page_idx, None)

    def clear_volatile(self) -> None:
        """Power cycle: the on-chip counter cache empties; counter blocks
        in memory and the (non-volatile) GPC survive."""
        self._cache.clear()

    def has_cached_counters(self, page_idx: int) -> bool:
        """Whether the page's counter block is on-chip right now."""
        return page_idx in self._cache

    def page_counters(self, page_idx: int) -> PageCounterBlock:
        """The page's (verified) counter block, loading it if needed."""
        return self._load(page_idx)

    def decrypt_with_seeds(self, cipher: bytes, seeds) -> bytes:
        """Raw counter-mode decryption under caller-supplied seeds.

        The speculative path (counter prediction) generates candidate
        seeds itself; this applies them without touching counter state
        or the pad accounting of the architectural path.
        """
        return self._cipher.decrypt(cipher, seeds)

    def ensure_lpid(self, page_idx: int) -> PageCounterBlock:
        """Assign an LPID on first touch of a page (first allocation).

        Assignment is a page (re)initialization: every block of the page
        is re-encrypted under the fresh LPID so that integrity metadata
        computed for the pre-allocation content stays consistent.
        """
        block = self._load(page_idx)
        if block.lpid == 0:
            self._reencrypt_page(page_idx)
            self.pages_initialized += 1
            self.page_reencryptions -= 1  # allocation, not an overflow event
            block = self._load(page_idx)
        return block

    def install_counter_block(self, page_idx: int, raw: bytes) -> None:
        """Place a swapped-in counter block at its frame's slot (section 4.4)."""
        block = PageCounterBlock.from_bytes(raw)
        self._store(page_idx, block)

    def export_counter_block(self, page_idx: int) -> bytes:
        return self._load(page_idx).to_bytes()

    # -- seeds -------------------------------------------------------------------

    @staticmethod
    def _tag(lpid: int, minor: int) -> int:
        return (lpid << 7) | minor

    def _seed_input(self, paddr: int, block: PageCounterBlock) -> SeedInput:
        minor = block.minors[block_in_page(paddr)]
        return SeedInput(paddr=paddr, lpid=block.lpid, counter=minor)

    def counter_tag(self, paddr: int, ctx: AccessContext = NULL_CONTEXT) -> int:
        block = self._load(paddr // PAGE_SIZE)
        return self._tag(block.lpid, block.minors[block_in_page(paddr)])

    # -- data path ----------------------------------------------------------------

    def decrypt(self, paddr, cipher, ctx=NULL_CONTEXT):
        block = self._load(paddr // PAGE_SIZE)
        memo = self._pad_memo
        if memo is not None:
            key = (paddr, block.lpid, block.minors[block_in_page(paddr)])
            pad = memo.get(key)
            if pad is None:
                seeds = self.scheme.seeds_for_block(self._seed_input(paddr, block))
                pad = self._cipher.pad_int(seeds)
                if len(memo) >= 65536:
                    memo.clear()
                memo[key] = pad
            self.pads_generated += CHUNKS_PER_BLOCK
            return self._cipher.apply_pad_int(cipher, pad)
        seeds = self.scheme.seeds_for_block(self._seed_input(paddr, block))
        self.pads_generated += CHUNKS_PER_BLOCK
        return self._cipher.decrypt(cipher, seeds)

    def encrypt_for_write(self, paddr, plain, ctx=NULL_CONTEXT):
        page_idx = paddr // PAGE_SIZE
        bip = block_in_page(paddr)
        counters = self.ensure_lpid(page_idx)
        if counters.minors[bip] >= MINOR_MAX:
            self._reencrypt_page(page_idx, skip_block=bip)
            counters = self._load(page_idx)
        counters.increment(bip)  # cannot wrap: overflow handled above
        self._store(page_idx, counters)
        ctx_input = self._seed_input(paddr, counters)
        seeds = (
            self.seed_audit.record_encryption(ctx_input)
            if self.seed_audit is not None
            else self.scheme.seeds_for_block(ctx_input)
        )
        self.pads_generated += CHUNKS_PER_BLOCK
        return self._cipher.encrypt(plain, seeds), self._tag(counters.lpid, counters.minors[bip])

    def _reencrypt_page(self, page_idx: int, skip_block: int | None = None) -> None:
        """Minor-counter overflow: fresh LPID, re-encrypt only this page."""
        old = self._load(page_idx)
        fresh = PageCounterBlock.fresh(self.gpc.next_lpid())
        page_base = page_idx * PAGE_SIZE
        for bip in range(BLOCKS_PER_PAGE):
            if bip == skip_block:
                continue  # about to be overwritten by the caller anyway
            paddr = page_base + bip * BLOCK_SIZE
            old_cipher = self.memory.read_block(paddr)
            # The page's blocks were fetched from attackable DRAM: check
            # them against their MACs before trusting their plaintext
            # enough to re-encrypt it under the fresh LPID.
            self.verify_block(paddr, old_cipher, self._tag(old.lpid, old.minors[bip]))
            old_seeds = self.scheme.seeds_for_block(
                SeedInput(paddr=paddr, lpid=old.lpid, counter=old.minors[bip])
            )
            plain = self._cipher.decrypt(old_cipher, old_seeds)
            new_seeds = self.scheme.seeds_for_block(
                SeedInput(paddr=paddr, lpid=fresh.lpid, counter=0)
            )
            new_cipher = self._cipher.encrypt(plain, new_seeds)
            self.pads_generated += 2 * CHUNKS_PER_BLOCK
            self.rewrite_block(paddr, new_cipher, self._tag(fresh.lpid, 0))
        self._store(page_idx, fresh)
        self.page_reencryptions += 1


class SplitCounterEncryption(AiseEncryption):
    """Split-counter baseline: AISE's storage layout, address-based seeds.

    The 64-bit field that AISE uses for the LPID holds a per-page *major
    counter* instead, and the physical block address joins the seed. The
    consequences tested against AISE: identical storage (1.6%) and
    latency-hiding, but pages must be re-encrypted when they change
    frames (the kernel treats this scheme like ``phys_addr`` on swap).
    """

    name = "split_ctr"

    def __init__(self, key, memory, counter_base, data_bytes, fast_crypto=True, seed_audit=None):
        # A GPC is unnecessary; pass a private one to satisfy the parent.
        super().__init__(
            key, memory, counter_base, data_bytes,
            gpc=GlobalPageCounter(), fast_crypto=fast_crypto, seed_audit=seed_audit,
        )
        from .seeds import SplitCounterSeedScheme

        self.scheme = SplitCounterSeedScheme()

    def _seed_input(self, paddr: int, block: PageCounterBlock) -> SeedInput:
        minor = block.minors[block_in_page(paddr)]
        # lpid field carries the major counter (same 64-byte layout).
        return SeedInput(paddr=paddr, lpid=block.lpid, counter=minor)

    def ensure_lpid(self, page_idx: int) -> PageCounterBlock:
        # Major counters legitimately start at 0 — no allocation-time
        # page initialization is needed (and no LPID exists to assign).
        return self._load(page_idx)

    def _reencrypt_page(self, page_idx: int, skip_block: int | None = None) -> None:
        """Minor overflow: bump the page's major counter and re-encrypt."""
        old = self._load(page_idx)
        fresh = PageCounterBlock(lpid=old.lpid + 1, minors=[0] * BLOCKS_PER_PAGE)
        page_base = page_idx * PAGE_SIZE
        for bip in range(BLOCKS_PER_PAGE):
            if bip == skip_block:
                continue
            paddr = page_base + bip * BLOCK_SIZE
            old_cipher = self.memory.read_block(paddr)
            # Verify against the stored MAC before trusting the block's
            # plaintext on the major-counter-bump re-encryption path.
            self.verify_block(paddr, old_cipher, self._tag(old.lpid, old.minors[bip]))
            plain = self._cipher.decrypt(
                old_cipher,
                self.scheme.seeds_for_block(
                    SeedInput(paddr=paddr, lpid=old.lpid, counter=old.minors[bip])
                ),
            )
            new_cipher = self._cipher.encrypt(
                plain,
                self.scheme.seeds_for_block(SeedInput(paddr=paddr, lpid=fresh.lpid, counter=0)),
            )
            self.pads_generated += 2 * CHUNKS_PER_BLOCK
            self.rewrite_block(paddr, new_cipher, self._tag(fresh.lpid, 0))
        self._store(page_idx, fresh)
        self.page_reencryptions += 1


class GlobalCounterEncryption(EncryptionEngine):
    """Global-counter baseline: every writeback stamps the next value.

    The stamp is stored alongside the block (``bits/8`` bytes per 64B
    block) so it can be found at decryption time — the storage overhead
    Table 1 criticizes. Counter wrap triggers whole-memory re-encryption
    under a fresh key.
    """

    name = "global"
    uses_counters = True

    def __init__(
        self,
        key: bytes,
        memory: BlockMemory,
        counter_base: int,
        data_bytes: int,
        bits: int = 64,
        fast_crypto: bool = True,
    ):
        self._key = bytes(key)
        self._fast = fast_crypto
        self._cipher = CounterModeCipher(self._key, fast=fast_crypto)
        self.memory = memory
        self.counter_base = counter_base
        self.data_bytes = data_bytes
        self.bits = bits
        self.stamp_bytes = bits // 8
        self.global_counter = MonotonicGlobalCounter(bits)
        self.scheme = GlobalCounterSeedScheme(bits)
        self.memory_reencryptions = 0
        self.pads_generated = 0
        self._written: set[int] = set()  # block indices holding live ciphertext

    def counter_block_address(self, paddr: int) -> int:
        index = paddr // BLOCK_SIZE
        return self.counter_base + (index * self.stamp_bytes // BLOCK_SIZE) * BLOCK_SIZE

    def _stamp_location(self, paddr: int) -> tuple[int, int]:
        index = paddr // BLOCK_SIZE
        offset = index * self.stamp_bytes
        return self.counter_base + (offset // BLOCK_SIZE) * BLOCK_SIZE, offset % BLOCK_SIZE

    def _read_stamp(self, paddr: int) -> int:
        block_addr, offset = self._stamp_location(paddr)
        raw = self.memory.read_block(block_addr)
        self.metadata_verify(block_addr, raw)
        return int.from_bytes(raw[offset : offset + self.stamp_bytes], "big")

    def _write_stamp(self, paddr: int, value: int) -> None:
        block_addr, offset = self._stamp_location(paddr)
        raw = bytearray(self.memory.read_block(block_addr))
        raw[offset : offset + self.stamp_bytes] = value.to_bytes(self.stamp_bytes, "big")
        self.memory.write_block(block_addr, bytes(raw))
        self.metadata_update(block_addr, bytes(raw))

    def counter_tag(self, paddr: int, ctx: AccessContext = NULL_CONTEXT) -> int:
        return self._read_stamp(paddr)

    def decrypt(self, paddr, cipher, ctx=NULL_CONTEXT):
        stamp = self._read_stamp(paddr)
        seeds = self.scheme.seeds_for_block(SeedInput(paddr=paddr, counter=stamp))
        self.pads_generated += CHUNKS_PER_BLOCK
        return self._cipher.decrypt(cipher, seeds)

    def encrypt_for_write(self, paddr, plain, ctx=NULL_CONTEXT):
        before = self.global_counter.wraps
        stamp = self.global_counter.next_value()
        if self.global_counter.wraps != before:
            self._reencrypt_everything()
            stamp = self.global_counter.next_value()
        self._write_stamp(paddr, stamp)
        self._written.add(paddr)
        seeds = self.scheme.seeds_for_block(SeedInput(paddr=paddr, counter=stamp))
        self.pads_generated += CHUNKS_PER_BLOCK
        return self._cipher.encrypt(plain, seeds), stamp

    def _reencrypt_everything(self) -> None:
        """Counter wrap: new key, decrypt + re-encrypt all live blocks."""
        old_cipher_engine = self._cipher
        # Derive a new key; real hardware would generate a random one.
        import hashlib

        self._key = hashlib.blake2s(
            self._key, person=b"key-wrap", digest_size=32
        ).digest()[: len(self._key)]
        self._cipher = CounterModeCipher(self._key, fast=self._fast)
        for paddr in sorted(self._written):
            stamp = self._read_stamp(paddr)
            raw = self.memory.read_block(paddr)
            # Each live block is checked against its MAC (bound to the
            # verified stamp) before its plaintext is re-keyed.
            self.verify_block(paddr, raw, stamp)
            seeds = self.scheme.seeds_for_block(SeedInput(paddr=paddr, counter=stamp))
            plain = old_cipher_engine.decrypt(raw, seeds)
            new_stamp = self.global_counter.next_value()
            self._write_stamp(paddr, new_stamp)
            new_seeds = self.scheme.seeds_for_block(SeedInput(paddr=paddr, counter=new_stamp))
            new_cipher = self._cipher.encrypt(plain, new_seeds)
            self.pads_generated += 2 * CHUNKS_PER_BLOCK
            self.rewrite_block(paddr, new_cipher, new_stamp)
        self.memory_reencryptions += 1


class AddressSeedEncryption(EncryptionEngine):
    """Address-based baselines: physical- or virtual-address seeds.

    Per-block counters (32-bit) live packed in the counter region. The
    virtual variant needs the access context (vaddr, pid) on *every*
    access — the storage-in-L2 problem Table 1 notes — and the physical
    variant requires page re-encryption on swap, implemented in
    ``repro.osmodel.kernel`` for the comparison tests.
    """

    uses_counters = True
    COUNTER_BITS = 32

    def __init__(
        self,
        key: bytes,
        memory: BlockMemory,
        counter_base: int,
        data_bytes: int,
        virtual: bool = False,
        include_pid: bool = True,
        fast_crypto: bool = True,
        seed_audit=None,
    ):
        self._cipher = CounterModeCipher(key, fast=fast_crypto)
        self.memory = memory
        self.counter_base = counter_base
        self.data_bytes = data_bytes
        self.virtual = virtual
        self.name = "virt_addr" if virtual else "phys_addr"
        self.scheme: SeedScheme = (
            VirtualAddressSeedScheme(self.COUNTER_BITS, include_pid=include_pid)
            if virtual
            else PhysicalAddressSeedScheme(self.COUNTER_BITS)
        )
        self.seed_audit = seed_audit
        self.pads_generated = 0

    def counter_block_address(self, paddr: int) -> int:
        index = paddr // BLOCK_SIZE
        offset = index * (self.COUNTER_BITS // 8)
        return self.counter_base + (offset // BLOCK_SIZE) * BLOCK_SIZE

    def _counter_location(self, paddr: int) -> tuple[int, int]:
        index = paddr // BLOCK_SIZE
        offset = index * (self.COUNTER_BITS // 8)
        return self.counter_base + (offset // BLOCK_SIZE) * BLOCK_SIZE, offset % BLOCK_SIZE

    def _read_counter(self, paddr: int) -> int:
        block_addr, offset = self._counter_location(paddr)
        raw = self.memory.read_block(block_addr)
        self.metadata_verify(block_addr, raw)
        return int.from_bytes(raw[offset : offset + 4], "big")

    def _write_counter(self, paddr: int, value: int) -> None:
        block_addr, offset = self._counter_location(paddr)
        raw = bytearray(self.memory.read_block(block_addr))
        raw[offset : offset + 4] = value.to_bytes(4, "big")
        self.memory.write_block(block_addr, bytes(raw))
        self.metadata_update(block_addr, bytes(raw))

    def counter_tag(self, paddr: int, ctx: AccessContext = NULL_CONTEXT) -> int:
        return self._read_counter(paddr)

    def _seed_input(self, paddr: int, counter: int, ctx: AccessContext) -> SeedInput:
        return SeedInput(paddr=paddr, vaddr=ctx.vaddr, pid=ctx.pid, counter=counter)

    def decrypt(self, paddr, cipher, ctx=NULL_CONTEXT):
        counter = self._read_counter(paddr)
        seeds = self.scheme.seeds_for_block(self._seed_input(paddr, counter, ctx))
        self.pads_generated += CHUNKS_PER_BLOCK
        return self._cipher.decrypt(cipher, seeds)

    def encrypt_for_write(self, paddr, plain, ctx=NULL_CONTEXT):
        counter = self._read_counter(paddr) + 1
        self._write_counter(paddr, counter)
        seed_input = self._seed_input(paddr, counter, ctx)
        seeds = (
            self.seed_audit.record_encryption(seed_input)
            if self.seed_audit is not None
            else self.scheme.seeds_for_block(seed_input)
        )
        self.pads_generated += CHUNKS_PER_BLOCK
        return self._cipher.encrypt(plain, seeds), counter

    # Used by the kernel to re-encrypt a page when it moves frames
    # (the physical-address scheme's swap obligation).
    def reencrypt_block_for_move(
        self, old_paddr: int, new_paddr: int, ctx: AccessContext = NULL_CONTEXT
    ) -> tuple[bytes, int]:
        old_cipher = self.memory.read_block(old_paddr)
        # MAC-check the block at its old frame before its plaintext is
        # re-encrypted for the new one (frame moves are adversary-visible).
        self.verify_block(old_paddr, old_cipher, self._read_counter(old_paddr))
        plain = self.decrypt(old_paddr, old_cipher, ctx)
        return self.encrypt_for_write(new_paddr, plain, ctx)
