"""Exception hierarchy for the secure-memory library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class IntegrityError(ReproError):
    """Raised when memory integrity verification fails.

    Carries enough context to tell *what kind* of tamper was detected
    (data MAC mismatch, Merkle-node mismatch, root mismatch, counter
    tamper, swap-page tamper).
    """

    def __init__(self, message: str, address: int | None = None, kind: str = "mac"):
        super().__init__(message)
        self.address = address
        self.kind = kind


class CounterOverflowError(ReproError):
    """A counter wrapped and no re-encryption policy was available."""


class SeedReuseError(ReproError):
    """A seed scheme was asked to produce a pad it has produced before.

    Only raised by the seed-audit instrumentation used in tests; real
    hardware cannot detect this, which is exactly the vulnerability the
    paper's AISE design removes by construction.
    """


class ConfigurationError(ReproError):
    """Invalid or inconsistent machine configuration."""


class PageFaultError(ReproError):
    """An access touched an unmapped virtual page (functional OS model)."""
