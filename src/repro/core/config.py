"""Machine configuration mirroring the paper's simulated system (section 6).

    2GHz 3-issue out-of-order core; split 32KB 2-way L1s (2-cycle);
    unified 1MB 8-way L2 (10-cycle); 32KB 16-way counter cache at the L2
    level; 64B blocks, LRU; 1GB main memory at 200 cycles; 128-bit AES,
    16-stage pipeline, 80-cycle latency; HMAC SHA-1, 80-cycle; 64-bit
    LPID + 7-bit per-block counters; 128-bit MACs by default.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from .errors import ConfigurationError

# Encryption scheme identifiers.
ENC_NONE = "none"
ENC_AISE = "aise"
ENC_GLOBAL32 = "global32"
ENC_GLOBAL64 = "global64"
ENC_PHYS = "phys_addr"
ENC_VIRT = "virt_addr"
ENC_DIRECT = "direct"
ENC_SPLIT = "split_ctr"  # split-counter baseline [Yan et al. ISCA'06]
ENCRYPTION_SCHEMES = (
    ENC_NONE, ENC_AISE, ENC_GLOBAL32, ENC_GLOBAL64, ENC_PHYS, ENC_VIRT, ENC_DIRECT, ENC_SPLIT
)

# Integrity scheme identifiers.
INT_NONE = "none"
INT_MAC = "mac_only"
INT_MT = "merkle"
INT_BMT = "bonsai"
INT_BMT_LAZY = "bmt_lazy"  # BMT on the incremental (lazy, deferred) tree engine
INT_LOGHASH = "loghash"
INTEGRITY_SCHEMES = (INT_NONE, INT_MAC, INT_MT, INT_BMT, INT_BMT_LAZY, INT_LOGHASH)


@dataclass(frozen=True)
class CacheConfig:
    """Size/associativity/latency of one on-chip cache."""

    size_bytes: int
    assoc: int
    hit_latency: int  # round-trip, processor cycles


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of the simulated secure processor."""

    # Core.
    frequency_ghz: float = 2.0
    issue_width: int = 3

    # Hierarchy (paper defaults).
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2, 2))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(1024 * 1024, 8, 10))
    counter_cache: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 16, 10))
    block_size: int = 64
    memory_latency: int = 200
    bus_cycles_per_block: int = 28

    # Memory sizes.
    physical_bytes: int = 1 << 30
    swap_bytes: int | None = None  # defaults to physical_bytes

    # Crypto engines.
    aes_latency: int = 80
    aes_stages: int = 16
    mac_latency: int = 80

    # Protection configuration.
    encryption: str = ENC_AISE
    integrity: str = INT_BMT
    mac_bits: int = 128
    lpid_bits: int = 64
    minor_counter_bits: int = 7
    global_counter_bits: int = 64  # for the global-counter baselines

    # Integrity caching policy: standard MT caches every node incl. leaf
    # data MACs; BMT caches tree nodes but not per-block data MACs
    # (paper section 5.2). Overridable for ablation studies.
    cache_data_macs: bool | None = None

    # Optional dedicated on-chip cache for Merkle nodes. The paper's
    # design shares the L2 (None, default); a dedicated cache trades the
    # pollution of Figure 9 for a smaller reach — an ablation target.
    node_cache: CacheConfig | None = None

    # Verification timing (paper section 6): non-precise (default) lets
    # instructions retire before verification completes — integrity costs
    # bandwidth and cache space only. Precise verification puts the MAC
    # check (and any node fetches) on the critical path of every miss.
    precise_verification: bool = False

    def __post_init__(self):
        # Validate through the scheme registry (lazy import: the scheme
        # descriptors import this module's constants). Registered
        # third-party schemes validate too, not just the builtin tuples.
        from ..schemes import encryption_scheme, integrity_scheme

        encryption_scheme(self.encryption)
        integrity_scheme(self.integrity)
        if self.mac_bits % 8 or self.mac_bits <= 0:
            raise ConfigurationError(f"mac_bits must be a positive multiple of 8, got {self.mac_bits}")
        if self.block_size % (self.mac_bits // 8):
            raise ConfigurationError(
                f"a {self.block_size}B block must hold a whole number of {self.mac_bits}-bit MACs"
            )
        if self.swap_bytes is None:
            object.__setattr__(self, "swap_bytes", self.physical_bytes)

    @property
    def mac_bytes(self) -> int:
        return self.mac_bits // 8

    @property
    def merkle_arity(self) -> int:
        """Child MACs per 64B tree node: 4 for 128-bit MACs, 2 for 256-bit."""
        return self.block_size // self.mac_bytes

    @property
    def caches_data_macs(self) -> bool:
        if self.cache_data_macs is not None:
            return self.cache_data_macs
        from ..schemes import integrity_scheme

        return integrity_scheme(self.integrity).caches_data_macs_default

    def with_protection(self, encryption: str, integrity: str, **overrides) -> "MachineConfig":
        """Derive a config differing only in protection scheme (and overrides)."""
        return replace(self, encryption=encryption, integrity=integrity, **overrides)

    @classmethod
    def preset(cls, name: str, **overrides) -> "MachineConfig":
        """Build a configuration from a ``encryption[+integrity]`` label.

        The one blessed constructor for named configurations: both halves
        resolve through the scheme registry (:mod:`repro.schemes`), so
        every registered scheme key — including third-party ones — is a
        valid preset component without this module enumerating them.
        Shorthands: ``base`` for the unprotected machine, ``mt`` for the
        standard Merkle tree, ``bmt`` for the Bonsai Merkle tree; an
        omitted integrity half means none. Keyword overrides are passed
        through (``MachineConfig.preset("aise+bmt", mac_bits=64)``).
        """
        encryption, _, integrity = name.partition("+")
        encryption = _PRESET_ENCRYPTION_ALIASES.get(encryption, encryption)
        integrity = _PRESET_INTEGRITY_ALIASES.get(integrity, integrity) or INT_NONE
        try:
            return cls(encryption=encryption, integrity=integrity, **overrides)
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"no preset named {name!r} ({exc}); presets are "
                "'<encryption>[+<integrity>]' over the registered scheme keys, "
                f"e.g. {', '.join(PRESET_NAMES)}"
            ) from None

    @classmethod
    def preset_names(cls) -> tuple[str, ...]:
        """The canonical evaluation labels (the Figure-6 configuration set).

        Any registry-valid ``encryption[+integrity]`` pair works with
        :meth:`preset`; these are the named points the paper's figures
        and the sweep CLI default to, in presentation order.
        """
        return PRESET_NAMES


# Label shorthands accepted by MachineConfig.preset on top of the raw
# scheme-registry keys.
_PRESET_ENCRYPTION_ALIASES = {"base": ENC_NONE}
_PRESET_INTEGRITY_ALIASES = {"mt": INT_MT, "bmt": INT_BMT}

# The evaluation's canonical configuration labels, in the presentation
# order of Figure 6 (the sweep CLI and golden outputs depend on order).
PRESET_NAMES = (
    "base",
    "aise",
    "global32",
    "global64",
    "aise+mt",
    "aise+bmt",
    "global64+mt",
)


# -- deprecated named constructors -------------------------------------------
#
# Thin shims over MachineConfig.preset, kept one release for callers of
# the original constructor trio. Each warns once per process; the
# warned-set is process state (not a warnings-module filter) so tests
# can reset it and assert the warn-exactly-once contract.

_DEPRECATION_WARNED: set[str] = set()


def _reset_deprecation_warnings() -> None:
    """Forget which shims have warned (test hook)."""
    _DEPRECATION_WARNED.clear()


def _warn_deprecated(old: str, preset: str) -> None:
    if old in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(old)
    warnings.warn(
        f"{old}() is deprecated; use MachineConfig.preset({preset!r}) "
        "or repro.api.build_machine",
        DeprecationWarning,
        stacklevel=3,
    )


def baseline_config(**overrides) -> MachineConfig:
    """Deprecated: use ``MachineConfig.preset("base")``."""
    _warn_deprecated("baseline_config", "base")
    return MachineConfig.preset("base", **overrides)


def aise_bmt_config(**overrides) -> MachineConfig:
    """Deprecated: use ``MachineConfig.preset("aise+bmt")``."""
    _warn_deprecated("aise_bmt_config", "aise+bmt")
    return MachineConfig.preset("aise+bmt", **overrides)


def global64_mt_config(**overrides) -> MachineConfig:
    """Deprecated: use ``MachineConfig.preset("global64+mt")``."""
    _warn_deprecated("global64_mt_config", "global64+mt")
    return MachineConfig.preset("global64+mt", **overrides)
