"""Counter organizations for counter-mode memory encryption.

The paper's AISE layout (section 4.3, Figure 3) co-stores, per 4KB page,
one 64-bit Logical Page IDentifier and 64 7-bit per-block minor counters
in a single 64-byte *counter block* — directly indexable from a physical
address, cacheable in the on-chip counter cache, and swapped to disk
alongside its page.

Also implemented here:

* the non-volatile :class:`GlobalPageCounter` (GPC) that issues LPIDs,
* the split-counter baseline layout (64-bit major + 7-bit minors, [Yan
  et al. ISCA'06]), and
* flat per-block counter stores for the global-counter and address-based
  baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.layout import BLOCK_SIZE, BLOCKS_PER_PAGE
from . import sanitizer
from .errors import CounterOverflowError

LPID_BITS = 64
MINOR_BITS = 7
MINOR_MAX = (1 << MINOR_BITS) - 1  # 127

_MINOR_FIELD_BYTES = BLOCKS_PER_PAGE * MINOR_BITS // 8  # 56
assert 8 + _MINOR_FIELD_BYTES == BLOCK_SIZE


class GlobalPageCounter:
    """The on-chip, non-volatile 64-bit counter that issues LPIDs.

    Values are never reused: every call to :meth:`next_lpid` returns a
    fresh identifier, and the counter survives "reboots" (modelled by
    :meth:`save_state` / :meth:`restore_state`, which a real chip gets
    for free from non-volatile storage).
    """

    BITS = 64

    def __init__(self, initial: int = 1):
        if initial <= 0:
            raise ValueError("GPC must start positive (0 is reserved for 'never assigned')")
        self._value = initial

    def next_lpid(self) -> int:
        if self._value >= (1 << self.BITS):
            # 2^64 pages at any realistic allocation rate outlives the
            # machine by millennia (paper section 4.3); this is a guard,
            # not an expected path.
            raise CounterOverflowError("global page counter exhausted")
        lpid = self._value
        self._value += 1
        if sanitizer.enabled("counter_monotonicity"):
            sanitizer.check(lpid >= 1, f"GPC issued LPID {lpid}; 0 is reserved for 'never assigned'")
        return lpid

    @property
    def value(self) -> int:
        return self._value

    def save_state(self) -> int:
        return self._value

    def restore_state(self, state: int) -> None:
        if sanitizer.enabled("counter_monotonicity"):
            sanitizer.check(state >= 1, "GPC state must be positive (LPID 0 is reserved)")
        self._value = state


@dataclass
class PageCounterBlock:
    """AISE per-page counter block: LPID + 64 minor counters (64 bytes)."""

    lpid: int
    minors: list[int]

    @classmethod
    def fresh(cls, lpid: int) -> "PageCounterBlock":
        return cls(lpid=lpid, minors=[0] * BLOCKS_PER_PAGE)

    def to_bytes(self) -> bytes:
        if not 0 <= self.lpid < (1 << LPID_BITS):
            raise ValueError(f"LPID {self.lpid} out of 64-bit range")
        packed = 0
        for i, minor in enumerate(self.minors):
            if not 0 <= minor <= MINOR_MAX:
                raise ValueError(f"minor counter {minor} out of {MINOR_BITS}-bit range")
            packed |= minor << (MINOR_BITS * i)
        return self.lpid.to_bytes(8, "big") + packed.to_bytes(_MINOR_FIELD_BYTES, "little")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PageCounterBlock":
        if len(raw) != BLOCK_SIZE:
            raise ValueError(f"counter block must be {BLOCK_SIZE} bytes, got {len(raw)}")
        lpid = int.from_bytes(raw[:8], "big")
        packed = int.from_bytes(raw[8:], "little")
        minors = [(packed >> (MINOR_BITS * i)) & MINOR_MAX for i in range(BLOCKS_PER_PAGE)]
        return cls(lpid=lpid, minors=minors)

    def increment(self, block_in_page: int) -> bool:
        """Bump one minor counter. Returns True if it wrapped (overflow).

        On overflow the caller must assign a fresh LPID and re-encrypt the
        page (paper section 4.3); the minor is reset to 0 here.
        """
        old = self.minors[block_in_page]
        if sanitizer.enabled("counter_monotonicity"):
            # A minor outside its 7-bit range means something wrote the
            # counter behind this API's back — pad reuse waiting to happen.
            sanitizer.check(
                0 <= old <= MINOR_MAX,
                f"minor counter {old} out of {MINOR_BITS}-bit range before increment",
            )
        value = old + 1
        if value > MINOR_MAX:
            self.minors[block_in_page] = 0
            return True
        self.minors[block_in_page] = value
        return False


@dataclass
class SplitCounterBlock:
    """Split-counter baseline: 64-bit major counter + 64 7-bit minors.

    Identical layout to :class:`PageCounterBlock` with the major counter
    where AISE puts the LPID. On minor overflow the major counter is
    incremented and the page re-encrypted. Provided as the prior-work
    organization AISE's storage cost is compared against (section 4.6).
    """

    major: int
    minors: list[int]

    @classmethod
    def fresh(cls) -> "SplitCounterBlock":
        return cls(major=0, minors=[0] * BLOCKS_PER_PAGE)

    def increment(self, block_in_page: int) -> bool:
        old = self.minors[block_in_page]
        if sanitizer.enabled("counter_monotonicity"):
            sanitizer.check(
                0 <= old <= MINOR_MAX,
                f"minor counter {old} out of {MINOR_BITS}-bit range before increment",
            )
        value = old + 1
        if value > MINOR_MAX:
            self.minors[block_in_page] = 0
            self.major += 1
            return True
        self.minors[block_in_page] = value
        return False

    def to_bytes(self) -> bytes:
        packed = 0
        for i, minor in enumerate(self.minors):
            packed |= minor << (MINOR_BITS * i)
        return self.major.to_bytes(8, "big") + packed.to_bytes(_MINOR_FIELD_BYTES, "little")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SplitCounterBlock":
        block = PageCounterBlock.from_bytes(raw)
        return cls(major=block.lpid, minors=block.minors)


class FlatCounterStore:
    """Per-block counters of a fixed width, for the baseline schemes.

    The global-counter scheme stores, with every block, the global counter
    value it was encrypted under (8B per block for global64 — the 12.5%
    overhead of Table 1). Address-based schemes store a per-block counter
    incremented on each writeback.
    """

    def __init__(self, counter_bits: int):
        if counter_bits <= 0:
            raise ValueError("counter width must be positive")
        self.counter_bits = counter_bits
        self._max = (1 << counter_bits) - 1
        self._values: dict[int, int] = {}
        self.wraps = 0

    def get(self, block_index: int) -> int:
        return self._values.get(block_index, 0)

    def set(self, block_index: int, value: int) -> None:
        if value > self._max:
            raise CounterOverflowError(
                f"{self.counter_bits}-bit counter cannot hold {value}"
            )
        self._values[block_index] = value

    def increment(self, block_index: int) -> bool:
        """Bump a per-block counter; True if it wrapped to 0."""
        old = self._values.get(block_index, 0)
        if sanitizer.enabled("counter_monotonicity"):
            sanitizer.check(
                0 <= old <= self._max,
                f"{self.counter_bits}-bit block counter held {old} before increment",
            )
        value = old + 1
        if value > self._max:
            self._values[block_index] = 0
            self.wraps += 1
            return True
        self._values[block_index] = value
        return False

    @property
    def bytes_per_block(self) -> float:
        return self.counter_bits / 8


class MonotonicGlobalCounter:
    """The write counter of the global-counter encryption baseline.

    Incremented on *every* block writeback; when it wraps, the entire
    physical + swap memory must be re-encrypted under a new key (paper
    section 4.1). The wrap count is exposed so the evaluation can show how
    frequent whole-memory re-encryption becomes for small widths.
    """

    def __init__(self, bits: int):
        self.bits = bits
        self._max = (1 << bits) - 1
        self._value = 0
        self.wraps = 0

    def next_value(self) -> int:
        """Value to stamp on the block being written; advances the counter."""
        previous = self._value
        self._value += 1
        if self._value > self._max:
            self._value = 1
            self.wraps += 1
        if sanitizer.enabled("counter_monotonicity"):
            sanitizer.check(
                0 <= previous <= self._max,
                f"global counter held {previous}, outside its {self.bits}-bit range",
            )
            sanitizer.check(
                self._value == previous + 1 or (previous == self._max and self._value == 1),
                "global counter stepped non-monotonically",
            )
        return self._value

    @property
    def value(self) -> int:
        return self._value
