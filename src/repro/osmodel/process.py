"""Processes for the functional OS model."""

from __future__ import annotations

from dataclasses import dataclass, field

from .pagetable import PageTable


@dataclass
class Process:
    """A process: PID, page table, parentage, attached shared segments."""

    pid: int
    name: str = ""
    page_table: PageTable = None  # set by the kernel
    parent_pid: int | None = None
    alive: bool = True
    shared_segments: dict = field(default_factory=dict)  # name -> base vpage

    def __post_init__(self):
        if self.page_table is None:
            self.page_table = PageTable(self.pid)
