"""A small fully-associative TLB with LRU replacement.

Purely a performance structure in this model — translation correctness
comes from the page tables. Its relevance to the paper: Figure 3's point
that AISE's LPIDs are found via the *physical* address (counter-cache
indexed), so the TLB does **not** grow — unlike designs that stash LPIDs
or virtual addresses in TLB entries (section 4.3).
"""

from __future__ import annotations

from collections import OrderedDict


class TLB:
    """Fully-associative LRU translation lookaside buffer (stats only)."""

    def __init__(self, entries: int = 64):
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.capacity = entries
        self._map: OrderedDict[tuple[int, int], int] = OrderedDict()  # (pid, vpage) -> frame
        self.hits = 0
        self.misses = 0

    def lookup(self, pid: int, vpage: int) -> int | None:
        key = (pid, vpage)
        frame = self._map.get(key)
        if frame is None:
            self.misses += 1
            return None
        self._map.move_to_end(key)
        self.hits += 1
        return frame

    def fill(self, pid: int, vpage: int, frame: int) -> None:
        key = (pid, vpage)
        if key in self._map:
            self._map.move_to_end(key)
        self._map[key] = frame
        if len(self._map) > self.capacity:
            self._map.popitem(last=False)

    def invalidate(self, pid: int, vpage: int) -> None:
        self._map.pop((pid, vpage), None)

    def invalidate_frame(self, frame: int) -> None:
        """Shoot down every entry pointing at a frame (swap-out, COW break)."""
        stale = [key for key, value in self._map.items() if value == frame]
        for key in stale:
            del self._map[key]

    def flush(self) -> None:
        self._map.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
