"""The swap device: attackable disk storage for page images.

Swap-outs are DMA transfers (paper section 4.4: "moving the page in and
out of the disk can be accomplished with or without the involvement of
the processor") — the device stores exactly the bytes it is given, and an
adversary can read or modify them at will. Protection comes solely from
the page-root directory in tree-covered physical memory (section 5.1).
"""

from __future__ import annotations

from ..core import sanitizer
from ..core.machine import IMAGE_BLOCKS
from ..mem.dram import BlockMemory
from ..mem.layout import BLOCK_SIZE


class SwapDevice:
    """Fixed-size slots of page images on 'disk'.

    ``slot_blocks`` defaults to the single-counter-block image shape; a
    kernel passes its machine's ``image_blocks`` so schemes with larger
    per-page counter runs (global64) get correspondingly larger slots.
    """

    def __init__(self, slots: int, slot_blocks: int = IMAGE_BLOCKS):
        if slots <= 0:
            raise ValueError("swap device needs at least one slot")
        self.slots = slots
        self.slot_bytes = slot_blocks * BLOCK_SIZE
        self.storage = BlockMemory(slots * self.slot_bytes, name="swap")
        self._free = list(range(slots - 1, -1, -1))
        self._used: set[int] = set()
        self.writes = 0
        self.reads = 0

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def allocate_slot(self) -> int:
        if not self._free:
            raise MemoryError("swap device full")
        slot = self._free.pop()
        self._used.add(slot)
        return slot

    def release_slot(self, slot: int) -> None:
        if slot not in self._used:
            raise KeyError(f"slot {slot} not in use")
        self._used.remove(slot)
        self._free.append(slot)

    def _base(self, slot: int) -> int:
        if not 0 <= slot < self.slots:
            raise IndexError(f"swap slot {slot} out of range")
        return slot * self.slot_bytes

    def _validate_image(self, image: bytes) -> None:
        if len(image) != self.slot_bytes:
            raise ValueError(f"image must be {self.slot_bytes} bytes, got {len(image)}")

    def _store_image(self, slot: int, image: bytes) -> None:
        base = self._base(slot)
        for offset in range(0, self.slot_bytes, BLOCK_SIZE):
            self.storage.write_block(base + offset, image[offset : offset + BLOCK_SIZE])

    def _load_image(self, slot: int) -> bytes:
        base = self._base(slot)
        return b"".join(
            self.storage.read_block(base + offset)
            for offset in range(0, self.slot_bytes, BLOCK_SIZE)
        )

    def dma_write(self, slot: int, image: bytes) -> None:
        """Store a page image (no processor involvement, no checks)."""
        self._validate_image(image)
        if sanitizer.enabled("swap_ownership"):
            # Kernel DMA to a slot the allocator doesn't consider in use
            # breaks section 5.1's assumption that slot identity is stable
            # while the page is out.
            sanitizer.check(slot in self._used, f"kernel DMA write to unallocated swap slot {slot}")
        self._store_image(slot, image)
        self.writes += 1

    def dma_read(self, slot: int) -> bytes:
        if sanitizer.enabled("swap_ownership"):
            sanitizer.check(slot in self._used, f"kernel DMA read from unallocated swap slot {slot}")
        self.reads += 1
        return self._load_image(slot)

    # -- adversary interface -------------------------------------------------
    # These model a physical attacker touching the platters directly, so
    # they deliberately bypass the kernel DMA paths (and their armed
    # ownership checks) as well as the read/write accounting.

    def corrupt_slot(self, slot: int, byte_offset: int = 0) -> None:
        """Flip bytes of a stored image (physical attack on the disk)."""
        base = self._base(slot) + (byte_offset // BLOCK_SIZE) * BLOCK_SIZE
        self.storage.corrupt(base)

    def snapshot_slot(self, slot: int) -> bytes:
        return self._load_image(slot)

    def replay_slot(self, slot: int, old_image: bytes) -> None:
        """Put back a previously captured image (replay attack on swap)."""
        self._validate_image(old_image)
        self._store_image(slot, old_image)
