"""Per-process page tables for the functional OS model (paper section 4.2).

A page-table entry maps a virtual page to either a physical frame
(present) or a swap slot (swapped out). COW and shared flags support the
fork / shared-memory scenarios the paper argues address-based seed
schemes cannot handle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.layout import PAGE_SIZE
from ..core.errors import PageFaultError


@dataclass
class PageTableEntry:
    """One virtual page's mapping state (frame / swap slot / flags)."""

    vpage: int
    frame: int | None = None  # physical frame index when present
    swap_slot: int | None = None  # swap slot when not present
    writable: bool = True
    cow: bool = False  # copy-on-write pending
    shared: bool = False  # shared-memory mapping (pinned, never swapped)

    @property
    def present(self) -> bool:
        return self.frame is not None


class PageTable:
    """Sparse virtual page -> PTE map for one process."""

    def __init__(self, pid: int):
        self.pid = pid
        self._entries: dict[int, PageTableEntry] = {}

    def entry(self, vpage: int) -> PageTableEntry:
        pte = self._entries.get(vpage)
        if pte is None:
            raise PageFaultError(f"pid {self.pid}: no mapping for virtual page {vpage:#x}")
        return pte

    def lookup(self, vaddr: int) -> PageTableEntry:
        return self.entry(vaddr // PAGE_SIZE)

    def map(self, vpage: int, **fields) -> PageTableEntry:
        if vpage in self._entries:
            raise ValueError(f"pid {self.pid}: virtual page {vpage:#x} already mapped")
        pte = PageTableEntry(vpage=vpage, **fields)
        self._entries[vpage] = pte
        return pte

    def unmap(self, vpage: int) -> PageTableEntry:
        pte = self.entry(vpage)
        del self._entries[vpage]
        return pte

    def is_mapped(self, vpage: int) -> bool:
        return vpage in self._entries

    def entries(self) -> list[PageTableEntry]:
        return list(self._entries.values())

    def resident_pages(self) -> list[PageTableEntry]:
        return [pte for pte in self._entries.values() if pte.present]

    def translate(self, vaddr: int) -> int:
        """Virtual -> physical address; raises PageFaultError if not present."""
        pte = self.lookup(vaddr)
        if not pte.present:
            raise PageFaultError(
                f"pid {self.pid}: page {vaddr // PAGE_SIZE:#x} is swapped out"
            )
        return pte.frame * PAGE_SIZE + (vaddr % PAGE_SIZE)
