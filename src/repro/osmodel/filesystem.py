"""A minimal file store for file-backed mmap.

The paper's IPC argument (section 4.2) leans on mmap being "used
extensively in glibc for file I/O and memory management" and on shared
libraries: a single physical page holding file content gets mapped into
many processes, read-only or copy-on-write. This module provides the
file substrate; the kernel adds ``mmap_file`` / ``msync`` on top.

Files live on an (unprotected, attacker-visible) disk as plaintext —
exactly like a program binary or shared library shipped to the machine.
Protection begins when pages are loaded into the secure processor's
memory; AISE's address-free seeds are what let one in-memory copy serve
every mapper.
"""

from __future__ import annotations

from ..mem.layout import PAGE_SIZE


class FileStore:
    """Named byte arrays on disk, page-granular."""

    def __init__(self):
        self._files: dict[str, bytearray] = {}
        self.reads = 0
        self.writes = 0

    def create(self, name: str, content: bytes = b"") -> None:
        if name in self._files:
            raise FileExistsError(f"file {name!r} already exists")
        self._files[name] = bytearray(content)

    def exists(self, name: str) -> bool:
        return name in self._files

    def size(self, name: str) -> int:
        return len(self._file(name))

    def pages(self, name: str) -> int:
        return (self.size(name) + PAGE_SIZE - 1) // PAGE_SIZE

    def _file(self, name: str) -> bytearray:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no file named {name!r}") from None

    def read_page(self, name: str, page: int) -> bytes:
        """One page of file content, zero-padded past EOF."""
        data = self._file(name)
        self.reads += 1
        chunk = bytes(data[page * PAGE_SIZE : (page + 1) * PAGE_SIZE])
        return chunk.ljust(PAGE_SIZE, b"\x00")

    def write_page(self, name: str, page: int, content: bytes) -> None:
        """Write one page back (msync); grows the file if needed."""
        if len(content) != PAGE_SIZE:
            raise ValueError(f"page writes must be {PAGE_SIZE} bytes")
        data = self._file(name)
        end = (page + 1) * PAGE_SIZE
        if len(data) < end:
            data.extend(bytes(end - len(data)))
        data[page * PAGE_SIZE : end] = content
        self.writes += 1

    def raw_content(self, name: str) -> bytes:
        """Attacker/debug view of the on-disk bytes."""
        return bytes(self._file(name))

    def unlink(self, name: str) -> None:
        del self._files[name]
