"""The OS kernel model: virtual memory, swapping, fork/COW, shared-memory IPC.

This is the substrate the paper's system-level arguments are about. The
kernel runs *outside* the trust boundary for data protection purposes —
it orchestrates page placement and DMA, but never needs plaintext or
keys. Under AISE:

* **page swap** moves raw ciphertext + the page's counter block to disk
  and back with no re-encryption (section 4.4);
* **shared memory / fork-COW / shared libraries** just work, because
  seeds are address-independent (section 4.5);
* swap integrity rides on the page-root directory (section 5.1).

The same kernel drives the baseline schemes so their documented failures
are reproducible: the physical-address scheme forces a decrypt+re-encrypt
of every swapped page (counted), and the virtual-address scheme returns
garbage through shared mappings (demonstrated in the test suite).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .. import obs
from ..core.encryption import AccessContext
from ..core.errors import PageFaultError
from ..core.machine import IMAGE_HEADER, SecureMemorySystem
from ..mem.layout import BLOCK_SIZE, BLOCKS_PER_PAGE, PAGE_SIZE
from .filesystem import FileStore
from .frames import FrameAllocator
from .pagetable import PageTableEntry
from .process import Process
from .swap import SwapDevice
from .tlb import TLB


@dataclass
class KernelStats:
    """Counters for the kernel's paging, swap, fork, and COW activity."""

    page_faults: int = 0
    demand_zero_fills: int = 0
    swap_ins: int = 0
    swap_outs: int = 0
    cow_breaks: int = 0
    forks: int = 0
    swap_reencrypted_blocks: int = 0  # phys-addr scheme's extra work


class DiskCipher:
    """Software page encryption for the physical-address baseline's swap.

    The paper (section 4.2): with physical-address seeds, a page headed to
    disk must be decrypted (counter mode, old address) and re-encrypted
    (direct mode) — this is that second mode, keyed separately and made
    temporally unique with a per-swap-out generation nonce.
    """

    def __init__(self, key: bytes):
        self.key = bytes(key)
        self._generation = 0

    def next_generation(self) -> int:
        self._generation += 1
        return self._generation

    def _pad(self, generation: int, block: int) -> bytes:
        nonce = generation.to_bytes(8, "big") + block.to_bytes(8, "big")
        return hashlib.blake2s(nonce, key=self.key[:32], digest_size=BLOCK_SIZE // 2).digest() * 2

    def apply(self, data: bytes, generation: int, block: int) -> bytes:
        pad = self._pad(generation, block)
        return bytes(a ^ b for a, b in zip(data, pad))


class Kernel:
    """Virtual-memory kernel over one :class:`SecureMemorySystem`."""

    def __init__(
        self,
        machine: SecureMemorySystem,
        swap_slots: int | None = None,
        tlb_entries: int = 64,
        reuse_pids: bool = True,
    ):
        self.machine = machine
        self.frames = FrameAllocator(machine.data_pages)
        if swap_slots is None:
            swap_slots = (machine.config.swap_bytes or machine.layout.data_bytes) // PAGE_SIZE
        self.swap = SwapDevice(swap_slots, slot_blocks=machine.image_blocks)
        self.tlb = TLB(tlb_entries)
        self.reuse_pids = reuse_pids
        self.processes: dict[int, Process] = {}
        self._free_pids: list[int] = []
        self._next_pid = 1
        self._shared_segments: dict[str, list[int]] = {}  # name -> frames
        self.files = FileStore()
        self._file_frames: dict[str, list[int]] = {}  # name -> resident page cache
        self._disk_cipher = DiskCipher(hashlib.blake2s(machine.mac_key, person=b"diskkey0").digest())
        self._slot_generation: dict[int, int] = {}
        self.stats = KernelStats()
        if not machine.booted:
            machine.boot()

    # -- process lifecycle ----------------------------------------------------

    def _allocate_pid(self) -> int:
        if self.reuse_pids and self._free_pids:
            return self._free_pids.pop()
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def create_process(self, name: str = "") -> Process:
        """Spawn a process with an empty address space."""
        pid = self._allocate_pid()
        process = Process(pid=pid, name=name or f"proc{pid}")
        self.processes[pid] = process
        return process

    def exit_process(self, pid: int) -> None:
        """Tear down a process, releasing frames, swap slots, and its PID."""
        process = self.processes.pop(pid)
        process.alive = False
        for pte in process.page_table.entries():
            self._drop_mapping(pid, pte)
        if self.reuse_pids:
            self._free_pids.append(pid)

    def _drop_mapping(self, pid: int, pte: PageTableEntry) -> None:
        if pte.present:
            frame = pte.frame
            self.frames.detach(frame, pid, pte.vpage)
            self.tlb.invalidate(pid, pte.vpage)
            info = self.frames.info(frame)
            # Pinned frames back a named shared segment, which persists
            # until shm_unlink even with no attachers (SysV semantics).
            if not info.mappers and not info.pinned:
                self.frames.release(frame)
                self.machine.invalidate_page(frame)
        elif pte.swap_slot is not None:
            self.swap.release_slot(pte.swap_slot)

    # -- mapping --------------------------------------------------------------

    def mmap(self, pid: int, vaddr: int, npages: int, shared_name: str | None = None) -> None:
        """Map ``npages`` at page-aligned ``vaddr``: anonymous demand-zero
        pages, or an attachment of a named shared segment (mmap-style IPC)."""
        if vaddr % PAGE_SIZE:
            raise ValueError("mmap address must be page-aligned")
        process = self.processes[pid]
        vpage = vaddr // PAGE_SIZE
        if shared_name is None:
            for i in range(npages):
                process.page_table.map(vpage + i)
            return
        frames = self._shared_segments.get(shared_name)
        if frames is None:
            raise KeyError(f"no shared segment named {shared_name!r}")
        if len(frames) != npages:
            raise ValueError(f"segment {shared_name!r} has {len(frames)} pages, not {npages}")
        for i, frame in enumerate(frames):
            pte = process.page_table.map(vpage + i, frame=frame, shared=True)
            self.frames.attach(frame, pid, pte.vpage)
        process.shared_segments[shared_name] = vpage

    def munmap(self, pid: int, vaddr: int, npages: int) -> None:
        """Remove ``npages`` of mappings at page-aligned ``vaddr``.

        Private pages release their frames (or swap slots); shared
        attachments merely detach (the segment persists until unlinked).
        """
        if vaddr % PAGE_SIZE:
            raise ValueError("munmap address must be page-aligned")
        process = self.processes[pid]
        vpage = vaddr // PAGE_SIZE
        for i in range(npages):
            if not process.page_table.is_mapped(vpage + i):
                raise PageFaultError(f"pid {pid}: munmap of unmapped page {vpage + i:#x}")
        for i in range(npages):
            pte = process.page_table.unmap(vpage + i)
            self._drop_mapping(pid, pte)

    # -- file-backed mmap (glibc-style file I/O and shared libraries) --------

    @staticmethod
    def _file_mapper(name: str, page: int):
        """Synthetic mapper entry pinning file-cache frames in the reverse
        map; also keeps private (COW) mappings from un-sharing the cache
        frame when they are the last process mapper."""
        return (f"file:{name}", page)

    def _ensure_file_resident(self, name: str) -> list[int]:
        """Load a file's pages into (protected) memory once, like a page
        cache; every mapping — shared or private — uses these frames."""
        frames = self._file_frames.get(name)
        if frames is not None:
            return frames
        frames = []
        for page in range(max(1, self.files.pages(name))):
            frame = self._get_frame()
            content = self.files.read_page(name, page)
            base = frame * PAGE_SIZE
            for block in range(BLOCKS_PER_PAGE):
                self.machine.write_block(
                    base + block * BLOCK_SIZE,
                    content[block * BLOCK_SIZE : (block + 1) * BLOCK_SIZE],
                    AccessContext(),
                )
            self.frames.pin(frame)
            self.frames.attach(frame, *self._file_mapper(name, page))
            frames.append(frame)
        self._file_frames[name] = frames
        return frames

    def mmap_file(self, pid: int, vaddr: int, name: str, shared: bool = True) -> int:
        """Map a file at page-aligned ``vaddr``; returns pages mapped.

        ``shared=True`` is MAP_SHARED (writes visible to every mapper and
        flushable with :meth:`msync`); ``shared=False`` is MAP_PRIVATE —
        the shared-library case — where the first write copies the page
        (COW) and the file stays pristine.
        """
        if vaddr % PAGE_SIZE:
            raise ValueError("mmap address must be page-aligned")
        process = self.processes[pid]
        frames = self._ensure_file_resident(name)
        vpage = vaddr // PAGE_SIZE
        for i, frame in enumerate(frames):
            if shared:
                pte = process.page_table.map(vpage + i, frame=frame, shared=True)
            else:
                pte = process.page_table.map(vpage + i, frame=frame, shared=False,
                                             cow=True, writable=False)
            self.frames.attach(frame, pid, pte.vpage)
        return len(frames)

    def msync(self, name: str) -> None:
        """Flush a file's resident (shared-mapping) pages back to disk."""
        frames = self._file_frames.get(name)
        if frames is None:
            return
        for page, frame in enumerate(frames):
            base = frame * PAGE_SIZE
            content = b"".join(
                self.machine.read_block(base + block * BLOCK_SIZE)
                for block in range(BLOCKS_PER_PAGE)
            )
            self.files.write_page(name, page, content)

    def drop_file_cache(self, name: str) -> None:
        """Evict a file's resident pages (all process mappings must be gone)."""
        frames = self._file_frames[name]
        for page, frame in enumerate(frames):
            info = self.frames.info(frame)
            others = info.mappers - {self._file_mapper(name, page)}
            if others:
                raise ValueError(f"file {name!r} still mapped by {others}")
            self.frames.detach(frame, *self._file_mapper(name, page))
            self.frames.unpin(frame)
            self.frames.release(frame)
            self.machine.invalidate_page(frame)
        del self._file_frames[name]

    def shm_create(self, name: str, npages: int) -> None:
        """Create a named shared-memory segment (pinned, zero-filled)."""
        if name in self._shared_segments:
            raise ValueError(f"segment {name!r} already exists")
        frames = []
        for _ in range(npages):
            frame = self._get_frame()
            self._zero_fill(frame, owner_ctx=AccessContext())
            self.frames.pin(frame)
            frames.append(frame)
        self._shared_segments[name] = frames

    def shm_unlink(self, name: str) -> None:
        """Destroy a (fully detached) named shared segment."""
        frames = self._shared_segments[name]
        for frame in frames:
            if self.frames.info(frame).mappers:
                raise ValueError(f"segment {name!r} still attached")
        del self._shared_segments[name]
        for frame in frames:
            self.frames.unpin(frame)
            self.frames.release(frame)
            self.machine.invalidate_page(frame)

    # -- fork / copy-on-write ----------------------------------------------------

    def fork(self, parent_pid: int) -> Process:
        """Clone a process, sharing frames copy-on-write (section 4.2)."""
        parent = self.processes[parent_pid]
        child = self.create_process(name=f"{parent.name}-child")
        child.parent_pid = parent_pid
        self.stats.forks += 1
        for pte in parent.page_table.entries():
            if pte.swap_slot is not None:
                # Simplification: fault swapped pages back before sharing.
                self._fault_in(parent_pid, pte)
            if not pte.present:
                child.page_table.map(pte.vpage)
                continue
            if pte.shared:
                new = child.page_table.map(pte.vpage, frame=pte.frame, shared=True)
                self.frames.attach(pte.frame, child.pid, new.vpage)
                continue
            pte.cow = True
            pte.writable = False
            new = child.page_table.map(pte.vpage, frame=pte.frame, cow=True, writable=False)
            self.frames.attach(pte.frame, child.pid, new.vpage)
        child.shared_segments = dict(parent.shared_segments)
        return child

    def _break_cow(self, pid: int, pte: PageTableEntry) -> None:
        info = self.frames.info(pte.frame)
        if len(info.mappers) == 1:
            pte.cow = False
            pte.writable = True
            return
        self.stats.cow_breaks += 1
        old_frame = pte.frame
        new_frame = self._get_frame()
        # Copy through the secure processor: decrypt from the shared frame,
        # re-encrypt into the private one. The access context is the
        # faulting process's — under AISE it is irrelevant; under the
        # virtual-address baseline this copy is exactly where sharing
        # breaks down (the test suite demonstrates the garbage).
        for block in range(BLOCKS_PER_PAGE):
            vaddr = pte.vpage * PAGE_SIZE + block * BLOCK_SIZE
            ctx = AccessContext(vaddr=vaddr, pid=pid)
            plain = self.machine.read_block(old_frame * PAGE_SIZE + block * BLOCK_SIZE, ctx)
            self.machine.write_block(new_frame * PAGE_SIZE + block * BLOCK_SIZE, plain, ctx)
        self.frames.detach(old_frame, pid, pte.vpage)
        self.frames.attach(new_frame, pid, pte.vpage)
        self.tlb.invalidate(pid, pte.vpage)
        pte.frame = new_frame
        pte.cow = False
        pte.writable = True

    # -- frame management and swapping ----------------------------------------------

    def _get_frame(self) -> int:
        frame = self.frames.allocate()
        while frame is None:
            victim = self.frames.pick_victim()
            if victim is None:
                raise MemoryError("out of physical frames and nothing evictable")
            self._swap_out(victim.index)
            frame = self.frames.allocate()
        return frame

    def _zero_fill(self, frame: int, owner_ctx: AccessContext) -> None:
        base = frame * PAGE_SIZE
        zero = bytes(BLOCK_SIZE)
        for block in range(BLOCKS_PER_PAGE):
            ctx = AccessContext(vaddr=owner_ctx.vaddr + block * BLOCK_SIZE, pid=owner_ctx.pid)
            self.machine.write_block(base + block * BLOCK_SIZE, zero, ctx)
        self.stats.demand_zero_fills += 1

    def _swap_out(self, frame: int) -> None:
        info = self.frames.info(frame)
        (pid, vpage), = info.mappers  # victims are never shared
        pte = self.processes[pid].page_table.entry(vpage)
        slot = self.swap.allocate_slot()
        if self.machine.enc_scheme.reencrypt_on_swap:
            image = self._export_phys_reencrypted(frame, pid, vpage, slot)
        else:
            image = self.machine.export_page_image(frame)
        if self.machine.page_roots is not None:
            root = self.machine.page_root_of_image(image)
            self.machine.page_roots.install(slot, root)
        self.swap.dma_write(slot, image)
        self.machine.invalidate_page(frame)
        self.frames.detach(frame, pid, vpage)
        self.frames.release(frame)
        self.tlb.invalidate(pid, vpage)
        pte.frame = None
        pte.swap_slot = slot
        self.stats.swap_outs += 1
        obs.emit("swap_out", pid=pid, vpage=vpage, frame=frame, slot=slot)

    def _fault_in(self, pid: int, pte: PageTableEntry) -> None:
        self.stats.page_faults += 1
        if pte.swap_slot is None:
            # Demand-zero: first touch of an anonymous page.
            frame = self._get_frame()
            ctx = AccessContext(vaddr=pte.vpage * PAGE_SIZE, pid=pid)
            self._zero_fill(frame, ctx)
            pte.frame = frame
            self.frames.attach(frame, pid, pte.vpage)
            return
        slot = pte.swap_slot
        image = self.swap.dma_read(slot)
        if self.machine.page_roots is not None:
            self.machine.page_roots.verify_page_image(
                slot, self.machine.page_root_of_image(image)
            )
        frame = self._get_frame()
        if self.machine.enc_scheme.reencrypt_on_swap:
            self._install_phys_reencrypted(frame, image, pid, pte.vpage, slot)
        else:
            self.machine.install_page_image(frame, image)
        self.swap.release_slot(slot)
        pte.frame = frame
        pte.swap_slot = None
        self.frames.attach(frame, pid, pte.vpage)
        self.stats.swap_ins += 1
        obs.emit("swap_in", pid=pid, vpage=pte.vpage, frame=frame, slot=slot)

    # Physical-address baseline: the mandatory re-encryption on both swap
    # directions (decrypt with old physical address, direct-encrypt for
    # disk; and the reverse on the way in).

    def _export_phys_reencrypted(self, frame: int, pid: int, vpage: int, slot: int) -> bytes:
        generation = self._disk_cipher.next_generation()
        self._slot_generation[slot] = generation
        base = frame * PAGE_SIZE
        body = bytearray(generation.to_bytes(IMAGE_HEADER, "big"))
        for block in range(BLOCKS_PER_PAGE):
            ctx = AccessContext(vaddr=vpage * PAGE_SIZE + block * BLOCK_SIZE, pid=pid)
            plain = self.machine.read_block(base + block * BLOCK_SIZE, ctx)
            body.extend(self._disk_cipher.apply(plain, generation, block))
            self.stats.swap_reencrypted_blocks += 1
        body.extend(bytes(self.machine.image_blocks * BLOCK_SIZE - len(body)))
        return bytes(body)

    def _install_phys_reencrypted(
        self, frame: int, image: bytes, pid: int, vpage: int, slot: int
    ) -> None:
        generation = int.from_bytes(image[:IMAGE_HEADER], "big")
        base = frame * PAGE_SIZE
        offset = IMAGE_HEADER
        for block in range(BLOCKS_PER_PAGE):
            disk_block = image[offset : offset + BLOCK_SIZE]
            offset += BLOCK_SIZE
            # The generation stamp comes from the image header, which is
            # covered by the page-root check in swap_in before install;
            # and decrypting with a replayed generation cannot reuse a
            # pad on any *new* encryption (export always draws a fresh
            # next_generation()).
            plain = self._disk_cipher.apply(disk_block, generation, block)  # repro: allow(FLOW002)
            ctx = AccessContext(vaddr=vpage * PAGE_SIZE + block * BLOCK_SIZE, pid=pid)
            self.machine.write_block(base + block * BLOCK_SIZE, plain, ctx)
            self.stats.swap_reencrypted_blocks += 1

    # -- virtual memory access ---------------------------------------------------

    def _resolve(self, pid: int, vaddr: int, for_write: bool) -> int:
        """Translate one address, handling faults and COW. Returns paddr."""
        process = self.processes[pid]
        vpage = vaddr // PAGE_SIZE
        pte = process.page_table.entry(vpage)
        if not pte.present:
            self.tlb.invalidate(pid, vpage)
            self._fault_in(pid, pte)
        if for_write and pte.cow:
            self._break_cow(pid, pte)
        if for_write and not pte.writable:
            raise PageFaultError(f"pid {pid}: write to read-only page {vpage:#x}")
        if self.tlb.lookup(pid, vpage) is None:
            self.tlb.fill(pid, vpage, pte.frame)
        return pte.frame * PAGE_SIZE + (vaddr % PAGE_SIZE)

    def write(self, pid: int, vaddr: int, data: bytes) -> None:
        """Write through the secure processor at a virtual address."""
        offset = 0
        while offset < len(data):
            cursor = vaddr + offset
            block_vaddr = cursor & ~(BLOCK_SIZE - 1)
            lo = cursor - block_vaddr
            take = min(BLOCK_SIZE - lo, len(data) - offset)
            paddr = self._resolve(pid, cursor, for_write=True)
            ctx = AccessContext(vaddr=block_vaddr, pid=pid)
            block_paddr = paddr & ~(BLOCK_SIZE - 1)
            if lo == 0 and take == BLOCK_SIZE:
                block = data[offset : offset + BLOCK_SIZE]
            else:
                block = bytearray(self.machine.read_block(block_paddr, ctx))
                block[lo : lo + take] = data[offset : offset + take]
                block = bytes(block)
            self.machine.write_block(block_paddr, block, ctx)
            offset += take

    def read(self, pid: int, vaddr: int, length: int) -> bytes:
        """Read through the secure processor at a virtual address."""
        out = bytearray()
        offset = 0
        while offset < length:
            cursor = vaddr + offset
            block_vaddr = cursor & ~(BLOCK_SIZE - 1)
            lo = cursor - block_vaddr
            take = min(BLOCK_SIZE - lo, length - offset)
            paddr = self._resolve(pid, cursor, for_write=False)
            ctx = AccessContext(vaddr=block_vaddr, pid=pid)
            block = self.machine.read_block(paddr & ~(BLOCK_SIZE - 1), ctx)
            out.extend(block[lo : lo + take])
            offset += take
        return bytes(out)
