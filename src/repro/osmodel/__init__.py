"""Functional OS model: virtual memory, swapping, processes, and IPC."""

from .filesystem import FileStore
from .frames import FrameAllocator, FrameInfo
from .kernel import DiskCipher, Kernel, KernelStats
from .pagetable import PageTable, PageTableEntry
from .process import Process
from .swap import SwapDevice
from .tlb import TLB

__all__ = [
    "Kernel",
    "KernelStats",
    "DiskCipher",
    "Process",
    "PageTable",
    "PageTableEntry",
    "FrameAllocator",
    "FrameInfo",
    "FileStore",
    "SwapDevice",
    "TLB",
]
