"""Physical frame allocation and replacement.

Tracks, per frame, every (pid, vpage) mapping it backs — the reverse map
the kernel needs to fix up page tables when a frame is reclaimed, and to
know which frames are shared (and here, pinned).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class FrameInfo:
    """Per-frame bookkeeping: reverse mappings and the pinned flag."""

    index: int
    mappers: set = field(default_factory=set)  # {(pid, vpage)}
    pinned: bool = False

    @property
    def shared(self) -> bool:
        return len(self.mappers) > 1


class FrameAllocator:
    """Free-list allocator with FIFO replacement among evictable frames."""

    def __init__(self, total_frames: int, reserved: int = 0):
        if total_frames <= reserved:
            raise ValueError("no usable frames")
        self.total_frames = total_frames
        self._free = deque(range(reserved, total_frames))
        self._fifo: deque[int] = deque()  # allocation order of in-use frames
        self._info: dict[int, FrameInfo] = {}
        self.allocations = 0

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def used_frames(self) -> int:
        return len(self._info)

    def allocate(self) -> int | None:
        """Grab a free frame, or None if a victim must be evicted first."""
        if not self._free:
            return None
        frame = self._free.popleft()
        self._info[frame] = FrameInfo(index=frame)
        self._fifo.append(frame)
        self.allocations += 1
        return frame

    def info(self, frame: int) -> FrameInfo:
        return self._info[frame]

    def attach(self, frame: int, pid: int, vpage: int) -> None:
        self._info[frame].mappers.add((pid, vpage))

    def detach(self, frame: int, pid: int, vpage: int) -> None:
        info = self._info[frame]
        info.mappers.discard((pid, vpage))

    def pin(self, frame: int) -> None:
        self._info[frame].pinned = True

    def unpin(self, frame: int) -> None:
        self._info[frame].pinned = False

    def release(self, frame: int) -> None:
        """Return a frame to the free list (all mappers must be gone)."""
        info = self._info.get(frame)
        if info is None:
            raise KeyError(f"frame {frame} not in use")
        if info.mappers:
            raise ValueError(f"frame {frame} still mapped by {info.mappers}")
        del self._info[frame]
        try:
            self._fifo.remove(frame)
        except ValueError:
            pass
        self._free.append(frame)

    def pick_victim(self) -> FrameInfo | None:
        """FIFO-oldest un-pinned, un-shared frame, or None."""
        for frame in self._fifo:
            info = self._info.get(frame)
            if info is not None and not info.pinned and not info.shared and info.mappers:
                return info
        return None

    def mapped_frames(self) -> list[FrameInfo]:
        return [info for info in self._info.values() if info.mappers]
