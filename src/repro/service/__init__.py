"""repro.service: simulation as a service.

A long-lived asyncio job server over the evaluation engine: many
concurrent clients submit simulate/sweep/trace/precompile requests as
newline-delimited JSON envelopes (:mod:`repro.api.schema`) and get
per-cell results **byte-identical to a cold ``repro sweep``** — the
speed comes from amortizing everything that is not a result: shared
decoded traces and compiled lowerings (:class:`~repro.service.warmpool.
TraceStore`), pooled cold-reset machines (:class:`~repro.service.
warmpool.WarmMachinePool`), an in-memory LRU result tier in front of
the disk cache (:class:`~repro.service.cache.LruResultTier`), and
single-flight collapsing of concurrent identical requests
(:class:`~repro.service.cache.SingleFlight`).

* Serve: ``python -m repro serve --cache-dir .sweep-cache``
* Submit: ``python -m repro submit sweep --configs base aise+bmt``
* In-process: :func:`~repro.service.client.serve_background` +
  :class:`~repro.service.client.ServiceClient`

``docs/service.md`` documents the protocol, the envelope schema, the
warm-pool soundness rules, and the tenancy model;
``benchmarks/bench_service.py`` measures the cold/warm/LRU latency
tiers against the committed ``BENCH_service.json``.
"""

from .cache import LruResultTier, SingleFlight
from .client import ServiceClient, ServiceError, ServiceHandle, serve_background
from .server import SweepService
from .warmpool import TraceStore, WarmMachinePool

__all__ = [
    "LruResultTier",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "SingleFlight",
    "SweepService",
    "TraceStore",
    "WarmMachinePool",
    "serve_background",
]
