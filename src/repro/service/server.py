"""The asyncio multi-tenant sweep server.

One :class:`SweepService` owns the shared amortization state — the LRU
result tier, the disk :class:`~repro.evalx.parallel.ResultCache`, the
warm machine pool, the shared trace store — and serves any number of
concurrent client connections over a newline-delimited-JSON socket
protocol. Every line each way is one :class:`~repro.api.schema.Envelope`
(``payload_version`` / ``kind`` / ``body``); requests dispatch through
:data:`~repro.api.schema.REQUEST_TYPES`.

Connection model: requests on one connection are processed in order,
one at a time, and answered with exactly one response envelope each; a
client wanting parallelism opens more connections (connections are
cheap, the shared state behind them is the point). A connection that
sent ``subscribe`` additionally receives ``event`` envelopes — fleet
progress records from *every* running job, tagged with job id and
tenant so clients filter for their own — interleaved between responses.

Serving a cell walks the tiers cheapest-first, under single-flight so
concurrent identical requests cost one computation:

1. **lru** — the in-memory tier, wire-ready dicts at memory speed;
2. **disk** — the shared on-disk result cache (same key string);
3. **warm**/**cold** — simulate on a pooled (cold-reset) or freshly
   built machine, then fill both tiers.

Grid sweeps with ``workers > 1`` hand the whole grid to the
:func:`~repro.evalx.parallel.run_cells` process-pool engine instead —
the same engine the CLI uses, so per-cell results are byte-identical to
a cold ``repro sweep`` by the repo's parallel-equivalence invariant;
the LRU tier is back-filled from the returned grid either way. That
byte-identity is the service's contract (the ``service-smoke`` CI job
diffs a socket-served sweep against the committed figure-6 golden), and
it is why the warm pool resets machines to cold between tenants rather
than reusing cache contents: warm caches change miss counts.

``docs/service.md`` documents the protocol and the tenancy model.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time

from ..api import schema
from ..core.config import ConfigurationError, MachineConfig
from ..evalx.parallel import Cell, ResultCache, run_cells
from ..evalx.runner import CONFIGS, config_named
from ..obs.fleet import CallbackProgressSink, ProgressStream
from ..workloads.spec2k import SPEC2K_BENCHMARKS
from .cache import LruResultTier, SingleFlight
from .warmpool import TraceStore, WarmMachinePool

# One envelope per line; requests are small (the largest legitimate one
# names a few dozen configs), so a modest line limit contains a
# misbehaving client. Responses go out through the writer unbounded.
_READ_LIMIT = 1 << 22


def default_sim_slots() -> int:
    """Concurrent in-process simulations: leave a core for the loop."""
    return max(1, (os.cpu_count() or 2) - 1)


class _Connection:
    """Per-connection state: tenant identity, subscription, outbox."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.tenant = "anon"
        self.subscribed = False
        self.outbox: asyncio.Queue = asyncio.Queue()

    def send(self, envelope: schema.Envelope) -> None:
        self.outbox.put_nowait(envelope)


class SweepService:
    """The shared simulation state behind one listening socket.

    ``cache_dir`` enables the disk tier (shared with any concurrent
    ``repro sweep --cache-dir`` on the same directory); ``sim_slots``
    bounds concurrent in-process simulations; ``sweep_jobs`` bounds
    concurrent process-pool grid jobs (each spawns its own pool).
    """

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        lru_capacity: int = 4096,
        pool_capacity: int = 8,
        trace_capacity: int = 8,
        sim_slots: int | None = None,
        sweep_jobs: int = 1,
    ):
        self.lru = LruResultTier(lru_capacity)
        self.disk = ResultCache(cache_dir) if cache_dir is not None else None
        self.pool = WarmMachinePool(pool_capacity)
        self.traces = TraceStore(trace_capacity)
        self.flight = SingleFlight()
        self._sim_gate = asyncio.Semaphore(sim_slots or default_sim_slots())
        self._sweep_gate = asyncio.Semaphore(sweep_jobs)
        self._trace_gate = asyncio.Semaphore(1)  # obs sessions are ambient
        self._jobs = itertools.count(1)
        self._connections: set[_Connection] = set()
        self._server: asyncio.base_events.Server | None = None
        self._stopping = asyncio.Event()
        self.started = time.perf_counter()
        self.requests = 0
        self.errors = 0
        self.served = {"lru": 0, "disk": 0, "warm": 0, "cold": 0, "pool": 0}

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, host, port, limit=_READ_LIMIT
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "start() first"
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.start_serving()
            await self._stopping.wait()

    def stop(self) -> None:
        self._stopping.set()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        pump = asyncio.ensure_future(self._pump_outbox(conn))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self.requests += 1
                try:
                    request = schema.request_from_wire(schema.wire_decode(line.decode()))
                    response = await self._dispatch(conn, request)
                except (schema.SchemaError, ConfigurationError, ValueError) as exc:
                    self.errors += 1
                    response = schema.error_envelope(str(exc))
                conn.send(response)
        except (ConnectionResetError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # Loop teardown (shutdown request) cancels connection tasks
            # mid-read; end the connection quietly rather than letting the
            # stream protocol log the cancellation as an error.
            pass
        finally:
            self._connections.discard(conn)
            try:
                await conn.outbox.join()
                pump.cancel()
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, OSError):
                # A client gone mid-teardown (or loop shutdown racing the
                # close) is an ordinary end of connection, not an error.
                pump.cancel()

    async def _pump_outbox(self, conn: _Connection) -> None:
        while True:
            envelope = await conn.outbox.get()
            try:
                conn.writer.write(schema.wire_encode(envelope).encode() + b"\n")
                await conn.writer.drain()
            except (ConnectionResetError, OSError):
                self._connections.discard(conn)
            finally:
                conn.outbox.task_done()

    def _broadcast(self, job: int, tenant: str, record: dict) -> None:
        """Fan one progress record out to every subscribed connection."""
        for conn in list(self._connections):
            if conn.subscribed:
                conn.send(schema.event_envelope(record, job=job, tenant=tenant))

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, conn: _Connection, request) -> schema.Envelope:
        if isinstance(request, schema.HelloRequest):
            conn.tenant = request.tenant
            return schema.ok_envelope(tenant=conn.tenant, server="repro.service")
        if isinstance(request, schema.PresetsRequest):
            from ..api import preset_names

            return schema.presets_envelope(preset_names(full=request.full))
        if isinstance(request, schema.SubscribeRequest):
            conn.subscribed = request.progress
            return schema.ok_envelope(subscribed=conn.subscribed)
        if isinstance(request, schema.StatusRequest):
            return schema.status_envelope(self.status())
        if isinstance(request, schema.ShutdownRequest):
            self.stop()
            return schema.ok_envelope(stopping=True)
        if isinstance(request, schema.SimulateRequest):
            return await self._simulate(conn, request)
        if isinstance(request, schema.SweepRequest):
            return await self._sweep(conn, request)
        if isinstance(request, schema.PrecompileRequest):
            return await self._precompile(request)
        if isinstance(request, schema.TraceRequest):
            return await self._trace(request)
        raise schema.SchemaError(f"unhandled request kind {request.kind!r}")

    # -- the per-cell tiered path --------------------------------------------

    async def _cell_record(self, workload: str, config: MachineConfig,
                           label: str, events: int, overlap: float,
                           warmup: float, metrics: bool) -> tuple[dict, str, str]:
        """Resolve one cell through lru -> disk -> simulate.

        Returns (wire-ready result dict, served_from, engine): the tier
        that answered (``lru``/``disk``/``warm``/``cold``) and the
        execution-engine attribution for progress records (``cached``
        for the cache tiers). Runs under single-flight on the cell's
        cache key, so concurrent identical requests — same tenant or
        not — cost exactly one computation.
        """
        digest = await asyncio.to_thread(self.traces.digest, workload, events)
        key = ResultCache.key_for(digest, config, overlap, warmup, metrics=metrics)

        async def resolve() -> tuple[dict, str, str]:
            record = self.lru.get(key)
            if record is not None:
                return record, "lru", "cached"
            if self.disk is not None:
                hit = await asyncio.to_thread(self.disk.get, key)
                if hit is not None:
                    record = hit.to_dict()
                    self.lru.put(key, record)
                    return record, "disk", "cached"
            async with self._sim_gate:
                reused_before = self.pool.reused
                sim = self.pool.acquire(config, overlap)
                warm = self.pool.reused > reused_before
                try:
                    trace = await asyncio.to_thread(self.traces.get, workload, events)
                    result = await asyncio.to_thread(
                        lambda: sim.run(trace, label=label, warmup=warmup,
                                        collect_metrics=metrics)
                    )
                    engine = sim.engine_telemetry.last_engine or "reference"
                finally:
                    self.pool.release(sim)
            record = result.to_dict()
            if self.disk is not None:
                await asyncio.to_thread(self.disk.put, key, result)
            self.lru.put(key, record)
            return record, "warm" if warm else "cold", engine

        record, source, engine = await self.flight.run(key, resolve)
        self.served[source] = self.served.get(source, 0) + 1
        return record, source, engine

    async def _simulate(self, conn: _Connection,
                        request: schema.SimulateRequest) -> schema.Envelope:
        config, label = self._resolve(request.config)
        job = next(self._jobs)
        record, source, _engine = await self._cell_record(
            request.workload, config, request.label or label, request.events,
            request.overlap, request.warmup, request.metrics,
        )
        return schema.result_envelope(
            record, served_from=source, job=job, tenant=conn.tenant,
            workload=request.workload, config=request.config,
        )

    # -- grid sweeps ---------------------------------------------------------

    async def _sweep(self, conn: _Connection,
                     request: schema.SweepRequest) -> schema.Envelope:
        labels = tuple(request.configs) if request.configs else tuple(CONFIGS)
        unknown = []
        for label in labels:
            if label in CONFIGS:
                continue
            try:
                MachineConfig.preset(label)
            except ConfigurationError:
                unknown.append(label)
        if unknown:
            raise schema.SchemaError(
                f"unknown configs {unknown}; choose a canonical label "
                f"({', '.join(CONFIGS)}) or any registered "
                "'<encryption>[+<integrity>]' pair"
            )
        benches = tuple(request.benchmarks) if request.benchmarks else SPEC2K_BENCHMARKS
        unknown = [b for b in benches if b not in SPEC2K_BENCHMARKS]
        if unknown:
            raise schema.SchemaError(
                f"unknown benchmarks {unknown}; choose from "
                f"{', '.join(SPEC2K_BENCHMARKS)}"
            )
        job = next(self._jobs)
        loop = asyncio.get_running_loop()
        tenant = conn.tenant

        def forward(record: dict) -> None:
            # Warm-path emissions happen on the loop thread: broadcast
            # inline so a job's events always precede its response in
            # each subscriber's outbox. Pool-path emissions come from
            # the sweep worker thread (and run_cells' queue-drain
            # thread): marshal onto the loop. call_soon_threadsafe is
            # FIFO, so events still precede the response — the
            # to_thread completion lands behind them in the same queue.
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is loop:
                self._broadcast(job, tenant, record)
            else:
                loop.call_soon_threadsafe(self._broadcast, job, tenant, record)

        stream = ProgressStream([CallbackProgressSink(forward)])
        cells = [
            Cell(bench=bench, label=label, mac_bits=bits,
                 config=config_named(label, bits))
            for label in labels
            for bits in request.mac_bits
            for bench in benches
        ]
        try:
            if request.workers > 1 or request.workers == 0:
                grid = await self._sweep_pool(request, cells, stream)
            else:
                grid = await self._sweep_warm(request, cells, stream)
        finally:
            stream.close()
        payload = {
            "events": request.events,
            "benchmarks": list(benches),
            "configs": list(labels),
            "cells": {
                f"{cell.bench}/{cell.label}/"
                f"{cell.mac_bits if cell.mac_bits is not None else 'default'}": record
                for cell, record in grid.items()
            },
        }
        return schema.sweep_envelope(payload)

    async def _sweep_pool(self, request: schema.SweepRequest, cells,
                          stream: ProgressStream) -> dict:
        """The process-pool path: the whole grid through ``run_cells`` —
        the exact engine behind ``repro sweep``, in a worker thread."""

        def run() -> dict:
            computed = run_cells(
                cells,
                events=request.events,
                workers=request.workers,
                cache=self.disk,
                overlap=request.overlap,
                warmup=request.warmup,
                trace_provider=lambda bench: self.traces.get(bench, request.events),
                metrics=request.metrics,
                live=stream,
            )
            return {cell: result.to_dict() for cell, result in computed.items()}

        async with self._sweep_gate:
            grid = await asyncio.to_thread(run)
        self.served["pool"] += len(grid)
        # Back-fill the memory tier so repeats of these cells — from any
        # tenant — are served at memory speed without touching the disk.
        for cell, record in grid.items():
            digest = await asyncio.to_thread(self.traces.digest, cell.bench,
                                             request.events)
            key = ResultCache.key_for(digest, cell.config, request.overlap,
                                      request.warmup, metrics=request.metrics)
            self.lru.put(key, record)
        return grid

    async def _sweep_warm(self, request: schema.SweepRequest, cells,
                          stream: ProgressStream) -> dict:
        """The warm path: every cell through the tiered per-cell resolver,
        with the same typed progress stream the pool engine emits."""
        distinct = list(dict.fromkeys(cells))
        total = len(distinct)
        start = time.perf_counter()
        stream.emit("sweep_begin", total=total, workers=1, events=request.events)
        grid: dict = {}
        done = 0
        cached_done = 0
        simulated = 0
        for cell in distinct:
            cell_start = time.perf_counter()
            record, source, engine = await self._cell_record(
                cell.bench, cell.config, cell.label, request.events,
                request.overlap, request.warmup, request.metrics,
            )
            wall_s = time.perf_counter() - cell_start
            grid[cell] = record
            done += 1
            if source in ("lru", "disk"):
                cached_done += 1
            else:
                simulated += 1
            elapsed = max(time.perf_counter() - start, 1e-9)
            rate = done / elapsed
            stream.emit(
                "cell_done", bench=cell.bench, label=cell.label, done=done,
                total=total, source=source, engine=engine, wall_s=wall_s,
                cells_per_sec=rate, eta_s=(total - done) / rate if rate else 0.0,
                cache_hit_ratio=cached_done / done, worker=os.getpid(),
            )
        stream.emit("sweep_end", total=total, simulated=simulated,
                    cached=cached_done, wall_s=time.perf_counter() - start)
        return grid

    # -- trace / precompile --------------------------------------------------

    async def _precompile(self, request: schema.PrecompileRequest) -> schema.Envelope:
        from ..api import precompile

        config, _ = self._resolve(request.config)
        trace = await asyncio.to_thread(self.traces.get, request.workload,
                                        request.events)
        async with self._sim_gate:
            summary = await asyncio.to_thread(
                precompile, trace, config, events=request.events
            )
        return schema.ok_envelope(
            op="precompile", workload=request.workload, config=request.config,
            events=summary["events"], misses=summary["misses"],
            patterns=summary["patterns"], cached=summary["cached"],
        )

    async def _trace(self, request: schema.TraceRequest) -> schema.Envelope:
        from ..api import trace as trace_api

        trace_obj = await asyncio.to_thread(self.traces.get, request.workload,
                                            request.events)
        async with self._trace_gate:  # obs sessions are process-ambient
            run = await asyncio.to_thread(
                lambda: trace_api(trace_obj, request.config,
                                  events=request.events,
                                  interval=request.interval,
                                  warmup=request.warmup)
            )
        return schema.trace_envelope(run.to_payload())

    # -- misc ----------------------------------------------------------------

    @staticmethod
    def _resolve(config_label: str) -> tuple[MachineConfig, str]:
        return config_named(config_label), config_label

    def status(self) -> dict:
        """The counters behind every tier — the ``status`` op's body."""
        status = {
            "uptime_s": time.perf_counter() - self.started,
            "requests": self.requests,
            "errors": self.errors,
            "served": dict(self.served),
            "lru": self.lru.counts(),
            "pool": self.pool.counts(),
            "traces": self.traces.counts(),
            "flight": self.flight.counts(),
            "connections": len(self._connections),
        }
        if self.disk is not None:
            status["disk"] = self.disk.counts()
        return status
