"""Warm machines and shared traces for the sweep service.

The expensive parts of serving a cell cold are (1) generating and
decoding the workload trace, (2) lowering it for the compiled replay
engine, and (3) constructing the :class:`~repro.sim.simulator.
TimingSimulator` with its caches and layout plan. None of those costs
depends on *results*, so a long-lived server amortizes all three:

* :class:`TraceStore` keeps one :class:`~repro.sim.trace.Trace` per
  (workload, events) and hands the same instance to every tenant — the
  compiled lowerings :mod:`repro.fastpath.compiled` memoizes on a Trace
  are therefore shared across sessions (tenant B replays the lowering
  tenant A paid for).
* :class:`WarmMachinePool` keeps constructed simulators keyed by
  machine fingerprint and *cold-resets* them between tenants
  (:meth:`~repro.sim.simulator.TimingSimulator.reset_cold`: caches
  emptied, bus clock zeroed, deferred-tree pending queues discarded
  through the scheme's own soundness hook). Reuse saves construction,
  never changes results — warm *cache contents* are deliberately not
  reused, because they alter miss counts (tests/sim/test_warm_reuse.py)
  and the service's contract is byte-identity with a cold sweep.

A scheme that declares ``warm_reuse_sound = False`` is never pooled:
its simulators are built fresh per request and dropped on release.
"""

from __future__ import annotations

import threading

from ..core.config import MachineConfig
from ..evalx.parallel import config_fingerprint
from ..schemes import integrity_scheme
from ..sim.simulator import TimingSimulator


class TraceStore:
    """Bounded shared store of decoded traces (and their digests).

    Thread-safe: the server resolves traces from worker threads. The
    digest memo matters as much as the trace memo — the disk cache key
    needs it on every request, and hashing a trace is not free.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self._traces: dict[tuple, object] = {}
        self._order: list[tuple] = []
        self._digests: dict[tuple, str] = {}
        self._lock = threading.Lock()
        self.built = 0
        self.shared = 0

    def get(self, workload: str, events: int):
        from ..api import load_trace

        key = (workload, events)
        with self._lock:
            trace = self._traces.get(key)
            if trace is not None:
                self.shared += 1
                return trace
            # Build under the lock: concurrent first requests for one
            # workload must share a single Trace instance, or the
            # compiled-lowering memo fragments across copies.
            trace = load_trace(workload, events)
            while len(self._order) >= self.capacity:
                evicted = self._order.pop(0)
                self._traces.pop(evicted, None)
                self._digests.pop(evicted, None)
            self._traces[key] = trace
            self._order.append(key)
            self.built += 1
            return trace

    def digest(self, workload: str, events: int) -> str:
        key = (workload, events)
        with self._lock:
            digest = self._digests.get(key)
            if digest is not None:
                return digest
        trace = self.get(workload, events)
        digest = trace.digest()
        with self._lock:
            self._digests[key] = digest
        return digest

    def counts(self) -> dict:
        with self._lock:
            return {"built": self.built, "shared": self.shared,
                    "size": len(self._traces), "capacity": self.capacity}


class WarmMachinePool:
    """Constructed simulators keyed by machine fingerprint, reset between uses.

    ``acquire`` hands out an idle pooled simulator for the exact
    (config, overlap) pair or builds a fresh one; ``release`` returns it
    after :meth:`~repro.sim.simulator.TimingSimulator.reset_cold` — the
    handoff sanitation step, so the next tenant receives a machine
    indistinguishable from new. Schemes declaring warm reuse unsound are
    refused at release (built fresh every time, never pooled).

    Event-loop-confined by design: acquire/release run between awaits on
    the server loop (the ``run()`` itself happens in a worker thread
    while the simulator is checked out and owned by one request).
    """

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self._idle: dict[tuple, list[TimingSimulator]] = {}
        self._size = 0
        self.built = 0
        self.reused = 0
        self.released = 0
        self.refused = 0
        self.dropped = 0

    @staticmethod
    def _key(config: MachineConfig, overlap: float) -> tuple:
        return (config_fingerprint(config), overlap)

    def acquire(self, config: MachineConfig, overlap: float = 0.7) -> TimingSimulator:
        stack = self._idle.get(self._key(config, overlap))
        if stack:
            self._size -= 1
            self.reused += 1
            return stack.pop()
        self.built += 1
        return TimingSimulator(config, overlap=overlap)

    def release(self, sim: TimingSimulator) -> None:
        self.released += 1
        if not integrity_scheme(sim.integ).warm_reuse_sound:
            self.refused += 1
            return
        sim.reset_cold()
        if self._size >= self.capacity:
            self.dropped += 1
            return
        self._idle.setdefault(self._key(sim.config, sim.overlap), []).append(sim)
        self._size += 1

    def counts(self) -> dict:
        return {"built": self.built, "reused": self.reused,
                "released": self.released, "refused": self.refused,
                "dropped": self.dropped, "idle": self._size,
                "capacity": self.capacity}
