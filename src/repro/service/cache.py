"""The service's memory result tier: LRU records + single-flight.

Two small structures in front of the disk
:class:`~repro.evalx.parallel.ResultCache`:

* :class:`LruResultTier` — wire-ready result dicts keyed by the *same*
  cache key string the disk cache uses, so the two tiers can never
  disagree about identity. Repeat cells are served without touching the
  filesystem (the memory-speed path ``BENCH_service.json`` measures).
* :class:`SingleFlight` — collapses concurrent requests for one key
  into one computation. Many tenants asking for the same cold cell get
  exactly one simulation; everyone awaits the same future. This is the
  exactly-once property tests/service/test_cache_concurrency.py hammers.

Both live on the event loop: no locks, no thread-safety hedging —
mutation happens only between awaits. (The blocking work they guard is
pushed to threads by the server; these structures themselves are not
thread-safe and must not be shared across loops.)
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict


class LruResultTier:
    """Bounded mapping of cache key -> wire-ready result dict, LRU-evicted.

    Counters mirror the disk cache's vocabulary (``hits``/``misses``)
    plus the tier's own movement (``inserts``/``evictions``), so a fleet
    summary can sum the tiers without translation.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._records: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        record = self._records.get(key)
        if record is None:
            self.misses += 1
            return None
        self._records.move_to_end(key)
        self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        existing = self._records.get(key)
        if existing is not None:
            # Records are immutable facts of (trace, config, model) — a
            # re-put is the same bytes; just refresh recency.
            self._records.move_to_end(key)
            return
        while len(self._records) >= self.capacity:
            self._records.popitem(last=False)
            self.evictions += 1
        self._records[key] = record
        self.inserts += 1

    def __len__(self) -> int:
        return len(self._records)

    def counts(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "size": len(self._records),
            "capacity": self.capacity,
        }


class SingleFlight:
    """Per-key computation collapsing for coroutines on one event loop.

    ``run(key, thunk)`` executes ``thunk()`` if no computation for
    ``key`` is in flight, and otherwise awaits the in-flight one's
    future — so N concurrent callers cost one computation. A failed
    computation propagates its exception to every waiter and clears the
    key (the next caller retries fresh).
    """

    def __init__(self):
        self._inflight: dict[str, asyncio.Future] = {}
        self.coalesced = 0
        self.led = 0

    async def run(self, key: str, thunk):
        future = self._inflight.get(key)
        if future is not None:
            self.coalesced += 1
            return await asyncio.shield(future)
        self.led += 1
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            value = await thunk()
        except BaseException as exc:  # waiters get the leader's failure
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # mark retrieved even with no waiters
            raise
        else:
            if not future.cancelled():
                future.set_result(value)
            return value
        finally:
            del self._inflight[key]

    def counts(self) -> dict:
        return {"led": self.led, "coalesced": self.coalesced,
                "inflight": len(self._inflight)}
