"""Blocking client for the sweep service (and a background-server helper).

:class:`ServiceClient` is deliberately synchronous — a plain socket and
a line reader — because the callers are scripts, tests, the ``repro
submit`` CLI, and the load-generator benchmark, none of which want an
event loop of their own. One client = one connection = one tenant;
requests are answered in order, and ``event`` envelopes (fleet progress
from subscribed jobs) are collected into :attr:`events` as they arrive
interleaved with responses.

:func:`serve_background` boots a :class:`~repro.service.server.
SweepService` on its own thread-hosted event loop and returns a handle
with the bound port — the shape tests and benchmarks use to get a real
socket server without managing asyncio themselves.
"""

from __future__ import annotations

import asyncio
import socket
import threading

from ..api import schema


class ServiceError(RuntimeError):
    """The server answered with an ``error`` envelope."""


class ServiceClient:
    """One tenant's connection to a running sweep service."""

    def __init__(self, host: str, port: int, tenant: str = "anon",
                 timeout: float | None = 60.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.tenant = tenant
        self.events: list[dict] = []
        self.hello(tenant)

    # -- wire plumbing -------------------------------------------------------

    def _send(self, envelope: schema.Envelope) -> None:
        self.sock.sendall(schema.wire_encode(envelope).encode() + b"\n")

    def _recv(self) -> schema.Envelope:
        line = self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return schema.wire_decode(line)

    def request(self, request: schema.Request) -> schema.Envelope:
        """Send one typed request; return its response envelope.

        ``event`` envelopes arriving before the response are appended to
        :attr:`events` (their bodies: ``{"job", "tenant", "record"}``).
        An ``error`` envelope raises :class:`ServiceError`.
        """
        self._send(request.to_wire())
        while True:
            envelope = self._recv()
            if envelope.kind == "event":
                self.events.append(envelope.body)
                continue
            if envelope.kind == "error":
                raise ServiceError(envelope.body["error"])
            return envelope

    # -- typed conveniences (each returns the response body) -----------------

    def hello(self, tenant: str) -> dict:
        return self.request(schema.HelloRequest(tenant=tenant)).body

    def simulate(self, **knobs) -> dict:
        return self.request(schema.SimulateRequest(**knobs)).body

    def sweep(self, **knobs) -> dict:
        """A grid sweep; the body is exactly ``SweepRun.to_payload()`` —
        dump it with ``indent=2, sort_keys=True`` and you have the same
        bytes ``repro sweep --out`` writes (the golden-diff contract)."""
        return self.request(schema.SweepRequest(**knobs)).body

    def trace(self, **knobs) -> dict:
        return self.request(schema.TraceRequest(**knobs)).body

    def precompile(self, **knobs) -> dict:
        return self.request(schema.PrecompileRequest(**knobs)).body

    def presets(self, full: bool = False) -> list:
        return self.request(schema.PresetsRequest(full=full)).body["presets"]

    def status(self) -> dict:
        return self.request(schema.StatusRequest()).body

    def subscribe(self, progress: bool = True) -> dict:
        return self.request(schema.SubscribeRequest(progress=progress)).body

    def shutdown(self) -> dict:
        return self.request(schema.ShutdownRequest()).body

    def progress_records(self, job: int) -> list[dict]:
        """The fleet progress records received for one job, in order —
        the per-job stream :func:`repro.obs.fleet.validate_progress_records`
        validates (seq numbers are per-job)."""
        return [event["record"] for event in self.events
                if event["job"] == job]

    def close(self) -> None:
        try:
            self.reader.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServiceHandle:
    """A service running on a background thread's event loop."""

    def __init__(self, service, thread: threading.Thread, loop, port: int):
        self.service = service
        self.thread = thread
        self.loop = loop
        self.port = port

    def client(self, tenant: str = "anon", **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, tenant=tenant, **kwargs)

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.service.stop)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_background(service=None, host: str = "127.0.0.1", port: int = 0,
                     **service_kwargs) -> ServiceHandle:
    """Boot a sweep service on a daemon thread; returns its handle.

    Builds a :class:`~repro.service.server.SweepService` from
    ``service_kwargs`` when none is passed. The handle's ``port`` is the
    bound (ephemeral by default) port; ``stop()`` shuts the loop down.
    """
    from .server import SweepService

    if service is None:
        service = SweepService(**service_kwargs)
    started = threading.Event()
    boot: dict = {}

    def run() -> None:
        async def main() -> None:
            await service.start(host, port)
            boot["loop"] = asyncio.get_running_loop()
            boot["port"] = service.port
            started.set()
            await service.serve_until_stopped()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=60.0):
        raise RuntimeError("service failed to start within 60s")
    return ServiceHandle(service, thread, boot["loop"], boot["port"])
