"""Off-chip memory bus model with occupancy and queueing.

Every off-chip transfer (data fill, writeback, counter block, MAC block,
Merkle-tree node) occupies the bus for ``cycles_per_block`` cycles. The
bus serializes transfers: a request issued while the bus is busy queues
behind earlier traffic, which is how integrity-verification traffic slows
down demand fetches in the timing model (Figure 10b measures the
resulting utilization).

Time on the bus is a **float**, matching the simulator's clock (which
advances by fractional instruction gaps): request timestamps, busy and
queue cycles are all float-valued. Transfer *durations* stay integral
(``round(cycles_per_block * fraction)``) so sub-block transfers quantize
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# The paper's FSB figure (64B over ~4.6GB/s seen from a 2GHz core); the
# simulator always passes MachineConfig.bus_cycles_per_block — this default
# only serves standalone bus experiments.
DEFAULT_CYCLES_PER_BLOCK = 28  # repro: allow(SIM001)


@dataclass(slots=True)
class BusStats:
    """Aggregate bus activity: transfer counts, busy and queue cycles."""

    transfers: int = 0
    busy_cycles: float = 0.0
    queue_cycles: float = 0.0
    transfers_by_kind: dict = field(default_factory=dict)

    def utilization(self, total_cycles: float) -> float:
        """Fraction of ``total_cycles`` the bus was busy (clamped to 1)."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)


class MemoryBus:
    """A single shared channel between the processor chip and DRAM."""

    __slots__ = ("cycles_per_block", "_free_at", "stats", "tracer")

    def __init__(self, cycles_per_block: int = DEFAULT_CYCLES_PER_BLOCK):
        self.cycles_per_block = cycles_per_block
        self._free_at = 0.0
        self.stats = BusStats()
        # Optional observability tap: when a repro.obs EventTracer is
        # attached (by SimHooks during a traced run), every grant emits a
        # bus_grant event. None by default — one comparison per request.
        self.tracer = None

    def request(self, cycle: float, kind: str = "data", fraction: float = 1.0) -> tuple[float, float]:
        """Schedule one transfer wishing to start at ``cycle``.

        ``fraction`` scales the occupancy for sub-block transfers (e.g. a
        single 16-byte MAC read is a quarter of a 64-byte line). Returns
        ``(start_cycle, end_cycle)``: the transfer occupies the bus from
        ``start_cycle`` (>= cycle, after queueing) to ``end_cycle``.
        """
        duration = max(1, round(self.cycles_per_block * fraction))
        start = self._free_at if self._free_at > cycle else cycle
        end = start + duration
        self._free_at = end
        stats = self.stats
        stats.transfers += 1
        stats.busy_cycles += duration
        stats.queue_cycles += start - cycle
        stats.transfers_by_kind[kind] = stats.transfers_by_kind.get(kind, 0) + 1
        if self.tracer is not None:
            self.tracer.emit("bus_grant", ts=start, kind=kind, dur=duration,
                             queued=start - cycle)
        return start, end

    def credit(
        self,
        transfers: int,
        busy_cycles: float,
        queue_cycles: float,
        by_kind: dict,
        free_at: float,
    ) -> None:
        """Settle a batch of transfers accounted externally.

        The :mod:`repro.fastpath` engine models bus occupancy with the
        same quantized-duration arithmetic as :meth:`request` but keeps
        the running tallies (and the bus-free timestamp) in local
        variables; it settles them here in one call at end of run.
        Routing the settlement through the bus keeps every ``stats``
        write inside this module (the OBS001 invariant) and keeps
        pull-model gauges bound over ``self.stats`` truthful.
        """
        stats = self.stats
        stats.transfers += transfers
        stats.busy_cycles += busy_cycles
        stats.queue_cycles += queue_cycles
        for kind, count in by_kind.items():
            stats.transfers_by_kind[kind] = (
                stats.transfers_by_kind.get(kind, 0) + count
            )
        # Monotonic clamp: a batch settled after interleaved request()
        # traffic (or out of order) must never move bus time backwards
        # behind already-settled transfers.
        if free_at > self._free_at:
            self._free_at = free_at

    @property
    def free_at(self) -> float:
        return self._free_at

    def rebase(self, cycle: float = 0.0) -> None:
        """Re-anchor bus time at ``cycle``, keeping accumulated statistics.

        A :class:`~repro.sim.simulator.TimingSimulator` restarts its clock
        at 0.0 on every ``run()``; without rebasing, ``_free_at`` would
        still hold the previous trace's final timestamp and every early
        transfer of the new run would queue behind phantom traffic.
        """
        self._free_at = cycle

    def reset_stats(self) -> None:
        """Zero the statistics without disturbing bus time.

        The sanctioned stats-reset entry point (the OBS001 lint rule
        flags outside code replacing ``bus.stats`` directly): observers
        bind pull-model gauges over ``self.stats`` through this object,
        and those bindings survive because the swap happens here.
        """
        self.stats = BusStats()

    def reset(self) -> None:
        self._free_at = 0.0
        self.stats = BusStats()
