"""Main memory models.

Two views of DRAM exist in this library:

* :class:`DramTiming` — the latency model used by the trace-driven timing
  simulator (fixed 200-cycle access latency, paper section 6).
* :class:`BlockMemory` — a functional byte store, block-granular and
  sparse, used by the functional secure-memory system. It is deliberately
  *attackable*: ``raw_read``/``raw_write`` bypass the processor and model
  a physical adversary or a DMA device touching DRAM directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layout import BLOCK_SIZE, block_address


@dataclass
class DramTiming:
    """Fixed-latency DRAM: the timing simulator's view of main memory."""

    # Paper section 6's 200-cycle DRAM; the timing simulator overrides this
    # with MachineConfig.memory_latency — the default is for standalone use.
    access_latency: int = 200  # repro: allow(SIM001)
    reads: int = 0
    writes: int = 0

    def read(self) -> int:
        self.reads += 1
        return self.access_latency

    def write(self) -> int:
        self.writes += 1
        return self.access_latency


class BlockMemory:
    """A sparse, block-granular byte store (functional main memory or disk).

    Unwritten blocks read as zeros. All accesses must be block-aligned and
    block-sized — the memory controller above it deals in whole cache
    lines, exactly like a real DRAM channel.
    """

    def __init__(self, size_bytes: int, name: str = "dram"):
        if size_bytes % BLOCK_SIZE:
            raise ValueError("memory size must be a whole number of blocks")
        self.size_bytes = size_bytes
        self.name = name
        self._blocks: dict[int, bytes] = {}
        self._intercepts: dict[int, bytes] = {}
        self.access_log: list | None = None  # set to [] to record (op, addr)

    def _check(self, address: int) -> int:
        if address % BLOCK_SIZE:
            raise ValueError(f"unaligned block address {address:#x}")
        if not 0 <= address < self.size_bytes:
            raise IndexError(f"address {address:#x} outside {self.name} of {self.size_bytes:#x} bytes")
        return address

    def read_block(self, address: int) -> bytes:
        self._check(address)
        if self.access_log is not None:
            self.access_log.append(("r", address))
        intercepted = self._intercepts.pop(address, None)
        if intercepted is not None:
            return intercepted  # bus MITM: stored content untouched
        return self._blocks.get(address, bytes(BLOCK_SIZE))

    def write_block(self, address: int, data: bytes) -> None:
        self._check(address)
        if len(data) != BLOCK_SIZE:
            raise ValueError(f"block write must be {BLOCK_SIZE} bytes, got {len(data)}")
        if self.access_log is not None:
            self.access_log.append(("w", address))
        self._blocks[address] = bytes(data)

    # -- whole-memory images (hibernation) ----------------------------------

    def snapshot_blocks(self) -> dict[int, bytes]:
        """Copy of the populated blocks — the DRAM image a hibernating
        machine writes to disk (attacker-accessible while it sleeps)."""
        return dict(self._blocks)

    def restore_blocks(self, image: dict[int, bytes]) -> None:
        """Replace all content with a previously captured image."""
        self._blocks = dict(image)

    # -- adversary / DMA interface -----------------------------------------
    # These do NOT go through the secure processor (and are not recorded
    # in the access log — they are not bus transactions of the chip).

    def raw_read(self, address: int) -> bytes:
        self._check(address)
        return self._blocks.get(address, bytes(BLOCK_SIZE))

    def raw_write(self, address: int, data: bytes) -> None:
        self._check(address)
        if len(data) != BLOCK_SIZE:
            raise ValueError(f"block write must be {BLOCK_SIZE} bytes, got {len(data)}")
        self._blocks[address] = bytes(data)

    def intercept_next_read(self, address: int, payload: bytes | None = None) -> None:
        """Bus man-in-the-middle: the *next* processor read of this block
        returns ``payload`` (default: bit-flipped content) while the
        stored copy stays intact — a transient injection on the wires,
        as opposed to rewriting DRAM."""
        aligned = block_address(address)
        current = self.raw_read(aligned)
        if payload is None:
            payload = bytes(b ^ 0xFF for b in current)
        if len(payload) != BLOCK_SIZE:
            raise ValueError(f"payload must be {BLOCK_SIZE} bytes")
        self._intercepts[aligned] = bytes(payload)

    def corrupt(self, address: int, new_bytes: bytes | None = None) -> bytes:
        """Adversarially replace the block at ``address``.

        If ``new_bytes`` is omitted the block is XOR-flipped so it is
        guaranteed to differ. Returns the previous content.
        """
        aligned = block_address(address)
        old = self.read_block(aligned)
        if new_bytes is None:
            new_bytes = bytes(b ^ 0xFF for b in old)
        self.write_block(aligned, new_bytes)
        return old

    def populated_blocks(self) -> int:
        return len(self._blocks)
