"""Set-associative write-back caches with LRU replacement.

Used for the L1 I/D caches, the unified L2, and the 32KB counter cache
(paper section 6). Lines are tagged with a *content class* so the shared
L2 can report how much of its capacity holds data versus Merkle-tree
nodes — the cache-pollution measurement behind Figure 9.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..core import sanitizer

# Content classes for cache lines.
DATA = "data"
CODE = "code"
COUNTER = "counter"
MERKLE = "merkle"
MAC = "mac"

LINE_CLASSES = (DATA, CODE, COUNTER, MERKLE, MAC)


@dataclass(slots=True)
class Eviction:
    """A victim line pushed out of the cache by an insertion."""

    block: int  # block index (address // block_size)
    dirty: bool
    line_class: str


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/writeback counters plus time-weighted occupancy sums."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    hits_by_class: dict = field(default_factory=dict)
    misses_by_class: dict = field(default_factory=dict)
    # Time-weighted occupancy accounting (advanced by ``tick_occupancy``).
    occupancy_samples: int = 0
    occupancy_by_class: dict = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def occupancy_fraction(self, line_class: str) -> float:
        """Average fraction of cache lines holding ``line_class`` content."""
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_by_class.get(line_class, 0) / self.occupancy_samples


class SetAssociativeCache:
    """A write-back, write-allocate, set-associative cache with true LRU.

    Addresses are byte addresses; internally the cache works on block
    indices. The cache stores only tags and per-line metadata (the
    functional system keeps payloads in its memory model, so the cache is
    purely a presence/recency structure usable by both systems).
    """

    __slots__ = (
        "name",
        "size_bytes",
        "assoc",
        "block_size",
        "num_sets",
        "num_lines",
        "_sets",
        "_class_lines",
        "_inserts_since_recount",
        "stats",
    )

    def __init__(self, size_bytes: int, assoc: int, block_size: int = 64, name: str = "cache"):
        if size_bytes % (assoc * block_size):
            raise ValueError("cache size must be divisible by assoc * block_size")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_size = block_size
        self.num_sets = size_bytes // (assoc * block_size)
        self.num_lines = self.num_sets * assoc
        # Each set maps block_index -> (dirty, line_class); OrderedDict keeps
        # LRU order with the most recently used entry last.
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self._class_lines: dict[str, int] = {}
        self._inserts_since_recount = 0
        self.stats = CacheStats()

    # -- internal helpers ---------------------------------------------------

    def _set_for(self, block: int) -> OrderedDict:
        return self._sets[block % self.num_sets]

    # -- statistics ---------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the statistics, keeping contents and LRU state warm.

        The sanctioned stats-reset entry point (the OBS001 lint rule
        flags outside code replacing ``cache.stats`` directly): observers
        bind pull-model gauges over ``self.stats`` through this object,
        and those bindings survive because the swap happens here.
        """
        self.stats = CacheStats()

    def credit_demand(self, hits: int, misses: int, writebacks: int = 0) -> None:
        """Credit batched hit/miss/writeback tallies to the statistics.

        The :mod:`repro.fastpath` loop accumulates per-access outcomes in
        local variables and settles them here in one call; routing the
        settlement through the owning cache keeps every ``stats`` write
        inside this module (the OBS001 invariant) and keeps pull-model
        gauges bound over ``self.stats`` truthful at snapshot time.
        """
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.writebacks += writebacks

    def credit_occupancy(self, samples: int, by_class: dict) -> None:
        """Credit batched occupancy samples to the statistics.

        The compiled trace replay (:mod:`repro.fastpath.compiled`)
        records the periodic occupancy ticks during lowering and settles
        the measured interval's totals here in one call — ``samples``
        line-samples plus per-class line counts (with free lines already
        folded into the DATA class, exactly as :meth:`tick_occupancy`
        folds them). Routing through the owning cache preserves the
        OBS001 invariant, as with :meth:`credit_demand`.
        """
        stats = self.stats
        stats.occupancy_samples += samples
        for line_class, count in by_class.items():
            stats.occupancy_by_class[line_class] = (
                stats.occupancy_by_class.get(line_class, 0) + count
            )

    def restore_state(self, sets, class_lines: dict) -> None:
        """Install recorded contents and LRU order, leaving stats alone.

        The sanctioned hand-off from the compiled trace replay: the
        lowering evolves a model of this cache off the clock and records
        where every line ended up; installing that snapshot afterwards
        makes warm reuse and the live ``lines.*`` gauges behave exactly
        as if the per-event engine had run. ``sets`` is one iterable of
        ``(block, (dirty, line_class))`` items per set, LRU first —
        the same shape ``OrderedDict(items)`` rebuilds.
        """
        if len(sets) != self.num_sets:
            raise ValueError(
                f"snapshot has {len(sets)} sets, cache has {self.num_sets}"
            )
        self._sets = [OrderedDict(items) for items in sets]
        self._class_lines = dict(class_lines)

    # -- core operations ----------------------------------------------------

    def lookup(self, address: int, write: bool = False) -> bool:
        """Access the block containing ``address``. Returns hit/miss.

        On a hit the line becomes most-recently-used and, for writes,
        dirty. On a miss the cache is *not* modified — callers decide
        whether to ``insert`` (modelling fill policy explicitly).
        """
        block = address // self.block_size
        cache_set = self._sets[block % self.num_sets]
        entry = cache_set.get(block)
        if entry is None:
            self.stats.misses += 1
            return False
        cache_set.move_to_end(block)
        if write and not entry[0]:
            cache_set[block] = (True, entry[1])
        self.stats.hits += 1
        return True

    def insert(self, address: int, line_class: str = DATA, dirty: bool = False) -> Eviction | None:
        """Fill the block containing ``address``, evicting LRU if needed.

        Returns the eviction (if a victim was displaced) so the caller can
        model the writeback.
        """
        block = address // self.block_size
        cache_set = self._sets[block % self.num_sets]
        entry = cache_set.get(block)
        if entry is not None:
            # Refill of a present line: merge dirty bit, refresh recency.
            cache_set[block] = (entry[0] or dirty, line_class)
            cache_set.move_to_end(block)
            if entry[1] != line_class:
                self._class_lines[entry[1]] = self._class_lines.get(entry[1], 1) - 1
                self._class_lines[line_class] = self._class_lines.get(line_class, 0) + 1
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            vblock, (vdirty, vclass) = cache_set.popitem(last=False)
            self._class_lines[vclass] = self._class_lines.get(vclass, 1) - 1
            if vdirty:
                self.stats.writebacks += 1
            victim = Eviction(block=vblock, dirty=vdirty, line_class=vclass)
        cache_set[block] = (dirty, line_class)
        self._class_lines[line_class] = self._class_lines.get(line_class, 0) + 1
        if sanitizer.enabled("cache_inclusion"):
            self._sanitize_insert(cache_set)
        return victim

    def _sanitize_insert(self, cache_set: OrderedDict) -> None:
        """Armed-only bookkeeping checks after a fill (see repro.core.sanitizer).

        The set-size check runs on every insert; the full class-tally
        recount (which Figure 9's occupancy fractions depend on) only
        every Nth insert — it walks the whole cache.
        """
        sanitizer.check(
            len(cache_set) <= self.assoc,
            f"{self.name}: set holds {len(cache_set)} lines, associativity is {self.assoc}",
        )
        self._inserts_since_recount += 1
        if self._inserts_since_recount >= max(1, sanitizer.spot_interval()):
            self._inserts_since_recount = 0
            recount: dict[str, int] = {}
            for other_set in self._sets:
                for _, line_class in other_set.values():
                    recount[line_class] = recount.get(line_class, 0) + 1
            tallies = {k: v for k, v in self._class_lines.items() if v}
            sanitizer.check(
                recount == tallies,
                f"{self.name}: class tallies {tallies} disagree with recount {recount}",
            )

    def contains(self, address: int) -> bool:
        """Presence test without touching recency or stats."""
        block = address // self.block_size
        return block in self._sets[block % self.num_sets]

    def invalidate(self, address: int) -> bool:
        """Drop the block containing ``address`` (no writeback). True if present."""
        block = address // self.block_size
        cache_set = self._sets[block % self.num_sets]
        entry = cache_set.pop(block, None)
        if entry is None:
            return False
        self._class_lines[entry[1]] = self._class_lines.get(entry[1], 1) - 1
        return True

    def invalidate_range(self, start_address: int, length: int) -> int:
        """Invalidate every block overlapping [start, start+length). Returns count.

        Used when a page is swapped out and its Merkle subtree must be
        forced out of on-chip caches (paper section 5.1).
        """
        first = start_address // self.block_size
        last = (start_address + length - 1) // self.block_size
        dropped = 0
        for block in range(first, last + 1):
            if self.invalidate(block * self.block_size):
                dropped += 1
        return dropped

    def flush(self) -> list[Eviction]:
        """Empty the cache, returning dirty victims in no particular order.

        Dirty victims count toward ``stats.writebacks``, exactly as LRU
        evictions on the ``insert`` path do — a flush pushes the same
        lines off-chip.
        """
        dirty = []
        for cache_set in self._sets:
            for block, (is_dirty, line_class) in cache_set.items():
                if is_dirty:
                    dirty.append(Eviction(block=block, dirty=True, line_class=line_class))
            cache_set.clear()
        self.stats.writebacks += len(dirty)
        self._class_lines.clear()
        return dirty

    def clear(self) -> None:
        """Return the cache to its just-constructed (cold) state.

        Unlike :meth:`flush`, this models no memory traffic: contents,
        LRU order, class tallies, and statistics all vanish without a
        single writeback being charged. It exists for sanctioned warm
        machine reuse (:meth:`repro.sim.simulator.TimingSimulator.reset_cold`),
        where a pooled simulator must be indistinguishable from a fresh
        one — byte-identical results are the contract, so nothing the
        timing model reads may survive.
        """
        for cache_set in self._sets:
            cache_set.clear()
        self._class_lines.clear()
        self._inserts_since_recount = 0
        self.stats = CacheStats()

    # -- occupancy accounting -------------------------------------------------

    def lines_of_class(self, line_class: str) -> int:
        """Lines currently holding content of ``line_class``."""
        return self._class_lines.get(line_class, 0)

    @property
    def occupied_lines(self) -> int:
        return sum(self._class_lines.values())

    def tick_occupancy(self) -> None:
        """Record one occupancy sample (fractions of total capacity).

        Empty (never-filled) lines are counted toward the DATA class, as
        in the paper's measurement where "fraction of L2 occupied by data"
        means everything that is not a Merkle-tree node.
        """
        stats = self.stats
        stats.occupancy_samples += self.num_lines
        for line_class, count in self._class_lines.items():
            stats.occupancy_by_class[line_class] = (
                stats.occupancy_by_class.get(line_class, 0) + count
            )
        free = self.num_lines - self.occupied_lines
        if free:
            stats.occupancy_by_class[DATA] = stats.occupancy_by_class.get(DATA, 0) + free
