"""Address and block geometry shared by the functional and timing systems.

The paper's machine uses 64-byte cache/memory blocks and 4-Kbyte pages, so
a page holds 64 blocks and a 64-byte *counter block* (one 64-bit LPID +
64 x 7-bit minor counters) describes exactly one page (section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

BLOCK_SIZE = 64  # bytes per cache/memory block
PAGE_SIZE = 4096  # bytes per virtual-memory page
BLOCKS_PER_PAGE = PAGE_SIZE // BLOCK_SIZE  # 64
CHUNK_SIZE = 16  # bytes per encryption chunk (AES block)
CHUNKS_PER_BLOCK = BLOCK_SIZE // CHUNK_SIZE  # 4


def round_to_blocks(size: int) -> int:
    """Round a byte size up to a whole number of blocks."""
    return (size + BLOCK_SIZE - 1) // BLOCK_SIZE * BLOCK_SIZE


def block_index(address: int) -> int:
    """Index of the 64-byte block containing ``address``."""
    return address // BLOCK_SIZE


def block_address(address: int) -> int:
    """Address of the first byte of the block containing ``address``."""
    return address & ~(BLOCK_SIZE - 1)


def block_offset(address: int) -> int:
    return address & (BLOCK_SIZE - 1)


def page_index(address: int) -> int:
    """Index of the 4KB page containing ``address``."""
    return address // PAGE_SIZE


def page_address(address: int) -> int:
    return address & ~(PAGE_SIZE - 1)


def page_offset(address: int) -> int:
    return address & (PAGE_SIZE - 1)


def block_in_page(address: int) -> int:
    """Index (0..63) of the block within its page."""
    return page_offset(address) // BLOCK_SIZE


def chunk_id(address: int) -> int:
    """Index (0..3) of the 16-byte chunk within its block."""
    return block_offset(address) // CHUNK_SIZE


@dataclass(frozen=True)
class Geometry:
    """Sizes of the protected memories.

    ``swap_bytes`` defaults to the physical size, matching the Table 2
    storage model (see DESIGN.md section 5).
    """

    physical_bytes: int = 1 << 30  # 1 GB main memory (paper section 6)
    swap_bytes: int | None = None

    def __post_init__(self):
        if self.physical_bytes % PAGE_SIZE:
            raise ValueError("physical memory must be a whole number of pages")
        if self.swap_bytes is None:
            object.__setattr__(self, "swap_bytes", self.physical_bytes)
        if self.swap_bytes % PAGE_SIZE:
            raise ValueError("swap memory must be a whole number of pages")

    @property
    def physical_pages(self) -> int:
        return self.physical_bytes // PAGE_SIZE

    @property
    def physical_blocks(self) -> int:
        return self.physical_bytes // BLOCK_SIZE

    @property
    def swap_pages(self) -> int:
        return self.swap_bytes // PAGE_SIZE
