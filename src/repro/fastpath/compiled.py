"""The trace pre-compiler: lower once, replay per configuration.

The timing model's event loop interleaves two very different kinds of
work. The *cache state machine* — L2/counter/node lookups, LRU motion,
evictions, the metadata traffic they trigger — depends only on the
access sequence and the machine's traffic-shaping geometry (cache
shapes, scheme flags, metadata layout). The *clock arithmetic* — bus
queueing, exposed decrypt latency, stall overlap — depends on the
timing parameters (latencies, bus speed, issue width, warmup) but never
feeds back into a single cache decision. :func:`lower` exploits that
split: it runs the state machine once, off the clock, and records its
complete observable behaviour as a :class:`CompiledTrace` — per-event
hit/miss flags, each miss's bus-transfer program (interned patterns of
transfer kinds), stall and verification markers, per-miss statistics
deltas, L2 occupancy samples, and the final cache contents.

:func:`execute_compiled` then replays a lowering under any timing
parameters: a lean sequential loop reproduces the reference clock
arithmetic operation for operation (float rounding is order-sensitive,
so the per-event additions are replayed, never re-associated), while
every order-insensitive statistic settles through NumPy slice sums and
the owners' batch-credit APIs. Results are byte-identical to the
reference loop — the committed figure-6 golden and the equivalence
property tests pin this.

The lowering is memoized on the :class:`~repro.sim.trace.Trace` keyed
by the traffic-shaping geometry, so it is paid once and replayed by
every run that shares it: repeated runs of one cell, golden
regeneration, and `repro.evalx` sweeps that vary only timing knobs
(memory/AES/MAC latency, bus speed, issue width, overlap, warmup,
precise verification) replay the same artifact — the multiplicative
grid win. A replay requires cold caches (it installs the recorded final
contents afterwards, so back-to-back warm ``run()`` calls fall back to
the per-event engine) and, like every fast path, steps aside when the
runtime sanitizer is armed.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..core import sanitizer
from ..mem.cache import CODE, COUNTER, DATA, MAC, MERKLE
from ..mem.layout import BLOCK_SIZE

# Transfer-kind codes. Each miss's bus traffic is recorded as a tuple of
# these (the *pattern*, excluding the leading demand fetch, which every
# miss issues first). Codes map to (reported kind, duration class):
# everything moves a full block except the uncached-MAC transfers.
K_DATA = 0
K_COUNTER = 1
K_MERKLE = 2
K_MAC = 3        # cached data MAC: full block
K_MAC_FRAC = 4   # uncached data MAC read: mac_bytes only
K_DATA_WB = 5
K_COUNTER_WB = 6
K_MERKLE_WB = 7
K_MAC_WB = 8     # uncached data MAC read-modify-write: mac_bytes only

_N_KINDS = 9
# Reported-kind settlement order matches the per-event engine's flush.
_KIND_SETTLEMENT = (
    ("data", (K_DATA,)),
    ("counter", (K_COUNTER,)),
    ("merkle", (K_MERKLE,)),
    ("mac", (K_MAC, K_MAC_FRAC)),
    ("data_wb", (K_DATA_WB,)),
    ("counter_wb", (K_COUNTER_WB,)),
    ("merkle_wb", (K_MERKLE_WB,)),
    ("mac_wb", (K_MAC_WB,)),
)

# Columns of the per-miss statistics-delta matrix (metadata traffic
# only; the demand hit/miss itself is derived from the miss flags).
_L2H, _L2M, _L2WB = 0, 1, 2
_CCH, _CCM, _CCWB = 3, 4, 5
_TH, _TM, _TWB = 6, 7, 8
_CA, _CM = 9, 10
_N_META = 11

_MEMO_CAPACITY = 2  # lowerings kept per Trace (sweeps replay one)


def classification_key(sim, sample_period: int) -> tuple:
    """Everything that can change the lowering of a trace for ``sim``.

    Timing parameters (latencies, bus speed, issue width, overlap,
    warmup, precise verification) are deliberately absent: they shape
    the clock, not the traffic, so runs differing only in them replay
    one artifact.
    """
    l2 = sim.l2
    cc = sim.counter_cache
    nc = sim.node_cache
    uses_cc = sim.uses_counter_cache
    return (
        "lowering-v1",
        sample_period,
        (l2.num_sets, l2.assoc, l2.block_size),
        (cc.num_sets, cc.assoc),
        None if nc is None else (nc.num_sets, nc.assoc),
        uses_cc,
        sim._cb_span if uses_cc else 0,
        sim._ctr_base if uses_cc else 0,
        sim._walks_tree,
        tuple(sim._walk_bases),
        sim._arity,
        sim._covered_start,
        sim._tree_covers_data,
        sim._uses_data_macs,
        sim._cache_data_macs,
        sim._mac_base,
        sim._mac_bytes,
    )


class CompiledTrace:
    """One trace lowered for one traffic-shaping geometry.

    Immutable after :func:`lower` builds it; the per-timing-parameter
    binding memos (``pres``/``prog``/``busy_per_miss``) cache derived
    forms keyed by the timing knobs they depend on.
    """

    __slots__ = (
        "n",
        "miss_flags",
        "miss_cum",
        "pattern_list",
        "pat_idx",
        "cc_stalls",
        "iflags",
        "kcounts",
        "transfers",
        "metas",
        "ticks",
        "gaps",
        "final_l2",
        "final_cc",
        "final_node",
        "_pres_memo",
        "_prog_memo",
        "_busy_memo",
    )

    def __init__(self, n, miss_flags, miss_cum, pattern_list, pat_idx,
                 cc_stalls, iflags, kcounts, metas, ticks, gaps,
                 final_l2, final_cc, final_node):
        self.n = n
        self.miss_flags = miss_flags
        self.miss_cum = miss_cum
        self.pattern_list = pattern_list
        self.pat_idx = pat_idx
        self.cc_stalls = cc_stalls
        self.iflags = iflags
        self.kcounts = kcounts
        self.transfers = kcounts.sum(axis=1, dtype=np.int64)
        self.metas = metas
        self.ticks = ticks
        self.gaps = gaps
        self.final_l2 = final_l2
        self.final_cc = final_cc
        self.final_node = final_node
        self._pres_memo = {}
        self._prog_memo = {}
        self._busy_memo = {}

    @property
    def misses(self) -> int:
        return len(self.pat_idx)

    def pres(self, issue_width: int) -> list:
        """Per-event clock increments ``gap / issue`` as Python floats.

        IEEE-754 division of exactly-representable integers matches the
        reference loop's inline ``gap / issue`` bit for bit.
        """
        cached = self._pres_memo.get(issue_width)
        if cached is None:
            cached = (self.gaps / issue_width).tolist()
            self._pres_memo[issue_width] = cached
        return cached

    def _durations(self, full_dur: int, frac_dur: int) -> tuple:
        durs = [full_dur] * _N_KINDS
        durs[K_MAC_FRAC] = frac_dur
        durs[K_MAC_WB] = frac_dur
        return tuple(durs)

    def prog(self, full_dur: int, frac_dur: int) -> list:
        """The per-miss replay program ``(rest_durations, stall, ifetch)``.

        ``rest_durations`` is the event's bus transfers after the demand
        fetch, as duration tuples (interned per pattern); ``stall`` marks
        a demand counter-read miss (the counter fetch is then always the
        first rest transfer); ``ifetch`` marks a nonzero integrity fetch
        count for precise verification.
        """
        key = (full_dur, frac_dur)
        cached = self._prog_memo.get(key)
        if cached is None:
            durs = self._durations(full_dur, frac_dur)
            pattern_durs = [tuple(durs[k] for k in pattern)
                            for pattern in self.pattern_list]
            cached = list(zip((pattern_durs[i] for i in self.pat_idx),
                              self.cc_stalls, self.iflags))
            self._prog_memo[key] = cached
        return cached

    def busy_per_miss(self, full_dur: int, frac_dur: int) -> np.ndarray:
        """Total bus occupancy cycles of each miss event (int64)."""
        key = (full_dur, frac_dur)
        cached = self._busy_memo.get(key)
        if cached is None:
            durvec = np.asarray(self._durations(full_dur, frac_dur),
                                dtype=np.int64)
            cached = self.kcounts @ durvec
            self._busy_memo[key] = cached
        return cached


def lower(sim, trace, sample_period: int) -> CompiledTrace:
    """Run the cache state machine once and record its behaviour.

    The state transitions transliterate the per-event engine's inlined
    miss path (`repro.fastpath.engine._make_miss_engine`) — which itself
    mirrors ``TimingSimulator._miss`` and its helpers operation for
    operation — with every bus request and statistics delta recorded
    instead of timed.
    """
    decoded = trace.decoded()
    ops = decoded.ops
    addresses = decoded.addresses

    l2 = sim.l2
    counter_cache = sim.counter_cache
    node_cache = sim.node_cache

    bs = BLOCK_SIZE
    demand_block_size = l2.block_size
    uses_cc = sim.uses_counter_cache
    walks_tree = sim._walks_tree
    tree_covers_data = sim._tree_covers_data
    uses_data_macs = sim._uses_data_macs
    cache_data_macs = sim._cache_data_macs
    walk_bases = tuple(sim._walk_bases)
    arity = sim._arity
    covered_start = sim._covered_start
    mac_base = sim._mac_base
    mac_bytes = sim._mac_bytes
    ctr_base = sim._ctr_base if uses_cc else 0
    cb_span = sim._cb_span if uses_cc else 1

    # Model cache state, evolved exactly as the engine evolves the real
    # caches (cold start — execute_compiled only replays onto cold ones).
    l2_nsets = l2.num_sets
    l2_assoc = l2.assoc
    l2_num_lines = l2.num_lines
    l2_sets = [OrderedDict() for _ in range(l2_nsets)]
    l2_classes: dict = {}
    cc_nsets = counter_cache.num_sets
    cc_assoc = counter_cache.assoc
    cc_sets = [OrderedDict() for _ in range(cc_nsets)]
    cc_classes: dict = {}
    if node_cache is not None:
        t_nsets = node_cache.num_sets
        t_assoc = node_cache.assoc
        t_sets = [OrderedDict() for _ in range(t_nsets)]
        t_classes: dict = {}
        tree_is_l2 = False
    else:
        t_nsets, t_assoc = l2_nsets, l2_assoc
        t_sets, t_classes = l2_sets, l2_classes
        tree_is_l2 = True

    # Recorded program.
    miss_flags: list = []
    pat_idx: list = []
    cc_stalls: list = []
    iflags: list = []
    kcount_rows: list = []
    meta_rows: list = []
    patterns: dict = {}
    pattern_list: list = []
    ticks: list = []

    # Per-miss recording slots, rebound by the demand loop per miss.
    row: list = []
    krow: list = []
    ev_kinds: list = []

    def tree_walk(covered_addr, make_dirty):
        index = (covered_addr - covered_start) // bs
        fetched = 0
        for base in walk_bases:
            index //= arity
            node_addr = base + index * bs
            block = node_addr // bs
            cache_set = t_sets[block % t_nsets]
            entry = cache_set.get(block)
            if entry is not None:
                cache_set.move_to_end(block)
                if make_dirty and not entry[0]:
                    cache_set[block] = (True, entry[1])
                row[_L2H if tree_is_l2 else _TH] += 1
                return fetched
            row[_L2M if tree_is_l2 else _TM] += 1
            krow[K_MERKLE] += 1
            ev_kinds.append(K_MERKLE)
            fetched += 1
            if len(cache_set) >= t_assoc:
                vblock, (vdirty, vclass) = cache_set.popitem(last=False)
                t_classes[vclass] = t_classes.get(vclass, 1) - 1
                if vdirty:
                    row[_L2WB if tree_is_l2 else _TWB] += 1
                    cache_set[block] = (make_dirty, MERKLE)
                    t_classes[MERKLE] = t_classes.get(MERKLE, 0) + 1
                    writeback(vblock, vclass)
                    continue
            cache_set[block] = (make_dirty, MERKLE)
            t_classes[MERKLE] = t_classes.get(MERKLE, 0) + 1
        return fetched

    def counter_access(addr, write):
        # Returns True when a demand *read* missed the counter cache —
        # the replay then exposes the counter-fetch stall.
        cb_addr = ctr_base + (addr // cb_span) * bs
        row[_CA] += 1
        block = cb_addr // bs
        cache_set = cc_sets[block % cc_nsets]
        entry = cache_set.get(block)
        if entry is not None:
            cache_set.move_to_end(block)
            if write and not entry[0]:
                cache_set[block] = (True, entry[1])
            row[_CCH] += 1
            return False
        row[_CCM] += 1
        row[_CM] += 1
        krow[K_COUNTER] += 1
        ev_kinds.append(K_COUNTER)
        if len(cache_set) >= cc_assoc:
            vblock, (vdirty, vclass) = cache_set.popitem(last=False)
            cc_classes[vclass] = cc_classes.get(vclass, 1) - 1
            cache_set[block] = (write, COUNTER)
            cc_classes[COUNTER] = cc_classes.get(COUNTER, 0) + 1
            if vdirty:
                row[_CCWB] += 1
                krow[K_COUNTER_WB] += 1
                ev_kinds.append(K_COUNTER_WB)
                if walks_tree:
                    tree_walk(vblock * bs, True)
        else:
            cache_set[block] = (write, COUNTER)
            cc_classes[COUNTER] = cc_classes.get(COUNTER, 0) + 1
        if walks_tree:
            tree_walk(cb_addr, False)
        return not write

    def mac_traffic(addr, write):
        mac_addr = mac_base + (addr // bs * mac_bytes // bs) * bs
        if cache_data_macs:
            block = mac_addr // bs
            cache_set = l2_sets[block % l2_nsets]
            entry = cache_set.get(block)
            if entry is not None:
                cache_set.move_to_end(block)
                if write and not entry[0]:
                    cache_set[block] = (True, entry[1])
                row[_L2H] += 1
                return 0
            row[_L2M] += 1
            krow[K_MAC] += 1
            ev_kinds.append(K_MAC)
            if len(cache_set) >= l2_assoc:
                vblock, (vdirty, vclass) = cache_set.popitem(last=False)
                l2_classes[vclass] = l2_classes.get(vclass, 1) - 1
                cache_set[block] = (write, MAC)
                l2_classes[MAC] = l2_classes.get(MAC, 0) + 1
                if vdirty:
                    row[_L2WB] += 1
                    writeback(vblock, vclass)
            else:
                cache_set[block] = (write, MAC)
                l2_classes[MAC] = l2_classes.get(MAC, 0) + 1
            return 1
        # Uncached MACs: only the MAC itself crosses the bus.
        if write:
            krow[K_MAC_WB] += 1
            ev_kinds.append(K_MAC_WB)
            return 0
        krow[K_MAC_FRAC] += 1
        ev_kinds.append(K_MAC_FRAC)
        return 1

    def writeback(vblock, vclass):
        if vclass == MERKLE or vclass == MAC:
            krow[K_MERKLE_WB] += 1
            ev_kinds.append(K_MERKLE_WB)
            return
        krow[K_DATA_WB] += 1
        ev_kinds.append(K_DATA_WB)
        addr = vblock * bs
        if uses_cc:
            counter_access(addr, True)
        if tree_covers_data:
            tree_walk(addr, True)
        elif uses_data_macs:
            mac_traffic(addr, True)

    countdown = sample_period
    for op, addr in zip(ops, addresses):
        write = op == 1
        block = addr // demand_block_size
        cache_set = l2_sets[block % l2_nsets]
        entry = cache_set.get(block)
        if entry is not None:
            cache_set.move_to_end(block)
            if write and not entry[0]:
                cache_set[block] = (True, entry[1])
            miss_flags.append(0)
        else:
            miss_flags.append(1)
            row = [0] * _N_META
            krow = [0] * _N_KINDS
            ev_kinds = []
            krow[K_DATA] += 1  # the demand fetch, always transfer 0
            stall = False
            integrity = 0
            if uses_cc:
                stall = counter_access(addr, False)
            if tree_covers_data:
                integrity = tree_walk(addr, False)
            elif uses_data_macs:
                integrity = mac_traffic(addr, False)
            # insert(addr, DATA, dirty=write) into the L2
            dblock = addr // bs
            dset = l2_sets[dblock % l2_nsets]
            dentry = dset.get(dblock)
            if dentry is not None:
                # Refill of a present line (a metadata insert raced the fill).
                dset[dblock] = (dentry[0] or write, DATA)
                dset.move_to_end(dblock)
                if dentry[1] != DATA:
                    l2_classes[dentry[1]] = l2_classes.get(dentry[1], 1) - 1
                    l2_classes[DATA] = l2_classes.get(DATA, 0) + 1
            elif len(dset) >= l2_assoc:
                vblock, (vdirty, vclass) = dset.popitem(last=False)
                l2_classes[vclass] = l2_classes.get(vclass, 1) - 1
                dset[dblock] = (write, DATA)
                l2_classes[DATA] = l2_classes.get(DATA, 0) + 1
                if vdirty:
                    row[_L2WB] += 1
                    writeback(vblock, vclass)
            else:
                dset[dblock] = (write, DATA)
                l2_classes[DATA] = l2_classes.get(DATA, 0) + 1

            pattern = tuple(ev_kinds)
            idx = patterns.get(pattern)
            if idx is None:
                idx = patterns[pattern] = len(pattern_list)
                pattern_list.append(pattern)
            pat_idx.append(idx)
            cc_stalls.append(1 if stall else 0)
            iflags.append(1 if integrity else 0)
            kcount_rows.append(krow)
            meta_rows.append(row)
        countdown -= 1
        if countdown == 0:
            countdown = sample_period
            free = l2_num_lines - sum(l2_classes.values())
            ticks.append([
                l2_classes.get(DATA, 0) + free,
                l2_classes.get(CODE, 0),
                l2_classes.get(COUNTER, 0),
                l2_classes.get(MERKLE, 0),
                l2_classes.get(MAC, 0),
            ])

    m = len(pat_idx)
    return CompiledTrace(
        n=len(miss_flags),
        miss_flags=miss_flags,
        miss_cum=np.cumsum(np.asarray(miss_flags, dtype=np.int64)),
        pattern_list=pattern_list,
        pat_idx=pat_idx,
        cc_stalls=cc_stalls,
        iflags=iflags,
        kcounts=np.asarray(kcount_rows, dtype=np.int64).reshape(m, _N_KINDS),
        metas=np.asarray(meta_rows, dtype=np.int64).reshape(m, _N_META),
        ticks=np.asarray(ticks, dtype=np.int64).reshape(len(ticks), 5),
        gaps=trace.gaps,
        final_l2=(tuple(tuple(s.items()) for s in l2_sets), dict(l2_classes)),
        final_cc=(tuple(tuple(s.items()) for s in cc_sets), dict(cc_classes)),
        final_node=(None if node_cache is None else
                    (tuple(tuple(s.items()) for s in t_sets), dict(t_classes))),
    )


def compiled_for(sim, trace, sample_period: int) -> CompiledTrace:
    """The memoized lowering of ``trace`` for ``sim``'s traffic geometry.

    Cached on the trace instance (like :meth:`Trace.decoded`, and
    likewise dropped on pickling) with a small capacity bound: a sweep
    replays one geometry per trace, so a deep artifact stack would only
    hold memory hostage. Each probe is recorded on the simulator's
    :class:`~repro.fastpath.EngineTelemetry` (hit = the lowering was
    already memoized).
    """
    key = classification_key(sim, sample_period)
    memo = trace.__dict__.setdefault("_compiled", {})
    artifact = memo.get(key)
    telemetry = getattr(sim, "engine_telemetry", None)
    if telemetry is not None:
        telemetry.record_lowering(artifact is not None)
    if artifact is None:
        while len(memo) >= _MEMO_CAPACITY:
            memo.pop(next(iter(memo)))
        artifact = memo[key] = lower(sim, trace, sample_period)
    return artifact


def ineligibility(sim, trace) -> str | None:
    """Why a compiled replay cannot run, or ``None`` when it can.

    The checks mirror :func:`execute_compiled`'s gate exactly, in the
    same order; the returned string is one of
    :data:`repro.fastpath.FALLBACK_REASONS` and feeds the
    engine-selection telemetry.
    """
    if sanitizer.active() is not None:
        return "sanitizer_armed"
    if sim._deferred_updates:
        # The lowering records synchronous tree-walk traffic; a deferred
        # scheme's pending-walk queue lives in the reference helpers.
        return "deferred_updates"
    node_cache = sim.node_cache
    if (sim.l2.occupied_lines or sim.counter_cache.occupied_lines
            or (node_cache is not None and node_cache.occupied_lines)):
        return "warm_caches"
    if len(trace) == 0:
        return "empty_trace"
    return None


def _run_segment(pres, mflags, prog, i0, i1, mp, now, bf, queue, exposed,
                 full_dur, mem_latency, aes_latency, mac_latency,
                 hit_latency, overlap, uses_cc, serial_decrypt,
                 verify_on_path):
    """Replay events ``[i0, i1)``: the reference clock arithmetic, lean.

    Every float operation matches the reference loop's in kind and
    order. Bus transfers after an event's demand fetch are back-to-back
    (the bus-free timestamp already exceeds the event clock), so their
    start cycles read straight from the running ``bf`` — the same values
    ``MemoryBus.request`` would return, without the branch.
    """
    for pre, mf in zip(pres[i0:i1], mflags[i0:i1]):
        now += pre
        if mf:
            rest, stall_flag, ifetch = prog[mp]
            mp += 1
            start = bf if bf > now else now
            queue += start - now
            data_ready = start + mem_latency
            bf = start + full_dur
            extra = 0.0
            if stall_flag:
                # The counter fetch is the first rest transfer; its
                # start cycle is the running bf.
                stall = ((bf + mem_latency) + aes_latency) - data_ready
                extra = stall if stall > 0.0 else 0.0
                exposed += extra
            elif uses_cc:
                exposed += extra
            elif serial_decrypt:
                extra = aes_latency  # decryption serialized after the fetch
                exposed += extra
            for dur in rest:
                queue += bf - now
                bf = bf + dur
            if verify_on_path:
                extra += mac_latency
                if ifetch:
                    extra += mem_latency
            now += hit_latency + ((data_ready - now) + extra) * overlap
        else:
            now += hit_latency
    return mp, now, bf, queue, exposed


def execute_compiled(sim, trace, warmup: float, sample_period: int):
    """Replay ``trace``'s lowering through ``sim``; None when ineligible.

    Eligibility mirrors the fast-path contract: no armed sanitizer (the
    reference helpers carry its per-insert checks), and additionally
    cold caches — the lowering starts from empty contents, and the
    recorded final state is installed on the real caches afterwards so
    warm reuse (and the live line-count gauges) behave exactly as if
    the per-event engine had run. :func:`ineligibility` names the reason
    a run is turned away.
    """
    if ineligibility(sim, trace) is not None:
        return None
    l2 = sim.l2
    counter_cache = sim.counter_cache
    node_cache = sim.node_cache
    n = len(trace)

    artifact = compiled_for(sim, trace, sample_period)
    bus = sim.bus
    mac_bytes = sim._mac_bytes
    cycles_per_block = bus.cycles_per_block
    full_dur = max(1, round(cycles_per_block * 1.0))
    mac_frac_dur = max(1, round(cycles_per_block * (mac_bytes / BLOCK_SIZE)))

    pres = artifact.pres(sim.issue_width)
    prog = artifact.prog(full_dur, mac_frac_dur)
    mflags = artifact.miss_flags
    m = artifact.misses

    warm_events = int(n * warmup)
    degenerate = warm_events >= n
    boundary = n if degenerate else warm_events
    if boundary > 0:
        warm_misses = int(artifact.miss_cum[boundary - 1])
    else:
        warm_misses = 0

    mp, now, bf, queue, exposed = _run_segment(
        pres, mflags, prog, 0, boundary, 0, 0.0, bus._free_at, 0.0, 0.0,
        full_dur, sim.mem_latency, sim.aes_latency, sim.mac_latency,
        sim.l2_hit_latency, sim.overlap, sim.uses_counter_cache,
        sim._serial_decrypt, sim._verify_on_path,
    )
    measured_from = now
    queue = 0.0
    exposed = 0.0
    if not degenerate:
        mp, now, bf, queue, exposed = _run_segment(
            pres, mflags, prog, boundary, n, mp, now, bf, queue, exposed,
            full_dur, sim.mem_latency, sim.aes_latency, sim.mac_latency,
            sim.l2_hit_latency, sim.overlap, sim.uses_counter_cache,
            sim._serial_decrypt, sim._verify_on_path,
        )

    # Settle the order-insensitive statistics for the measured interval.
    if degenerate:
        warm_misses = m
        measured_events = 0
        measured_instructions = 0
    else:
        measured_events = n - warm_events
        measured_instructions = (
            int(artifact.gaps[warm_events:].sum(dtype=np.int64))
            + measured_events
        )
    measured_misses = m - warm_misses
    meta = artifact.metas[warm_misses:].sum(axis=0)
    demand_hits = measured_events - measured_misses
    l2.credit_demand(
        demand_hits + int(meta[_L2H]),
        measured_misses + int(meta[_L2M]),
        int(meta[_L2WB]),
    )
    counter_cache.credit_demand(int(meta[_CCH]), int(meta[_CCM]),
                                int(meta[_CCWB]))
    if node_cache is not None:
        node_cache.credit_demand(int(meta[_TH]), int(meta[_TM]),
                                 int(meta[_TWB]))

    kind_totals = artifact.kcounts[warm_misses:].sum(axis=0)
    by_kind = {}
    for name, codes in _KIND_SETTLEMENT:
        count = int(sum(kind_totals[code] for code in codes))
        if count:
            by_kind[name] = count
    transfers = int(artifact.transfers[warm_misses:].sum())
    busy = float(int(artifact.busy_per_miss(full_dur, mac_frac_dur)
                     [warm_misses:].sum()))
    bus.credit(transfers, busy, queue, by_kind, bf)

    tick0 = warm_events // sample_period
    measured_ticks = artifact.ticks[tick0:]
    if len(measured_ticks):
        occupancy = measured_ticks.sum(axis=0)
        l2.credit_occupancy(
            len(measured_ticks) * l2.num_lines,
            {
                DATA: int(occupancy[0]),
                CODE: int(occupancy[1]),
                COUNTER: int(occupancy[2]),
                MERKLE: int(occupancy[3]),
                MAC: int(occupancy[4]),
            },
        )

    sim.exposed_cycles += exposed
    sim.counter_accesses += int(meta[_CA])
    sim.counter_misses += int(meta[_CM])
    sim.demand_accesses = measured_events
    sim.demand_misses = measured_misses

    # Install the recorded end-of-run cache contents: warm reuse and the
    # live occupancy gauges see exactly what the per-event engine leaves.
    l2.restore_state(*artifact.final_l2)
    counter_cache.restore_state(*artifact.final_cc)
    if node_cache is not None:
        node_cache.restore_state(*artifact.final_node)

    return now, measured_from, measured_instructions
