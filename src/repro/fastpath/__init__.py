"""repro.fastpath: the batched and compiled execution engines.

The timing simulator's event loop and the functional crypto path are the
two hot paths of the repository. This package owns the *fast* versions
of both and the switches that select them:

* :func:`enabled` / :func:`forced` — one feature gate (``REPRO_FASTPATH``,
  default on) shared by every optimization layer: the keystream pad memo
  (:class:`repro.crypto.engine.PadCache`), the interned seed tuples
  (:meth:`repro.core.seeds.SeedScheme.seeds_for_block`), the integer-XOR
  block cipher application (:mod:`repro.crypto.ctr_mode`), and the
  batched timing loops below. Disabling the gate restores the reference
  implementations byte-for-byte — ``benchmarks/bench_throughput.py``
  runs both sides in the same process and reports the speedup, and the
  equivalence tests assert identical output either way.
* :func:`compiled_enabled` / :func:`forced_compiled` — a second gate
  (``REPRO_COMPILED``, default on, subordinate to the first) for the
  trace **pre-compiler** (:mod:`repro.fastpath.compiled`): a ``Trace``
  is lowered once into typed arrays plus a recorded traffic program,
  then replayed through a lean arithmetic loop. The lowering is
  memoized on the trace and reused by every run that shares its
  traffic-shaping geometry — repeated runs, golden regeneration, and
  grid sweeps that vary only timing parameters.
* :func:`execute` (:mod:`repro.fastpath.engine`) — the batched event
  loop for :meth:`repro.sim.TimingSimulator.run`. It dispatches to the
  compiled replay when one is applicable (cold caches, no armed
  sanitizer) and otherwise runs the inlined per-event engine. Either
  way the arithmetic is identical operation for operation to the
  instrumented reference loop, so results — including the committed
  figure-6 golden sweep — are byte-identical.

The simulator falls back to its instrumented reference loop whenever a
:mod:`repro.obs` session is active (live hooks need per-event callbacks)
or the gate is off.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FORCED: bool | None = None
_FORCED_COMPILED: bool | None = None
_FALSEY = ("0", "off", "false", "no")

# The engine-attribution vocabulary. Every TimingSimulator.run() is
# attributed to exactly one engine; a run on anything but the compiled
# replay also carries the *reason* the faster engine was passed over.
ENGINE_COMPILED = "compiled"
ENGINE_PER_EVENT = "per_event"
ENGINE_REFERENCE = "reference"
ENGINES = (ENGINE_COMPILED, ENGINE_PER_EVENT, ENGINE_REFERENCE)
FALLBACK_REASONS = (
    "obs_session",        # reference: live hooks need per-event callbacks
    "fastpath_gate_off",  # reference: REPRO_FASTPATH=0 / forced(False)
    "compiled_gate_off",  # per-event: REPRO_COMPILED=0 / forced_compiled(False)
    "sanitizer_armed",    # per-event: reference helpers carry its checks
    "warm_caches",        # per-event: the lowering replays onto cold caches only
    "empty_trace",        # per-event: nothing to replay
    "deferred_updates",   # per-event: reference helpers own the pending-walk queue
)


class EngineTelemetry:
    """Per-simulator record of which execution engine each run() used.

    Mutated only by the engine-selection code (this package and
    :meth:`TimingSimulator.run`); everyone else reads it through the
    pull-model gauges :func:`repro.obs.adapters.register_engine_telemetry`
    binds — the OBS002 lint rule holds engine code to exactly that
    split. Recording is one attribute bump per *run* (never per event),
    so disabled-mode output and cost are untouched.
    """

    __slots__ = ("compiled", "per_event", "reference", "fallbacks",
                 "lowering_hits", "lowering_misses",
                 "last_engine", "last_reason")

    def __init__(self):
        self.compiled = 0
        self.per_event = 0
        self.reference = 0
        # {reason: runs}; only reasons that actually occurred appear.
        self.fallbacks: dict[str, int] = {}
        self.lowering_hits = 0
        self.lowering_misses = 0
        self.last_engine: str | None = None
        self.last_reason: str | None = None

    def record(self, engine: str, reason: str | None = None) -> None:
        """Attribute one run; ``reason`` is required unless compiled."""
        if engine == ENGINE_COMPILED:
            self.compiled += 1
        elif engine == ENGINE_PER_EVENT:
            self.per_event += 1
        elif engine == ENGINE_REFERENCE:
            self.reference += 1
        else:
            raise ValueError(f"unknown engine {engine!r}")
        if reason is not None:
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        self.last_engine = engine
        self.last_reason = reason

    def record_lowering(self, hit: bool) -> None:
        """One compiled-lowering memo probe (see ``compiled_for``)."""
        if hit:
            self.lowering_hits += 1
        else:
            self.lowering_misses += 1

    @property
    def runs(self) -> int:
        return self.compiled + self.per_event + self.reference

    @property
    def lowering_hit_rate(self) -> float:
        probes = self.lowering_hits + self.lowering_misses
        return self.lowering_hits / probes if probes else 0.0


def enabled() -> bool:
    """Whether the fast paths are active (default: yes).

    ``REPRO_FASTPATH=0`` (or ``off``/``false``/``no``) selects the
    reference implementations; :func:`forced` overrides the environment
    for a scope (benchmarks, equivalence tests).
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_FASTPATH", "1").lower() not in _FALSEY


@contextmanager
def forced(state: bool):
    """Force the gate on or off within a ``with`` block.

    Only components *constructed or run* inside the block are affected:
    engines resolve the gate when built, the simulator on each ``run()``.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = bool(state)
    try:
        yield
    finally:
        _FORCED = previous


def compiled_enabled() -> bool:
    """Whether the compiled trace replay may be used (default: yes).

    Subordinate to :func:`enabled`: the compiled engine is one of the
    fast paths, so ``REPRO_FASTPATH=0`` disables it too. Setting
    ``REPRO_COMPILED=0`` keeps the batched per-event engine while
    skipping the pre-compiler — the mode ``bench_throughput.py`` uses to
    price the two layers separately.
    """
    if _FORCED_COMPILED is not None:
        return _FORCED_COMPILED
    return os.environ.get("REPRO_COMPILED", "1").lower() not in _FALSEY


@contextmanager
def forced_compiled(state: bool):
    """Force the compiled-replay gate on or off within a ``with`` block."""
    global _FORCED_COMPILED
    previous = _FORCED_COMPILED
    _FORCED_COMPILED = bool(state)
    try:
        yield
    finally:
        _FORCED_COMPILED = previous


from .engine import execute  # noqa: E402  (the gates above must exist first)

__all__ = [
    "ENGINES",
    "ENGINE_COMPILED",
    "ENGINE_PER_EVENT",
    "ENGINE_REFERENCE",
    "EngineTelemetry",
    "FALLBACK_REASONS",
    "compiled_enabled",
    "enabled",
    "execute",
    "forced",
    "forced_compiled",
]
