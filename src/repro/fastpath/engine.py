"""The batched per-event execution engine for the timing core.

:func:`execute` is the batched event loop behind
:meth:`repro.sim.TimingSimulator.run`. It consumes a pre-decoded trace
(:meth:`repro.sim.trace.Trace.decoded`: the per-run numpy→list
conversion done once and memoized) and turns the per-access attribute
chases of the reference loop into a tight local-variable loop: cache
sets, bound methods, and latency parameters are resolved once, demand
hit/miss tallies accumulate in locals and are credited back in bulk
through the owning cache's :meth:`~repro.mem.cache.SetAssociativeCache.
credit_demand`. The arithmetic is identical operation for operation, so
results — including the committed figure-6 golden sweep — are
byte-identical to the reference loop.

When the compiled-replay gate is on (see the package docstring) and the
run qualifies — cold caches, no armed sanitizer — ``execute`` instead
dispatches to :func:`repro.fastpath.compiled.execute_compiled`, which
replays the trace's memoized lowering through an even leaner loop with,
again, bit-identical arithmetic.
"""

from __future__ import annotations

from .compiled import execute_compiled, ineligibility


def execute(sim, trace, warmup: float, sample_period: int) -> tuple[float, float, int]:
    """Run ``trace`` through ``sim`` on the batched fast path.

    Returns ``(now, measured_from, measured_instructions)`` exactly as
    the reference loop in :meth:`TimingSimulator.run` would compute them.
    The caller has already rebased the bus and reset statistics; live
    obs hooks must NOT be armed (the fast path has no per-event
    callback sites). Each run is attributed on the simulator's
    :class:`~repro.fastpath.EngineTelemetry`: compiled replay when
    eligible, otherwise the batched loop with the reason compiled
    replay was passed over.
    """
    from . import ENGINE_COMPILED, ENGINE_PER_EVENT, compiled_enabled

    telemetry = sim.engine_telemetry
    if compiled_enabled():
        reason = ineligibility(sim, trace)
        if reason is None:
            telemetry.record(ENGINE_COMPILED)
            return execute_compiled(sim, trace, warmup, sample_period)
    else:
        reason = "compiled_gate_off"
    telemetry.record(ENGINE_PER_EVENT, reason)

    decoded = trace.decoded()
    gaps = decoded.gaps
    ops = decoded.ops
    addresses = decoded.addresses

    l2 = sim.l2
    # Pre-resolved L2 probe state: the demand lookup is inlined below
    # (set indexing + LRU touch), mirroring SetAssociativeCache.lookup
    # exactly; hit/miss tallies accumulate in locals and are credited
    # back through the cache's own API.
    sets = l2._sets
    num_sets = l2.num_sets
    block_size = l2.block_size
    tick_occupancy = l2.tick_occupancy
    issue = sim.issue_width
    hit_latency = sim.l2_hit_latency
    overlap = sim.overlap

    engine = _make_miss_engine(sim)
    if engine is not None:
        miss_path, reset_engine, flush_engine = engine
    else:
        miss_path, reset_engine, flush_engine = sim._miss, None, None

    now = 0.0
    l2_hits = 0
    l2_misses = 0
    sample_countdown = sample_period
    warm_events = int(len(addresses) * warmup)
    measured_from = 0.0
    measured_instructions = 0
    event_index = 0

    for gap, op, addr in zip(gaps, ops, addresses):
        if event_index == warm_events:
            sim._reset_stats()
            l2_hits = 0
            l2_misses = 0
            if reset_engine is not None:
                reset_engine()
            measured_from = now
        event_index += 1
        now += gap / issue
        write = op == 1
        block = addr // block_size
        cache_set = sets[block % num_sets]
        entry = cache_set.get(block)
        if entry is not None:
            cache_set.move_to_end(block)
            if write and not entry[0]:
                cache_set[block] = (True, entry[1])
            l2_hits += 1
            now += hit_latency
        else:
            l2_misses += 1
            now += hit_latency + miss_path(addr, write, now) * overlap
        if event_index > warm_events:
            measured_instructions += gap + 1
        sample_countdown -= 1
        if sample_countdown == 0:
            tick_occupancy()
            sample_countdown = sample_period

    l2.credit_demand(l2_hits, l2_misses)
    if flush_engine is not None:
        flush_engine()
    sim.demand_accesses = l2_hits + l2_misses
    sim.demand_misses = l2_misses

    if addresses and warm_events >= len(addresses):
        # Degenerate warmup covering the whole trace: nothing measured.
        sim._reset_stats()
        measured_from = now
        measured_instructions = 0

    return now, measured_from, measured_instructions


def _make_miss_engine(sim):
    """Build the inlined miss path for ``sim``: (miss, reset, flush).

    The engine replicates ``TimingSimulator._miss`` and its helpers
    (``_counter_access``, ``_tree_walk``, ``_data_mac_traffic``, the
    writeback chain, ``MemoryBus.request``, and the cache ``lookup``/
    ``insert`` operations) operation for operation, with every model
    parameter pre-resolved into closure variables and every statistic
    accumulated in local tallies. ``flush()`` settles the tallies
    through the owning objects' batch-credit APIs at end of run;
    ``reset()`` zeroes them at the warmup boundary (mirroring
    ``_reset_stats``). Arithmetic — including bus-queueing timestamps
    and ``max(0, ...)`` stall clamps — is bit-identical to the
    reference helpers; the committed figure-6 golden pins that.

    Returns None when a :mod:`repro.core.sanitizer` config is armed
    (the reference helpers carry the sanitizer's per-insert checks) or
    the scheme defers tree updates (the reference helpers own the
    pending-walk queue the end-of-run drain settles) — the caller then
    falls back to ``sim._miss``.
    """
    from ..core import sanitizer
    from ..mem.cache import COUNTER, DATA, MAC, MERKLE
    from ..mem.layout import BLOCK_SIZE

    if sanitizer.active() is not None or sim._deferred_updates:
        return None

    bus = sim.bus
    l2 = sim.l2
    counter_cache = sim.counter_cache
    node_cache = sim.node_cache

    bs = BLOCK_SIZE
    mem_latency = sim.mem_latency
    aes_latency = sim.aes_latency
    mac_latency = sim.mac_latency
    uses_cc = sim.uses_counter_cache
    serial_decrypt = sim._serial_decrypt
    walks_tree = sim._walks_tree
    tree_covers_data = sim._tree_covers_data
    uses_data_macs = sim._uses_data_macs
    cache_data_macs = sim._cache_data_macs
    verify_on_path = sim._verify_on_path
    walk_bases = tuple(sim._walk_bases)
    arity = sim._arity
    covered_start = sim._covered_start
    mac_base = sim._mac_base
    mac_bytes = sim._mac_bytes
    ctr_base = sim._ctr_base if uses_cc else 0
    cb_span = sim._cb_span if uses_cc else 1

    # Pre-quantized bus transfer durations (MemoryBus.request quantizes
    # per call; the only fractional transfer is the uncached-MAC case).
    cycles_per_block = bus.cycles_per_block
    full_dur = max(1, round(cycles_per_block * 1.0))
    mac_frac_dur = max(1, round(cycles_per_block * (mac_bytes / bs)))

    # Cache internals (sets + class tallies are mutated in place with the
    # exact lookup/insert state transitions; hit/miss/writeback counts
    # settle through credit_demand at flush time).
    l2_sets = l2._sets
    l2_nsets = l2.num_sets
    l2_assoc = l2.assoc
    l2_classes = l2._class_lines
    cc_sets = counter_cache._sets
    cc_nsets = counter_cache.num_sets
    cc_assoc = counter_cache.assoc
    cc_classes = counter_cache._class_lines
    tree_cache = node_cache if node_cache is not None else l2
    t_sets = tree_cache._sets
    t_nsets = tree_cache.num_sets
    t_assoc = tree_cache.assoc
    t_classes = tree_cache._class_lines
    tree_is_l2 = tree_cache is l2

    # Statistic tallies (settled in flush / zeroed in reset).
    l2_hits = l2_misses = l2_wb = 0
    cc_hits = cc_misses = cc_wb = 0
    t_hits = t_misses = t_wb = 0
    counter_accesses = counter_misses = 0
    exposed = 0.0
    bus_free = bus._free_at
    bus_transfers = 0
    bus_busy = 0.0
    bus_queue = 0.0
    k_data = k_data_wb = k_counter = k_counter_wb = 0
    k_merkle = k_merkle_wb = k_mac = k_mac_wb = 0

    def tree_walk(covered_addr, now, make_dirty):
        # Mirrors TimingSimulator._tree_walk.
        nonlocal t_hits, t_misses, t_wb, l2_hits, l2_misses, l2_wb
        nonlocal bus_free, bus_transfers, bus_busy, bus_queue, k_merkle
        index = (covered_addr - covered_start) // bs
        fetched = 0
        for base in walk_bases:
            index //= arity
            node_addr = base + index * bs
            block = node_addr // bs
            cache_set = t_sets[block % t_nsets]
            entry = cache_set.get(block)
            if entry is not None:
                cache_set.move_to_end(block)
                if make_dirty and not entry[0]:
                    cache_set[block] = (True, entry[1])
                if tree_is_l2:
                    l2_hits += 1
                else:
                    t_hits += 1
                return fetched
            if tree_is_l2:
                l2_misses += 1
            else:
                t_misses += 1
            start = bus_free if bus_free > now else now
            bus_free = start + full_dur
            bus_transfers += 1
            bus_busy += full_dur
            bus_queue += start - now
            k_merkle += 1
            fetched += 1
            # insert(node_addr, MERKLE, dirty=make_dirty)
            if len(cache_set) >= t_assoc:
                vblock, (vdirty, vclass) = cache_set.popitem(last=False)
                t_classes[vclass] = t_classes.get(vclass, 1) - 1
                if vdirty:
                    if tree_is_l2:
                        l2_wb += 1
                    else:
                        t_wb += 1
                    cache_set[block] = (make_dirty, MERKLE)
                    t_classes[MERKLE] = t_classes.get(MERKLE, 0) + 1
                    writeback(vblock, vclass, now)
                    continue
            cache_set[block] = (make_dirty, MERKLE)
            t_classes[MERKLE] = t_classes.get(MERKLE, 0) + 1
        return fetched

    def counter_access(addr, now, write, data_ready):
        # Mirrors TimingSimulator._counter_access.
        nonlocal cc_hits, cc_misses, cc_wb, counter_accesses, counter_misses
        nonlocal bus_free, bus_transfers, bus_busy, bus_queue, k_counter, k_counter_wb
        cb_addr = ctr_base + (addr // cb_span) * bs
        counter_accesses += 1
        block = cb_addr // bs
        cache_set = cc_sets[block % cc_nsets]
        entry = cache_set.get(block)
        if entry is not None:
            cache_set.move_to_end(block)
            if write and not entry[0]:
                cache_set[block] = (True, entry[1])
            cc_hits += 1
            return 0.0
        cc_misses += 1
        counter_misses += 1
        start = bus_free if bus_free > now else now
        bus_free = start + full_dur
        bus_transfers += 1
        bus_busy += full_dur
        bus_queue += start - now
        k_counter += 1
        counter_ready = start + mem_latency
        # insert(cb_addr, COUNTER, dirty=write)
        if len(cache_set) >= cc_assoc:
            vblock, (vdirty, vclass) = cache_set.popitem(last=False)
            cc_classes[vclass] = cc_classes.get(vclass, 1) - 1
            cache_set[block] = (write, COUNTER)
            cc_classes[COUNTER] = cc_classes.get(COUNTER, 0) + 1
            if vdirty:
                cc_wb += 1
                # _writeback_counter_block(vblock * bs, now)
                vstart = bus_free if bus_free > now else now
                bus_free = vstart + full_dur
                bus_transfers += 1
                bus_busy += full_dur
                bus_queue += vstart - now
                k_counter_wb += 1
                if walks_tree:
                    tree_walk(vblock * bs, now, True)
        else:
            cache_set[block] = (write, COUNTER)
            cc_classes[COUNTER] = cc_classes.get(COUNTER, 0) + 1
        if walks_tree:
            tree_walk(cb_addr, now, False)
        if write:
            return 0.0  # writebacks are off the critical path
        pad_ready = counter_ready + aes_latency
        stall = pad_ready - data_ready
        return stall if stall > 0.0 else 0.0

    def mac_traffic(addr, now, write):
        # Mirrors TimingSimulator._data_mac_traffic.
        nonlocal l2_hits, l2_misses, l2_wb
        nonlocal bus_free, bus_transfers, bus_busy, bus_queue, k_mac, k_mac_wb
        mac_addr = mac_base + (addr // bs * mac_bytes // bs) * bs
        if cache_data_macs:
            block = mac_addr // bs
            cache_set = l2_sets[block % l2_nsets]
            entry = cache_set.get(block)
            if entry is not None:
                cache_set.move_to_end(block)
                if write and not entry[0]:
                    cache_set[block] = (True, entry[1])
                l2_hits += 1
                return 0
            l2_misses += 1
            start = bus_free if bus_free > now else now
            bus_free = start + full_dur
            bus_transfers += 1
            bus_busy += full_dur
            bus_queue += start - now
            k_mac += 1
            # insert(mac_addr, MAC, dirty=write)
            if len(cache_set) >= l2_assoc:
                vblock, (vdirty, vclass) = cache_set.popitem(last=False)
                l2_classes[vclass] = l2_classes.get(vclass, 1) - 1
                cache_set[block] = (write, MAC)
                l2_classes[MAC] = l2_classes.get(MAC, 0) + 1
                if vdirty:
                    l2_wb += 1
                    writeback(vblock, vclass, now)
            else:
                cache_set[block] = (write, MAC)
                l2_classes[MAC] = l2_classes.get(MAC, 0) + 1
            return 1
        # Uncached MACs: only the MAC itself crosses the bus.
        start = bus_free if bus_free > now else now
        bus_free = start + mac_frac_dur
        bus_transfers += 1
        bus_busy += mac_frac_dur
        bus_queue += start - now
        if write:
            k_mac_wb += 1
            return 0
        k_mac += 1
        return 1

    def writeback(vblock, vclass, now):
        # Mirrors TimingSimulator._writeback for a dirty victim.
        nonlocal bus_free, bus_transfers, bus_busy, bus_queue
        nonlocal k_merkle_wb, k_data_wb
        start = bus_free if bus_free > now else now
        bus_free = start + full_dur
        bus_transfers += 1
        bus_busy += full_dur
        bus_queue += start - now
        if vclass == MERKLE or vclass == MAC:
            k_merkle_wb += 1
            return
        k_data_wb += 1
        addr = vblock * bs
        if uses_cc:
            counter_access(addr, now, True, now)
        if tree_covers_data:
            tree_walk(addr, now, True)
        elif uses_data_macs:
            mac_traffic(addr, now, True)

    def miss(addr, is_write, now):
        # Mirrors TimingSimulator._miss.
        nonlocal l2_wb, exposed
        nonlocal bus_free, bus_transfers, bus_busy, bus_queue, k_data
        start = bus_free if bus_free > now else now
        bus_free = start + full_dur
        bus_transfers += 1
        bus_busy += full_dur
        bus_queue += start - now
        k_data += 1
        data_ready = start + mem_latency
        extra = 0.0
        if uses_cc:
            extra = counter_access(addr, now, False, data_ready)
            exposed += extra
        elif serial_decrypt:
            extra = aes_latency  # decryption serialized after the fetch
            exposed += extra
        integrity_fetches = 0
        if tree_covers_data:
            integrity_fetches = tree_walk(addr, now, False)
        elif uses_data_macs:
            integrity_fetches = mac_traffic(addr, now, False)
        if verify_on_path:
            extra += mac_latency
            if integrity_fetches:
                extra += mem_latency
        # insert(addr, DATA, dirty=is_write) into the L2
        block = addr // bs
        cache_set = l2_sets[block % l2_nsets]
        entry = cache_set.get(block)
        if entry is not None:
            # Refill of a present line (a metadata insert raced the fill).
            cache_set[block] = (entry[0] or is_write, DATA)
            cache_set.move_to_end(block)
            if entry[1] != DATA:
                l2_classes[entry[1]] = l2_classes.get(entry[1], 1) - 1
                l2_classes[DATA] = l2_classes.get(DATA, 0) + 1
        elif len(cache_set) >= l2_assoc:
            vblock, (vdirty, vclass) = cache_set.popitem(last=False)
            l2_classes[vclass] = l2_classes.get(vclass, 1) - 1
            cache_set[block] = (is_write, DATA)
            l2_classes[DATA] = l2_classes.get(DATA, 0) + 1
            if vdirty:
                l2_wb += 1
                writeback(vblock, vclass, now)
        else:
            cache_set[block] = (is_write, DATA)
            l2_classes[DATA] = l2_classes.get(DATA, 0) + 1
        return (data_ready - now) + extra

    def reset():
        # Mirrors _reset_stats for the local tallies (warmup boundary).
        nonlocal l2_hits, l2_misses, l2_wb, cc_hits, cc_misses, cc_wb
        nonlocal t_hits, t_misses, t_wb, counter_accesses, counter_misses
        nonlocal exposed, bus_transfers, bus_busy, bus_queue
        nonlocal k_data, k_data_wb, k_counter, k_counter_wb
        nonlocal k_merkle, k_merkle_wb, k_mac, k_mac_wb
        l2_hits = l2_misses = l2_wb = 0
        cc_hits = cc_misses = cc_wb = 0
        t_hits = t_misses = t_wb = 0
        counter_accesses = counter_misses = 0
        exposed = 0.0
        bus_transfers = 0
        bus_busy = 0.0
        bus_queue = 0.0
        k_data = k_data_wb = k_counter = k_counter_wb = 0
        k_merkle = k_merkle_wb = k_mac = k_mac_wb = 0

    def flush():
        # Settle tallies through the owners' batch-credit APIs.
        l2.credit_demand(l2_hits, l2_misses, l2_wb)
        counter_cache.credit_demand(cc_hits, cc_misses, cc_wb)
        if node_cache is not None:
            node_cache.credit_demand(t_hits, t_misses, t_wb)
        by_kind = {}
        for kind, count in (
            ("data", k_data), ("counter", k_counter), ("merkle", k_merkle),
            ("mac", k_mac), ("data_wb", k_data_wb),
            ("counter_wb", k_counter_wb), ("merkle_wb", k_merkle_wb),
            ("mac_wb", k_mac_wb),
        ):
            if count:
                by_kind[kind] = count
        bus.credit(bus_transfers, bus_busy, bus_queue, by_kind, bus_free)
        sim.exposed_cycles += exposed
        sim.counter_accesses += counter_accesses
        sim.counter_misses += counter_misses

    return miss, reset, flush
