"""repro: AISE + Bonsai Merkle Trees — an OS- and performance-friendly
secure-processor memory protection library.

Reproduction of Rogers, Chhabra, Solihin & Prvulovic, "Using Address
Independent Seed Encryption and Bonsai Merkle Trees to Make Secure
Processors OS- and Performance-Friendly" (MICRO 2007).

Three entry points:

* ``repro.core.SecureMemorySystem`` — a functional secure processor:
  real counter-mode encryption (AISE and the baseline seed schemes),
  real Merkle / Bonsai-Merkle integrity trees, tamper detection.
* ``repro.osmodel.Kernel`` — a virtual-memory OS model (paging, swap
  with page-root protection, fork/COW, shared-memory IPC) driving it.
* ``repro.sim.TimingSimulator`` + ``repro.evalx`` — the trace-driven
  performance model and the harness regenerating every table and figure
  of the paper's evaluation.
"""

from . import attacks, core, crypto, evalx, integrity, mem, osmodel, sim, workloads
from .core import (
    AccessContext,
    IntegrityError,
    MachineConfig,
    SecureMemorySystem,
    aise_bmt_config,
    baseline_config,
    global64_mt_config,
)
from .osmodel import Kernel
from .sim import SimResult, TimingSimulator, Trace, simulate

__version__ = "1.0.0"

__all__ = [
    "SecureMemorySystem",
    "MachineConfig",
    "AccessContext",
    "IntegrityError",
    "aise_bmt_config",
    "baseline_config",
    "global64_mt_config",
    "Kernel",
    "TimingSimulator",
    "simulate",
    "SimResult",
    "Trace",
    "core",
    "crypto",
    "mem",
    "osmodel",
    "integrity",
    "sim",
    "workloads",
    "attacks",
    "evalx",
    "__version__",
]
