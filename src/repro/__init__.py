"""repro: AISE + Bonsai Merkle Trees — an OS- and performance-friendly
secure-processor memory protection library.

Reproduction of Rogers, Chhabra, Solihin & Prvulovic, "Using Address
Independent Seed Encryption and Bonsai Merkle Trees to Make Secure
Processors OS- and Performance-Friendly" (MICRO 2007).

The blessed entry points live in :mod:`repro.api` (re-exported here):
``build_machine`` for a functional secure processor, ``simulate`` /
``sweep`` / ``trace`` for the timing model, all keyed by preset labels
(``MachineConfig.preset``). Underneath:

* ``repro.core.SecureMemorySystem`` — a functional secure processor:
  real counter-mode encryption (AISE and the baseline seed schemes),
  real Merkle / Bonsai-Merkle integrity trees, tamper detection.
* ``repro.osmodel.Kernel`` — a virtual-memory OS model (paging, swap
  with page-root protection, fork/COW, shared-memory IPC) driving it.
* ``repro.sim.TimingSimulator`` + ``repro.evalx`` — the trace-driven
  performance model and the harness regenerating every table and figure
  of the paper's evaluation.
"""

from . import attacks, core, crypto, evalx, fastpath, integrity, mem, osmodel, sim, workloads
from .core import (
    AccessContext,
    IntegrityError,
    MachineConfig,
    SecureMemorySystem,
    aise_bmt_config,
    baseline_config,
    global64_mt_config,
)
from .osmodel import Kernel
from .sim import SimResult, TimingSimulator, Trace
from . import api
from .api import build_machine, load_trace, preset_names, simulate, sweep, trace

__version__ = "1.0.0"

__all__ = [
    "api",
    "build_machine",
    "simulate",
    "sweep",
    "trace",
    "load_trace",
    "preset_names",
    "SecureMemorySystem",
    "MachineConfig",
    "AccessContext",
    "IntegrityError",
    "aise_bmt_config",
    "baseline_config",
    "global64_mt_config",
    "Kernel",
    "TimingSimulator",
    "SimResult",
    "Trace",
    "core",
    "crypto",
    "fastpath",
    "mem",
    "osmodel",
    "integrity",
    "sim",
    "workloads",
    "attacks",
    "evalx",
    "__version__",
]
