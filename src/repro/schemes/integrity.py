"""Descriptors for every integrity organization the paper compares.

String keys are the ``INT_*`` constants in :mod:`repro.core.config`.
Each descriptor plans its tree geometry and MAC region inside the
machine's physical layout and builds the functional engine; its class
attributes drive the timing model's metadata traffic (tree walks vs.
per-block MAC fetches, and the section-5.2 caching policy split).
"""

from __future__ import annotations

from ..core.config import INT_BMT, INT_LOGHASH, INT_MAC, INT_MT, INT_NONE
from ..core.errors import ConfigurationError
from ..integrity.geometry import TreeGeometry
from .base import IntegrityScheme


class NoIntegrityScheme(IntegrityScheme):
    """No integrity protection (encryption-only or unprotected machines)."""

    key = INT_NONE
    verifies = False

    def build_engine(self, machine, geometry):
        from ..integrity.null import NullIntegrity

        return NullIntegrity()


class MacOnlyScheme(IntegrityScheme):
    """Per-block MACs without a tree: spoofing is caught, replay is not."""

    key = INT_MAC
    uses_data_macs = True

    def mac_region_bytes(self, config, data_bytes):
        from ..mem.layout import BLOCK_SIZE, round_to_blocks

        return round_to_blocks(data_bytes // BLOCK_SIZE * config.mac_bytes)

    def build_engine(self, machine, geometry):
        from ..integrity.macs import MacOnlyIntegrity, MacStore

        store = MacStore(
            machine.memory,
            machine.layout.mac_base,
            0,
            machine.layout.data_bytes,
            machine.config.mac_bytes,
        )
        return MacOnlyIntegrity(machine.memory, store, machine.mac_fn)


class StandardMerkleScheme(IntegrityScheme):
    """The conventional organization: one tree over data + counters + PRD.

    Leaf data MACs are tree nodes, cached in L2 like any other node —
    the pollution Figure 9 quantifies."""

    key = INT_MT
    uses_tree = True
    tree_covers_data = True
    caches_data_macs_default = True

    def plan_tree(self, config, data_bytes, counter_base, counter_bytes, prd_bytes, tree_base):
        covered = data_bytes + counter_bytes + prd_bytes
        return TreeGeometry(0, covered, tree_base, config.mac_bytes)

    def build_engine(self, machine, geometry):
        from ..integrity.bonsai import StandardMerkleIntegrity

        return StandardMerkleIntegrity(machine.memory, self.build_tree(machine, geometry))


class BonsaiMerkleScheme(IntegrityScheme):
    """The paper's proposal (section 5.2): counter-bound per-block MACs
    plus a small tree over counters + page-root directory only. Data MACs
    are fetched but never cached."""

    key = INT_BMT
    uses_tree = True
    uses_data_macs = True
    requires_counters = True

    def plan_tree(self, config, data_bytes, counter_base, counter_bytes, prd_bytes, tree_base):
        if counter_bytes == 0:
            raise ConfigurationError(
                "a Bonsai Merkle Tree needs counter storage to cover: "
                "use a counter-mode encryption scheme with it"
            )
        covered = counter_bytes + prd_bytes
        return TreeGeometry(counter_base, covered, tree_base, config.mac_bytes)

    def mac_region_bytes(self, config, data_bytes):
        from ..mem.layout import BLOCK_SIZE, round_to_blocks

        return round_to_blocks(data_bytes // BLOCK_SIZE * config.mac_bytes)

    def build_engine(self, machine, geometry):
        from ..integrity.bonsai import BonsaiMerkleIntegrity
        from ..integrity.macs import MacStore

        tree = self.build_tree(machine, geometry)
        store = MacStore(
            machine.memory,
            machine.layout.mac_base,
            0,
            machine.layout.data_bytes,
            machine.config.mac_bytes,
        )
        return BonsaiMerkleIntegrity(machine.memory, store, tree, machine.mac_fn)


class LogHashScheme(IntegrityScheme):
    """Log-hash integrity [Suh et al. MICRO'03]: incremental multiset
    hashes checked at epoch boundaries; no tree, no per-block MACs."""

    key = INT_LOGHASH

    def build_engine(self, machine, geometry):
        from ..integrity.loghash import LogHashIntegrity

        return LogHashIntegrity(machine.memory, machine.mac_fn)


BUILTIN_INTEGRITY_SCHEMES = (
    NoIntegrityScheme(),
    MacOnlyScheme(),
    StandardMerkleScheme(),
    BonsaiMerkleScheme(),
    LogHashScheme(),
)
