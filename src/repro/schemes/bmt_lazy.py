"""The ``bmt_lazy`` descriptor: the paper's BMT on the incremental tree.

The worked "add a tree engine in one file" example from
``docs/architecture.md``: everything that differs from the eager
:class:`~repro.schemes.integrity.BonsaiMerkleScheme` — tree construction,
the deferred update policy the timing model follows, the fingerprint
modules, and the scheduler gauges — lives here. The machine, simulator,
kernel, and swap path are untouched; they only see the descriptor hooks.
"""

from __future__ import annotations

from ..core.config import INT_BMT_LAZY
from .base import UpdatePolicy
from .integrity import BonsaiMerkleScheme


class LazyBonsaiMerkleScheme(BonsaiMerkleScheme):
    """BMT over counters + PRD, maintained by the incremental engine.

    Same geometry, same MAC regions, same Table 2 storage as ``bonsai``
    — but the tree materializes subtrees on first touch and queues dirty
    paths, and the timing model defers counter-writeback walks per
    :attr:`update_policy`, coalescing overlapping paths per batch.
    """

    key = INT_BMT_LAZY
    update_policy = UpdatePolicy(deferred=True, batch=8, coalesce=True)

    def build_tree(self, machine, geometry):
        from ..integrity.incremental import IncrementalMerkleTree

        return IncrementalMerkleTree(
            machine.memory, geometry, machine.mac_fn, coalesce=self.update_policy.coalesce
        )

    def tree_modules(self):
        # The lazy engine subclasses the eager module's base, so both
        # sources shape this scheme's results.
        return ("repro.integrity.merkle", "repro.integrity.incremental")

    def engine_stats(self, engine):
        tree = engine.tree
        return {
            "tree_pending_updates": tree.pending_updates,
            "tree_materialized_fraction": tree.materialized_fraction,
            "tree_coalesce_ratio": tree.coalesce_ratio,
            "tree_drained_nodes": lambda: tree.drained_nodes,
            "tree_adoptions": lambda: tree.adoptions,
        }


BUILTIN_LAZY_SCHEMES = (LazyBonsaiMerkleScheme(),)
