"""Descriptors for every encryption scheme the paper compares.

Each descriptor instantiates one row of Table 1. Registration happens at
import time (see ``repro.schemes``); the string keys are exactly the
``ENC_*`` constants in :mod:`repro.core.config`, so configurations,
caches, and CLI flags are unchanged by the descriptor layer.
"""

from __future__ import annotations

from ..core.config import (
    ENC_AISE,
    ENC_DIRECT,
    ENC_GLOBAL32,
    ENC_GLOBAL64,
    ENC_NONE,
    ENC_PHYS,
    ENC_SPLIT,
    ENC_VIRT,
)
from .base import EncryptionScheme, FlatCounterScheme, PagedCounterScheme


class NoEncryptionScheme(EncryptionScheme):
    """Unprotected baseline: plaintext in memory, no metadata at all."""

    key = ENC_NONE

    def build_engine(self, machine, seed_audit=None):
        from ..core.encryption import NullEncryption

        return NullEncryption()


class DirectEncryptionScheme(EncryptionScheme):
    """Direct (ECB-style) AES: no counters; decryption latency is exposed
    on every miss because the pad cannot be precomputed (section 2)."""

    key = ENC_DIRECT
    serialized_decrypt = True

    def build_engine(self, machine, seed_audit=None):
        from ..core.encryption import DirectEncryption

        return DirectEncryption(machine.encryption_key)


class AiseScheme(PagedCounterScheme):
    """AISE: LPID-seeded counter mode, one counter block per page."""

    key = ENC_AISE

    def build_engine(self, machine, seed_audit=None):
        from ..core.encryption import AiseEncryption

        return AiseEncryption(
            machine.encryption_key,
            memory=machine.memory,
            counter_base=machine.layout.counter_base,
            data_bytes=machine.layout.data_bytes,
            gpc=machine.gpc,
            fast_crypto=machine.fast_crypto,
            seed_audit=seed_audit,
        )

    def engine_stats(self, engine) -> dict:
        return {
            "pads_generated": lambda: engine.pads_generated,
            "page_reencryptions": lambda: engine.page_reencryptions,
            "pages_initialized": lambda: engine.pages_initialized,
        }


class SplitCounterScheme(AiseScheme):
    """Split-counter baseline [Yan et al. ISCA'06]: AISE's storage layout
    with address-based seeds — so frame moves force re-encryption."""

    key = ENC_SPLIT
    reencrypt_on_swap = True

    def build_engine(self, machine, seed_audit=None):
        from ..core.encryption import SplitCounterEncryption

        return SplitCounterEncryption(
            machine.encryption_key,
            memory=machine.memory,
            counter_base=machine.layout.counter_base,
            data_bytes=machine.layout.data_bytes,
            fast_crypto=machine.fast_crypto,
            seed_audit=seed_audit,
        )

    def engine_stats(self, engine) -> dict:
        return {
            "pads_generated": lambda: engine.pads_generated,
            "page_reencryptions": lambda: engine.page_reencryptions,
        }


class GlobalCounterScheme(FlatCounterScheme):
    """Global-counter baseline: a per-block stamp of the global write
    serial number (section 4.1). Seeds carry no address, so pages may
    move frames freely — the stamps just move with them."""

    key = ENC_GLOBAL64
    bits = 64

    @property
    def stamp_bytes(self) -> int:
        return self.bits // 8

    def build_engine(self, machine, seed_audit=None):
        from ..core.encryption import GlobalCounterEncryption

        return GlobalCounterEncryption(
            machine.encryption_key,
            memory=machine.memory,
            counter_base=machine.layout.counter_base,
            data_bytes=machine.layout.data_bytes,
            bits=self.bits,
            fast_crypto=machine.fast_crypto,
        )

    def engine_stats(self, engine) -> dict:
        return {
            "pads_generated": lambda: engine.pads_generated,
            "memory_reencryptions": lambda: engine.memory_reencryptions,
        }


class Global32Scheme(GlobalCounterScheme):
    key = ENC_GLOBAL32
    bits = 32


class AddressSeedScheme(FlatCounterScheme):
    """Shared base of the address-seeded baselines: 32-bit per-block
    counters packed in the counter region."""

    stamp_bytes = 4
    virtual = False

    def build_engine(self, machine, seed_audit=None):
        from ..core.encryption import AddressSeedEncryption

        return AddressSeedEncryption(
            machine.encryption_key,
            memory=machine.memory,
            counter_base=machine.layout.counter_base,
            data_bytes=machine.layout.data_bytes,
            virtual=self.virtual,
            fast_crypto=machine.fast_crypto,
            seed_audit=seed_audit,
        )

    def engine_stats(self, engine) -> dict:
        return {"pads_generated": lambda: engine.pads_generated}


class PhysAddrScheme(AddressSeedScheme):
    """Physical-address seeds: pages must re-encrypt to cross the
    memory/disk boundary (the swap cost of section 4.2)."""

    key = ENC_PHYS
    reencrypt_on_swap = True


class VirtAddrScheme(AddressSeedScheme):
    """Virtual-address seeds: swap-friendly but every L2 line must keep
    its 4-byte virtual tag (Table 1's capacity cost), and shared
    mappings at different addresses decrypt to garbage."""

    key = ENC_VIRT
    virtual = True
    l2_tag_overhead_bytes = 4


BUILTIN_ENCRYPTION_SCHEMES = (
    NoEncryptionScheme(),
    AiseScheme(),
    SplitCounterScheme(),
    GlobalCounterScheme(),
    Global32Scheme(),
    PhysAddrScheme(),
    VirtAddrScheme(),
    DirectEncryptionScheme(),
)
