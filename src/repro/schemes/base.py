"""Descriptor base classes: one object owns everything about one scheme.

A *scheme descriptor* is the single source of truth for one protection
scheme the paper compares. It spans both halves of the repository:

* the **functional machine** asks it for counter-region sizing, engine
  construction, and the per-page counter export/install layout the swap
  path serializes;
* the **timing simulator** asks it for the metadata-traffic model —
  counter-cache eligibility, the data span of one counter block, whether
  misses walk a Merkle tree or fetch per-block MACs.

Before this layer existed those facts were re-derived in
``core/machine.py``, ``sim/simulator.py``, and the swap path
independently — and had already drifted (multi-block counter runs were
exported one block short). Adding a new scheme now means subclassing
these bases in one module and registering the instance; see
``docs/architecture.md`` for a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..integrity.geometry import TreeGeometry
from ..mem.layout import BLOCK_SIZE, BLOCKS_PER_PAGE, round_to_blocks


@dataclass(frozen=True)
class UpdatePolicy:
    """How an integrity scheme's tree applies updates, timing-side.

    ``deferred=False`` (every eager scheme) walks the tree synchronously
    on each counter writeback. ``deferred=True`` queues the walk and
    drains the queue once it reaches ``batch`` entries (and at end of
    run); ``coalesce=True`` merges queued walks that share a counter
    block before draining, so overlapping dirty paths cost one walk.
    """

    deferred: bool = False
    batch: int = 8
    coalesce: bool = True


class EncryptionScheme:
    """Everything scheme-specific about one encryption baseline.

    Class attributes form the timing-side metadata traffic model; the
    methods serve the functional machine (layout planning, engine
    construction, swap-image counter serialization).
    """

    #: Registry key — the string ``MachineConfig.encryption`` carries.
    key: str = "abstract"

    #: The functional engine maintains counter state in memory.
    uses_counters = False
    #: The timing model routes counter fetches through the counter cache.
    uses_counter_cache = False
    #: Bytes of data whose counters share one 64B counter block (the
    #: timing model's addressing granularity). None when counter-free.
    counter_block_span: int | None = None
    #: Whole counter blocks a page's counter run occupies in a swap image.
    counter_blocks_per_page = 0
    #: Seeds include the physical address: the kernel must decrypt +
    #: re-encrypt pages crossing the memory/disk boundary (section 4.2).
    reencrypt_on_swap = False
    #: Decryption serializes after the data fetch (no counter to prefetch).
    serialized_decrypt = False
    #: Per-L2-line SRAM lost to scheme bookkeeping (Table 1's "VA storage
    #: in L2" for the virtual-address baseline).
    l2_tag_overhead_bytes = 0

    @property
    def image_counter_blocks(self) -> int:
        """Counter blocks reserved in a swap image (min. 1 for format
        stability: counter-free schemes ship one zero block)."""
        return max(1, self.counter_blocks_per_page)

    def counter_region_bytes(self, data_bytes: int) -> int:
        """Size of the physical counter region for a data region."""
        return 0

    def build_engine(self, machine, seed_audit=None):
        """Construct the functional encryption engine for a machine."""
        raise NotImplementedError

    def export_counter_run(self, machine, frame_index: int) -> bytes:
        """Serialize the page's counters for a swap image
        (``image_counter_blocks * BLOCK_SIZE`` bytes, zeros if none)."""
        return bytes(self.image_counter_blocks * BLOCK_SIZE)

    def install_counter_run(self, machine, frame_index: int, raw: bytes) -> None:
        """Place a swapped-in counter run at the (possibly new) frame's
        slot and re-anchor its integrity metadata."""
        return None

    def drop_page_state(self, machine, frame_index: int) -> None:
        """Drop on-chip per-page state for a vacated frame (section 5.1)."""
        return None

    def counter_run_range(self, machine, frame_index: int) -> tuple[int, int] | None:
        """(start, length) of the page's counter run in physical memory.

        The swap path flushes a deferred tree's pending updates over this
        range after :meth:`install_counter_run` — the freshly installed
        metadata must be anchored before the page image can verify.
        None when the scheme keeps no counters.
        """
        return None

    def engine_stats(self, engine) -> dict:
        """Pull-model stat bindings for :func:`repro.obs.adapters.register_machine`:
        {name: zero-arg callable} over the live engine."""
        return {}

    def __repr__(self):
        return f"<{type(self).__name__} {self.key!r}>"


class PagedCounterScheme(EncryptionScheme):
    """Base for AISE-family schemes: one 64B counter block per 4KB page.

    The counter block (64-bit LPID or major counter + 64 x 7-bit minors)
    is engine-parsed, so export/install go through the engine — exactly
    the paper's swap story (section 4.4): the block moves as-is.
    """

    uses_counters = True
    uses_counter_cache = True
    counter_block_span = BLOCKS_PER_PAGE * BLOCK_SIZE  # one page
    counter_blocks_per_page = 1

    def counter_region_bytes(self, data_bytes: int) -> int:
        return data_bytes // (BLOCKS_PER_PAGE * BLOCK_SIZE) * BLOCK_SIZE

    def export_counter_run(self, machine, frame_index: int) -> bytes:
        return machine.encryption.export_counter_block(frame_index)

    def install_counter_run(self, machine, frame_index: int, raw: bytes) -> None:
        machine.encryption.install_counter_block(frame_index, raw[:BLOCK_SIZE])

    def drop_page_state(self, machine, frame_index: int) -> None:
        machine.encryption.drop_cached_counters(frame_index)

    def counter_run_range(self, machine, frame_index: int) -> tuple[int, int] | None:
        page_start = frame_index * BLOCKS_PER_PAGE * BLOCK_SIZE
        return machine.encryption.counter_block_address(page_start), BLOCK_SIZE


class FlatCounterScheme(EncryptionScheme):
    """Base for schemes storing a fixed-width counter per data block.

    ``stamp_bytes`` wide counters are packed back to back in the counter
    region, so one 64B counter block covers ``64 // stamp_bytes`` data
    blocks and a page's counters occupy a whole, block-aligned run of
    ``counter_blocks_per_page`` blocks (the run a swap image carries).
    """

    uses_counters = True
    uses_counter_cache = True
    stamp_bytes = 4

    @property
    def counter_block_span(self) -> int:
        return (BLOCK_SIZE // self.stamp_bytes) * BLOCK_SIZE

    @property
    def counter_blocks_per_page(self) -> int:
        return (BLOCKS_PER_PAGE * self.stamp_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE

    def counter_region_bytes(self, data_bytes: int) -> int:
        return round_to_blocks(data_bytes // BLOCK_SIZE * self.stamp_bytes)

    def page_counter_base(self, machine, frame_index: int) -> int:
        """Physical address of the first counter block of a page's run."""
        return machine.layout.counter_base + frame_index * BLOCKS_PER_PAGE * self.stamp_bytes

    def export_counter_run(self, machine, frame_index: int) -> bytes:
        base = self.page_counter_base(machine, frame_index)
        return b"".join(
            machine.memory.read_block(base + i * BLOCK_SIZE)
            for i in range(self.counter_blocks_per_page)
        )

    def install_counter_run(self, machine, frame_index: int, raw: bytes) -> None:
        base = self.page_counter_base(machine, frame_index)
        for i in range(self.counter_blocks_per_page):
            block = raw[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
            address = base + i * BLOCK_SIZE
            machine.memory.write_block(address, block)
            machine.integrity.update_metadata(address, block)

    def counter_run_range(self, machine, frame_index: int) -> tuple[int, int] | None:
        base = self.page_counter_base(machine, frame_index)
        return base, self.counter_blocks_per_page * BLOCK_SIZE


class IntegrityScheme:
    """Everything scheme-specific about one integrity organization."""

    #: Registry key — the string ``MachineConfig.integrity`` carries.
    key: str = "abstract"

    #: A Merkle tree exists (PRD storage is reserved; counter traffic
    #: walks it in the timing model).
    uses_tree = False
    #: The tree covers data blocks too (standard MT): data misses and
    #: writebacks walk it.
    tree_covers_data = False
    #: Per-block data MACs exist (BMT / MAC-only): data misses fetch them.
    uses_data_macs = False
    #: Default for ``MachineConfig.caches_data_macs`` (section 5.2: the
    #: standard MT caches leaf MACs in L2, the BMT does not).
    caches_data_macs_default = False
    #: Verification happens at all (precise mode stalls on it).
    verifies = True
    #: The scheme is meaningless without counter storage (the BMT).
    requires_counters = False
    #: How the tree applies updates (the timing model's deferral knobs).
    #: Eager schemes keep the default synchronous policy.
    update_policy = UpdatePolicy()
    #: Warm machine reuse is sound for this scheme: after
    #: :meth:`reset_timing_state` a pooled simulator produces results
    #: byte-identical to a freshly constructed one. A scheme keeping
    #: timing state the hook cannot discard must set this False — the
    #: service warm pool (:mod:`repro.service`) then refuses to pool its
    #: machines and builds fresh ones instead.
    warm_reuse_sound = True

    def reset_timing_state(self, sim) -> None:
        """Discard scheme-owned timing-model state ahead of warm reuse.

        Called from :meth:`repro.sim.simulator.TimingSimulator.reset_cold`
        between tenants. The base policy-driven behavior covers the
        builtin schemes: a deferred-update scheme drops its pending walk
        queue — walks the *previous* run still owed the bus must not be
        billed to the next tenant (they are drained, not leaked, before
        a pooled machine is released; this clear is the backstop that
        makes the cold-state contract unconditional). Schemes holding
        other timing state override (and call up to) this hook.
        """
        if self.update_policy.deferred:
            sim._pending_walks.clear()

    def plan_tree(
        self,
        config,
        data_bytes: int,
        counter_base: int,
        counter_bytes: int,
        prd_bytes: int,
        tree_base: int,
    ) -> TreeGeometry | None:
        """Tree geometry over the planned regions (None when treeless)."""
        return None

    def mac_region_bytes(self, config, data_bytes: int) -> int:
        """Size of the per-block data-MAC region."""
        return 0

    def build_engine(self, machine, geometry: TreeGeometry | None):
        """Construct the functional integrity engine for a machine."""
        raise NotImplementedError

    def build_tree(self, machine, geometry: TreeGeometry):
        """Construct the functional tree engine over planned geometry.

        The hook a tree-swapping scheme overrides in one line; engines
        and the machine only ever see the
        :class:`~repro.integrity.merkle.MerkleTreeBase` interface.
        """
        from ..integrity.merkle import MerkleTree

        return MerkleTree(machine.memory, geometry, machine.mac_fn)

    def tree_modules(self) -> tuple[str, ...]:
        """Module names of the tree implementation this scheme's machines
        run — folded into the sweep cache fingerprint so cached cells are
        never served across tree-engine changes."""
        if self.uses_tree:
            return ("repro.integrity.merkle",)
        return ()

    def engine_stats(self, engine) -> dict:
        """Pull-model stat bindings for :func:`repro.obs.adapters.register_machine`:
        {name: zero-arg callable} over the live integrity engine."""
        return {}

    def __repr__(self):
        return f"<{type(self).__name__} {self.key!r}>"
