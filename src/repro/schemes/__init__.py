"""The scheme registry: string keys -> descriptor objects.

``MachineConfig`` validates its ``encryption``/``integrity`` strings
here; ``SecureMemorySystem`` and ``TimingSimulator`` resolve the same
strings to :class:`~repro.schemes.base.EncryptionScheme` /
:class:`~repro.schemes.base.IntegrityScheme` descriptors and consult
*them* instead of dispatching on scheme constants. The built-in schemes
register themselves on import; external code can add its own with
:func:`register_encryption` / :func:`register_integrity` (the evaluation
cache fingerprints registered descriptors, so a new scheme automatically
invalidates stale on-disk results — see ``repro.evalx.parallel``).
"""

from __future__ import annotations

import importlib
import inspect
import os

from ..core.errors import ConfigurationError
from .base import (
    EncryptionScheme,
    FlatCounterScheme,
    IntegrityScheme,
    PagedCounterScheme,
)

_ENCRYPTION: dict[str, EncryptionScheme] = {}
_INTEGRITY: dict[str, IntegrityScheme] = {}


def register_encryption(scheme: EncryptionScheme, replace: bool = False) -> EncryptionScheme:
    """Add an encryption descriptor under its ``key``. Refuses to shadow
    an existing key unless ``replace=True`` (tests swapping a builtin)."""
    if not replace and scheme.key in _ENCRYPTION:
        raise ConfigurationError(f"encryption scheme {scheme.key!r} already registered")
    _ENCRYPTION[scheme.key] = scheme
    return scheme


def register_integrity(scheme: IntegrityScheme, replace: bool = False) -> IntegrityScheme:
    """Add an integrity descriptor under its ``key``."""
    if not replace and scheme.key in _INTEGRITY:
        raise ConfigurationError(f"integrity scheme {scheme.key!r} already registered")
    _INTEGRITY[scheme.key] = scheme
    return scheme


def unregister_encryption(key: str) -> None:
    _ENCRYPTION.pop(key, None)


def unregister_integrity(key: str) -> None:
    _INTEGRITY.pop(key, None)


def encryption_scheme(key: str) -> EncryptionScheme:
    """Resolve an encryption key; ConfigurationError when unknown."""
    try:
        return _ENCRYPTION[key]
    except KeyError:
        raise ConfigurationError(f"unknown encryption scheme {key!r}") from None


def integrity_scheme(key: str) -> IntegrityScheme:
    """Resolve an integrity key; ConfigurationError when unknown."""
    try:
        return _INTEGRITY[key]
    except KeyError:
        raise ConfigurationError(f"unknown integrity scheme {key!r}") from None


def encryption_keys() -> tuple[str, ...]:
    return tuple(_ENCRYPTION)


def integrity_keys() -> tuple[str, ...]:
    return tuple(_INTEGRITY)


def registered_schemes() -> tuple:
    """Every registered descriptor (encryption first, then integrity)."""
    return tuple(_ENCRYPTION.values()) + tuple(_INTEGRITY.values())


def scheme_source_files() -> tuple[str, ...]:
    """Source files that define scheme behaviour: every module of this
    package plus the defining file of each registered descriptor class.

    The evaluation's result cache folds these into its model fingerprint
    (:func:`repro.evalx.parallel.model_fingerprint`), so editing or
    adding a scheme module invalidates cached timing results without
    anyone remembering to update a hard-coded module list.
    """
    files = set()
    package_dir = os.path.dirname(os.path.abspath(__file__))
    for entry in os.listdir(package_dir):
        if entry.endswith(".py"):
            files.add(os.path.join(package_dir, entry))
    for scheme in registered_schemes():
        try:
            source = inspect.getsourcefile(type(scheme))
        except TypeError:
            source = None
        if source:
            files.add(os.path.abspath(source))
        # Tree-engine sources too: a scheme's results depend on which
        # functional tree its machines run, so cached cells from one tree
        # implementation must never be served after the other changes.
        for module_name in getattr(scheme, "tree_modules", tuple)():
            module = importlib.import_module(module_name)
            if getattr(module, "__file__", None):
                files.add(os.path.abspath(module.__file__))
    return tuple(sorted(files))


# Built-in schemes register on import (after the registry exists, since
# the descriptor modules import the classes above through this package).
from .encryption import BUILTIN_ENCRYPTION_SCHEMES  # noqa: E402
from .integrity import BUILTIN_INTEGRITY_SCHEMES  # noqa: E402
from .bmt_lazy import BUILTIN_LAZY_SCHEMES  # noqa: E402

for _scheme in BUILTIN_ENCRYPTION_SCHEMES:
    register_encryption(_scheme)
for _scheme in BUILTIN_INTEGRITY_SCHEMES + BUILTIN_LAZY_SCHEMES:
    register_integrity(_scheme)
del _scheme

__all__ = [
    "EncryptionScheme",
    "IntegrityScheme",
    "PagedCounterScheme",
    "FlatCounterScheme",
    "encryption_scheme",
    "integrity_scheme",
    "encryption_keys",
    "integrity_keys",
    "register_encryption",
    "register_integrity",
    "unregister_encryption",
    "unregister_integrity",
    "registered_schemes",
    "scheme_source_files",
]
