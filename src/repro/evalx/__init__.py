"""Evaluation harness: tables, figures, and the full reproduction report."""

from .figures import ALL_FIGURES, FigureData, figure6, figure7, figure8, figure9, figure10a, figure10b, figure11a, figure11b
from .runner import CONFIGS, Runner, config_named
from .tables import PAPER_TABLE2, TableData, table1, table2
from .report import generate_report, render_figure, render_table
from .export import (
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    table_to_csv,
    table_to_dict,
    table_to_json,
)
from .sweeps import ALL_SWEEPS, counter_cache_sweep, l2_size_sweep, memory_latency_sweep

__all__ = [
    "Runner",
    "CONFIGS",
    "config_named",
    "FigureData",
    "ALL_FIGURES",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10a",
    "figure10b",
    "figure11a",
    "figure11b",
    "TableData",
    "table1",
    "table2",
    "PAPER_TABLE2",
    "generate_report",
    "render_table",
    "render_figure",
    "figure_to_dict",
    "figure_to_json",
    "figure_to_csv",
    "table_to_dict",
    "table_to_json",
    "table_to_csv",
    "ALL_SWEEPS",
    "l2_size_sweep",
    "memory_latency_sweep",
    "counter_cache_sweep",
]
