"""Extension sensitivity sweeps (beyond the paper's own figures).

The paper fixes one machine (1MB L2, 200-cycle memory, 32KB counter
cache). These sweeps vary the machine instead of the protection scheme,
checking that the BMT conclusion is not an artifact of that one design
point — the robustness study a reviewer would ask for.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.config import MachineConfig, baseline_config
from ..sim.simulator import TimingSimulator
from ..workloads.spec2k import spec_trace
from .figures import FigureData

DEFAULT_BENCHES = ("art", "mcf", "swim", "gcc")


def _avg_overhead(config: MachineConfig, benches, events: int) -> float:
    total = 0.0
    for bench in benches:
        trace = spec_trace(bench, events)
        base_config = replace(baseline_config(), l2=config.l2,
                              memory_latency=config.memory_latency,
                              bus_cycles_per_block=config.bus_cycles_per_block)
        base = TimingSimulator(base_config).run(trace)
        result = TimingSimulator(config).run(trace)
        total += result.overhead_vs(base)
    return total / len(benches)


def l2_size_sweep(
    sizes_kb=(512, 1024, 2048, 4096),
    benches=DEFAULT_BENCHES,
    events: int = 30_000,
) -> FigureData:
    """MT vs BMT overhead across L2 capacities.

    Expected shape: MT's pollution penalty shrinks as the L2 grows (the
    nodes fit alongside the data), while BMT is flat everywhere — i.e.
    BMT's advantage is largest exactly where caches are precious.
    """
    fig = FigureData("S1", "Average overhead vs L2 size", "%", shown=())
    for label, integrity in (("aise+mt", "merkle"), ("aise+bmt", "bonsai")):
        series = {}
        for kb in sizes_kb:
            config = MachineConfig(encryption="aise", integrity=integrity)
            config = replace(config, l2=replace(config.l2, size_bytes=kb * 1024))
            series[f"{kb}KB"] = _avg_overhead(config, benches, events)
        fig.add(label, series)
    return fig


def memory_latency_sweep(
    latencies=(100, 200, 400),
    benches=DEFAULT_BENCHES,
    events: int = 30_000,
) -> FigureData:
    """MT vs BMT overhead across DRAM latencies (faster/slower memory)."""
    fig = FigureData("S2", "Average overhead vs memory latency", "%", shown=())
    for label, integrity in (("aise+mt", "merkle"), ("aise+bmt", "bonsai")):
        series = {}
        for latency in latencies:
            config = MachineConfig(encryption="aise", integrity=integrity,
                                   memory_latency=latency)
            series[f"{latency}cy"] = _avg_overhead(config, benches, events)
        fig.add(label, series)
    return fig


def counter_cache_sweep(
    sizes_kb=(8, 32, 128),
    benches=DEFAULT_BENCHES,
    events: int = 30_000,
) -> FigureData:
    """AISE vs global-64 encryption overhead across counter-cache sizes.

    Expected shape: AISE is flat (its reach already covers working sets);
    global-64 chases the cache size — reach, not capacity, is the story.
    """
    fig = FigureData("S3", "Encryption overhead vs counter cache size", "%", shown=())
    for enc in ("aise", "global64"):
        series = {}
        for kb in sizes_kb:
            config = MachineConfig(encryption=enc, integrity="none")
            config = replace(config,
                             counter_cache=replace(config.counter_cache, size_bytes=kb * 1024))
            series[f"{kb}KB"] = _avg_overhead(config, benches, events)
        fig.add(enc, series)
    return fig


ALL_SWEEPS = {
    "l2_size": l2_size_sweep,
    "memory_latency": memory_latency_sweep,
    "counter_cache": counter_cache_sweep,
}
