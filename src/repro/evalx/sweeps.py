"""Extension sensitivity sweeps (beyond the paper's own figures).

The paper fixes one machine (1MB L2, 200-cycle memory, 32KB counter
cache). These sweeps vary the machine instead of the protection scheme,
checking that the BMT conclusion is not an artifact of that one design
point — the robustness study a reviewer would ask for.

Every sweep builds its full (design point x benchmark x {base, protected})
cell list up front and hands it to :func:`repro.evalx.parallel.run_cells`,
so ``workers``/``cache`` parallelize and persist the whole sweep exactly
like the paper-figure grid.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.config import MachineConfig
from .figures import FigureData
from .parallel import Cell, ResultCache, run_cells

DEFAULT_BENCHES = ("art", "mcf", "swim", "gcc")


def _base_for(config: MachineConfig) -> MachineConfig:
    """The unprotected machine sharing a config's non-crypto design point."""
    return replace(MachineConfig.preset("base"), l2=config.l2,
                   memory_latency=config.memory_latency,
                   bus_cycles_per_block=config.bus_cycles_per_block)


def _sweep_overheads(
    points: dict[str, dict[str, MachineConfig]],
    benches,
    events: int,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, dict[str, float]]:
    """Run {series: {x: config}} in one grid; returns averaged overheads.

    Each (series, x, bench) cell is paired with a baseline cell on the
    same design point; the result is the mean overhead across benches.
    """
    cells = []
    for series, xs in points.items():
        for x, config in xs.items():
            for bench in benches:
                cells.append(Cell(bench=bench, label=f"{series}@{x}", config=config))
                cells.append(Cell(bench=bench, label=f"base@{x}",
                                  config=_base_for(config)))
    computed = run_cells(cells, events=events, workers=workers, cache=cache)
    by_key = {(c.bench, c.label): r for c, r in computed.items()}
    overheads: dict[str, dict[str, float]] = {}
    for series, xs in points.items():
        overheads[series] = {}
        for x, config in xs.items():
            total = 0.0
            for bench in benches:
                base = by_key[(bench, f"base@{x}")]
                total += by_key[(bench, f"{series}@{x}")].overhead_vs(base)
            overheads[series][x] = total / len(benches)
    return overheads


def l2_size_sweep(
    sizes_kb=(512, 1024, 2048, 4096),
    benches=DEFAULT_BENCHES,
    events: int = 30_000,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> FigureData:
    """MT vs BMT overhead across L2 capacities.

    Expected shape: MT's pollution penalty shrinks as the L2 grows (the
    nodes fit alongside the data), while BMT is flat everywhere — i.e.
    BMT's advantage is largest exactly where caches are precious.
    """
    fig = FigureData("S1", "Average overhead vs L2 size", "%", shown=())
    points = {}
    for label, integrity in (("aise+mt", "merkle"), ("aise+bmt", "bonsai")):
        points[label] = {}
        for kb in sizes_kb:
            config = MachineConfig(encryption="aise", integrity=integrity)
            config = replace(config, l2=replace(config.l2, size_bytes=kb * 1024))
            points[label][f"{kb}KB"] = config
    for label, series in _sweep_overheads(points, benches, events, workers, cache).items():
        fig.add(label, series)
    return fig


def memory_latency_sweep(
    latencies=(100, 200, 400),
    benches=DEFAULT_BENCHES,
    events: int = 30_000,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> FigureData:
    """MT vs BMT overhead across DRAM latencies (faster/slower memory)."""
    fig = FigureData("S2", "Average overhead vs memory latency", "%", shown=())
    points = {
        label: {
            f"{latency}cy": MachineConfig(encryption="aise", integrity=integrity,
                                          memory_latency=latency)
            for latency in latencies
        }
        for label, integrity in (("aise+mt", "merkle"), ("aise+bmt", "bonsai"))
    }
    for label, series in _sweep_overheads(points, benches, events, workers, cache).items():
        fig.add(label, series)
    return fig


def counter_cache_sweep(
    sizes_kb=(8, 32, 128),
    benches=DEFAULT_BENCHES,
    events: int = 30_000,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> FigureData:
    """AISE vs global-64 encryption overhead across counter-cache sizes.

    Expected shape: AISE is flat (its reach already covers working sets);
    global-64 chases the cache size — reach, not capacity, is the story.
    """
    fig = FigureData("S3", "Encryption overhead vs counter cache size", "%", shown=())
    points = {}
    for enc in ("aise", "global64"):
        points[enc] = {}
        for kb in sizes_kb:
            config = MachineConfig(encryption=enc, integrity="none")
            config = replace(config,
                             counter_cache=replace(config.counter_cache, size_bytes=kb * 1024))
            points[enc][f"{kb}KB"] = config
    for label, series in _sweep_overheads(points, benches, events, workers, cache).items():
        fig.add(label, series)
    return fig


ALL_SWEEPS = {
    "l2_size": l2_size_sweep,
    "memory_latency": memory_latency_sweep,
    "counter_cache": counter_cache_sweep,
}
