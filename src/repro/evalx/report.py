"""Text rendering of tables and figures, and the full-report entry point.

``python -m repro.evalx.report [--events N] [--out FILE]`` regenerates
every table and figure of the paper and prints (or writes) them as text —
the artifact EXPERIMENTS.md is built from.
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_FIGURES, FigureData
from .runner import Runner
from .tables import TableData, table1, table2


def render_table(table: TableData) -> str:
    """Render a TableData as aligned monospace text."""
    widths = {col: len(col) for col in table.columns}
    for row in table.rows:
        for col in table.columns:
            widths[col] = max(widths[col], len(str(row[col])))
    lines = [f"Table {table.table}: {table.title}"]
    header = " | ".join(col.ljust(widths[col]) for col in table.columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in table.columns))
    for row in table.rows:
        lines.append(" | ".join(str(row[col]).ljust(widths[col]) for col in table.columns))
    return "\n".join(lines)


def render_figure(fig: FigureData) -> str:
    """Render a figure's series as a text table (shown benchmarks + avg)."""
    some_series = next(iter(fig.series.values()))
    if fig.shown:
        keys = [k for k in fig.shown if k in some_series] + ["avg"]
    else:
        keys = [k for k in some_series if k != "avg"]
    names = list(fig.series)
    name_width = max(len(n) for n in names)
    lines = [f"Figure {fig.figure}: {fig.title}"]
    header = " " * name_width + "  " + "".join(f"{k:>9}" for k in keys)
    lines.append(header)
    for name in names:
        values = fig.series[name]
        cells = "".join(
            f"{values.get(k, float('nan')) * 100:8.1f}%" for k in keys
        )
        lines.append(f"{name.ljust(name_width)}  {cells}")
    return "\n".join(lines)


def generate_report(
    events: int = 120_000,
    figures: list[str] | None = None,
    stream=None,
    data_dir: str | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
) -> str:
    """Run the whole evaluation and return the rendered report.

    With ``data_dir`` set, every table and figure is also exported as
    machine-readable JSON and CSV into that directory. ``workers`` > 1
    (or 0 for one-per-core) prefetches the full simulation grid through
    the process pool before any figure renders; ``cache_dir`` persists
    results on disk so the next report is near-free.
    """
    from .export import figure_to_csv, figure_to_json, table_to_csv, table_to_json

    out = []

    def emit(text: str) -> None:
        out.append(text)
        if stream is not None:
            print(text, file=stream, flush=True)

    def export(name: str, json_text: str, csv_text: str) -> None:
        if data_dir is None:
            return
        import os

        os.makedirs(data_dir, exist_ok=True)
        with open(os.path.join(data_dir, f"{name}.json"), "w") as f:
            f.write(json_text + "\n")
        with open(os.path.join(data_dir, f"{name}.csv"), "w") as f:
            f.write(csv_text)

    emit("=" * 72)
    emit("AISE + Bonsai Merkle Trees (MICRO 2007) - reproduction report")
    emit(f"trace length: {events} L2 accesses/benchmark (25% warmup)")
    emit("=" * 72)
    emit("")
    for table in (table1(), table2()):
        emit(render_table(table))
        emit("")
        export(f"table{table.table}", table_to_json(table), table_to_csv(table))
    runner = Runner(events=events, workers=workers, cache_dir=cache_dir)
    if workers != 1 or cache_dir is not None:
        from .figures import prefetch_figures

        start = time.perf_counter()
        cells = prefetch_figures(runner, figures)
        pool = "1 worker" if workers == 1 else f"{workers or 'auto'} workers"
        emit(f"[prefetched {cells} grid cells in {time.perf_counter() - start:.1f}s ({pool})]")
        emit("")
    for fig_id, builder in ALL_FIGURES.items():
        if figures and fig_id not in figures:
            continue
        start = time.perf_counter()
        fig = builder(runner)
        emit(render_figure(fig))
        emit(f"  [{time.perf_counter() - start:.1f}s]")
        emit("")
        export(f"figure{fig_id}", figure_to_json(fig), figure_to_csv(fig))
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also reachable via ``python -m repro report``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=120_000,
                        help="L2 accesses per benchmark trace")
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset of figure ids (e.g. 6 7 10a)")
    parser.add_argument("--out", default=None, help="write report to file")
    parser.add_argument("--data-dir", default=None,
                        help="also export each table/figure as JSON + CSV here")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for the simulation grid (0 = per core)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="persistent result-cache directory")
    args = parser.parse_args(argv)
    from ..obs.log import configure

    configure()  # no-op refinement when the repro CLI already configured
    report = generate_report(args.events, args.figures,
                             stream=sys.stdout if not args.out else None,
                             data_dir=args.data_dir,
                             workers=args.workers, cache_dir=args.cache)
    if args.out:
        from ..obs.log import get_logger

        with open(args.out, "w") as f:
            f.write(report + "\n")
        get_logger("evalx.report").info("report written to %s", args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
