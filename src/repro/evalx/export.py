"""Machine-readable exports of tables and figures (JSON / CSV).

Figures render to text for the report; downstream plotting wants data.
"""

from __future__ import annotations

import csv
import io
import json

from .figures import FigureData
from .tables import TableData


def figure_to_dict(fig: FigureData) -> dict:
    """Plain-data (JSON-ready) form of a figure."""
    return {
        "figure": fig.figure,
        "title": fig.title,
        "unit": fig.unit,
        "series": {name: dict(values) for name, values in fig.series.items()},
    }


def figure_to_json(fig: FigureData, indent: int = 2) -> str:
    """Serialize a figure as pretty-printed JSON."""
    return json.dumps(figure_to_dict(fig), indent=indent, sort_keys=True)


def figure_to_csv(fig: FigureData) -> str:
    """One row per x-value, one column per series."""
    names = list(fig.series)
    keys: list = []
    for values in fig.series.values():
        for key in values:
            if key not in keys:
                keys.append(key)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["x", *names])
    for key in keys:
        writer.writerow([key] + [fig.series[name].get(key, "") for name in names])
    return out.getvalue()


def table_to_dict(table: TableData) -> dict:
    """Plain-data (JSON-ready) form of a table."""
    return {
        "table": table.table,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [dict(row) for row in table.rows],
    }


def table_to_json(table: TableData, indent: int = 2) -> str:
    """Serialize a table as pretty-printed JSON."""
    return json.dumps(table_to_dict(table), indent=indent, sort_keys=True)


def table_to_csv(table: TableData) -> str:
    """Render a table as CSV (header row + one row per entry)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow([row[col] for col in table.columns])
    return out.getvalue()
