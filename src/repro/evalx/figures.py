"""Regeneration of every figure in the paper's evaluation (section 7).

Each ``figureN`` function returns a :class:`FigureData`: named series of
per-benchmark values plus the all-21 average — exactly the rows the
paper's bar charts plot. ``repro.evalx.report`` renders them as text.

Paper shape targets (see EXPERIMENTS.md for measured-vs-paper):

* Fig 6  — global64+MT ~26% average overhead (max ~151%) vs AISE+BMT
           ~1.8% (max ~13%).
* Fig 7  — AISE ~1.6% < global-32 ~4% < global-64 ~6%.
* Fig 8  — AISE+MT ~12.1% vs AISE+BMT ~1.8%; integrity dominates.
* Fig 9  — L2 data occupancy ~68% under MT, ~98% under BMT.
* Fig 10 — L2 miss rate 37.8 -> 47.5 (MT) vs 38.5 (BMT); bus util
           14 -> 24 vs 16.
* Fig 11 — MT overhead grows steeply with MAC size (3.9 -> 53.2%),
           BMT stays nearly flat (1.4 -> 2.4%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.spec2k import MEMORY_BOUND
from .runner import Runner

MAC_SIZES = (32, 64, 128, 256)

# The registry labels each figure simulates ("base" included whenever the
# figure normalizes against it). Figure 11 additionally spans MAC_SIZES.
# prefetch_figures() uses this map to warm a Runner's memo with one pool
# fan-out before any figure builder runs.
FIGURE_LABELS: dict[str, tuple] = {
    "6": ("base", "global64+mt", "aise+bmt"),
    "7": ("base", "global32", "global64", "aise"),
    "8": ("base", "aise", "aise+mt", "aise+bmt"),
    "9": ("base", "aise+mt", "aise+bmt"),
    "10a": ("base", "aise+mt", "aise+bmt"),
    "10b": ("base", "aise+mt", "aise+bmt"),
    "11a": ("base", "aise+mt", "aise+bmt"),
    "11b": ("base", "aise+mt", "aise+bmt"),
}
_MAC_SWEEP_FIGURES = ("11a", "11b")


def prefetch_figures(runner: Runner, figures=None, workers: int | None = None) -> int:
    """Simulate every cell the requested figures need, in one grid run.

    Returns the number of grid cells resolved. With ``figures=None`` the
    whole evaluation (every figure) is prefetched.
    """
    wanted = tuple(figures) if figures is not None else tuple(FIGURE_LABELS)
    labels: list = []
    mac_sweep = False
    for fig_id in wanted:
        for label in FIGURE_LABELS.get(fig_id, ()):
            if label not in labels:
                labels.append(label)
        mac_sweep = mac_sweep or fig_id in _MAC_SWEEP_FIGURES
    if not labels:
        return 0
    cells = runner.prefetch(labels=labels, workers=workers)
    if mac_sweep:
        # Figure 11 sweeps MAC sizes for the two tree schemes. mac_bits=None
        # rides along so the default-size results are memoized under both
        # keys (the figures index them as None, not 128).
        cells += runner.prefetch(
            labels=("aise+mt", "aise+bmt"),
            mac_bits=(None, *MAC_SIZES),
            workers=workers,
        )
    return cells


@dataclass
class FigureData:
    """Series of per-benchmark values, as plotted in one figure panel."""

    figure: str
    title: str
    unit: str  # "%" for overheads/rates/fractions
    series: dict = field(default_factory=dict)  # name -> {bench: value}
    shown: tuple = MEMORY_BOUND  # benchmarks plotted individually

    def add(self, name: str, values: dict) -> None:
        """Attach one named series ({x-key: value})."""
        self.series[name] = values

    def average(self, name: str) -> float:
        """Mean of a series over its per-benchmark values (excluding 'avg')."""
        values = self.series[name]
        per_bench = [v for k, v in values.items() if k != "avg"]
        return sum(per_bench) / len(per_bench)

    def with_averages(self) -> "FigureData":
        """Add an 'avg' entry to every series; returns self for chaining."""
        for values in self.series.values():
            per_bench = [v for k, v in values.items() if k != "avg"]
            values["avg"] = sum(per_bench) / len(per_bench)
        return self


def figure6(runner: Runner) -> FigureData:
    """Execution-time overhead: AISE+BMT vs global64+MT (normalized)."""
    fig = FigureData("6", "Overhead: AISE+BMT vs 64-bit global counter + Merkle Tree", "%")
    for label in ("global64+mt", "aise+bmt"):
        fig.add(label, {b: runner.overhead(b, label) for b in runner.benchmarks})
    return fig.with_averages()


def figure7(runner: Runner) -> FigureData:
    """Encryption-only overhead: AISE vs global counter schemes."""
    fig = FigureData("7", "Overhead: AISE vs global counter encryption (no integrity)", "%")
    for label in ("global32", "global64", "aise"):
        fig.add(label, {b: runner.overhead(b, label) for b in runner.benchmarks})
    return fig.with_averages()


def figure8(runner: Runner) -> FigureData:
    """AISE alone vs AISE+MT vs AISE+BMT: integrity verification cost."""
    fig = FigureData("8", "Overhead: AISE / AISE+MT / AISE+BMT", "%")
    for label in ("aise", "aise+mt", "aise+bmt"):
        fig.add(label, {b: runner.overhead(b, label) for b in runner.benchmarks})
    return fig.with_averages()


def figure9(runner: Runner) -> FigureData:
    """L2 cache pollution: fraction of L2 capacity holding data."""
    fig = FigureData("9", "Fraction of L2 occupied by data blocks", "%")
    fig.add("no-integrity", {b: runner.result(b, "base").l2_data_fraction for b in runner.benchmarks})
    fig.add("aise+mt", {b: runner.result(b, "aise+mt").l2_data_fraction for b in runner.benchmarks})
    fig.add("aise+bmt", {b: runner.result(b, "aise+bmt").l2_data_fraction for b in runner.benchmarks})
    return fig.with_averages()


def figure10a(runner: Runner) -> FigureData:
    """L2 (local) miss rates: unprotected vs MT vs BMT."""
    fig = FigureData("10a", "L2 cache miss rate", "%")
    fig.add("base", {b: runner.result(b, "base").l2_miss_rate for b in runner.benchmarks})
    fig.add("aise+mt", {b: runner.result(b, "aise+mt").l2_miss_rate for b in runner.benchmarks})
    fig.add("aise+bmt", {b: runner.result(b, "aise+bmt").l2_miss_rate for b in runner.benchmarks})
    return fig.with_averages()


def figure10b(runner: Runner) -> FigureData:
    """Memory bus utilization: unprotected vs MT vs BMT."""
    fig = FigureData("10b", "Bus utilization", "%")
    fig.add("base", {b: runner.result(b, "base").bus_utilization for b in runner.benchmarks})
    fig.add("aise+mt", {b: runner.result(b, "aise+mt").bus_utilization for b in runner.benchmarks})
    fig.add("aise+bmt", {b: runner.result(b, "aise+bmt").bus_utilization for b in runner.benchmarks})
    return fig.with_averages()


def figure11a(runner: Runner, mac_sizes: tuple = MAC_SIZES) -> FigureData:
    """Average overhead sensitivity to MAC size, MT vs BMT."""
    fig = FigureData("11a", "Average overhead across MAC sizes", "%", shown=())
    fig.add("aise+mt", {f"{bits}b": runner.average_overhead("aise+mt", bits) for bits in mac_sizes})
    fig.add("aise+bmt", {f"{bits}b": runner.average_overhead("aise+bmt", bits) for bits in mac_sizes})
    return fig


def figure11b(runner: Runner, mac_sizes: tuple = MAC_SIZES) -> FigureData:
    """Average L2 data occupancy across MAC sizes, MT vs BMT."""
    fig = FigureData("11b", "Average L2 data occupancy across MAC sizes", "%", shown=())
    for label in ("aise+mt", "aise+bmt"):
        fig.add(
            label,
            {
                f"{bits}b": runner.average(
                    lambda bench, bits=bits: runner.result(bench, label, bits).l2_data_fraction
                )
                for bits in mac_sizes
            },
        )
    return fig


ALL_FIGURES = {
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10a": figure10a,
    "10b": figure10b,
    "11a": figure11a,
    "11b": figure11b,
}
