"""Parallel, disk-cached evaluation engine.

The paper's evaluation is one (21 benchmarks x 7 configurations) grid,
and every cell is independent: each simulates a deterministic trace on a
fresh :class:`~repro.sim.simulator.TimingSimulator`. This module fans
that grid out across CPU cores with a :class:`ProcessPoolExecutor` and
backs it with a persistent on-disk result cache, so

* a full sweep costs wall-clock roughly ``serial / workers``,
* worker results are **bit-identical** to serial ones (same trace, same
  model, and every value survives the JSON round-trip losslessly — a
  repo invariant the determinism tests enforce), and
* regenerating figures after an unrelated edit is near-free: the cache
  is keyed by trace digest + machine-config fingerprint + a fingerprint
  of the timing-critical source modules, so it invalidates itself
  exactly when a result could change.

Degradation is graceful: a crashed worker (or a broken pool) causes the
affected cells to be re-simulated serially in the parent; a corrupt
cache record is dropped, recomputed, and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass

from ..core.config import CacheConfig, MachineConfig
from ..obs.log import get_logger
from ..sim.results import SimResult
from ..sim.simulator import MODEL_VERSION, TimingSimulator
from ..sim.trace import Trace
from ..workloads.spec2k import spec_trace

log = get_logger("evalx.parallel")

# Default location of the shared result cache (gitignored).
DEFAULT_CACHE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results", "cache",
)


def default_workers() -> int:
    """Worker count for ``workers=0`` ("use the machine"): one per core."""
    return os.cpu_count() or 1


# -- machine-config serialization ---------------------------------------------


def config_to_dict(config: MachineConfig) -> dict:
    """Plain-data form of a MachineConfig (JSON-ready, nested caches too)."""
    return asdict(config)


def config_from_dict(data: dict) -> MachineConfig:
    """Rebuild a MachineConfig from :func:`config_to_dict` output."""
    data = dict(data)
    for key in ("l1d", "l1i", "l2", "counter_cache"):
        if isinstance(data.get(key), dict):
            data[key] = CacheConfig(**data[key])
    if isinstance(data.get("node_cache"), dict):
        data["node_cache"] = CacheConfig(**data["node_cache"])
    return MachineConfig(**data)


def config_fingerprint(config: MachineConfig) -> str:
    """Stable digest of every field of a MachineConfig."""
    payload = json.dumps(config_to_dict(config), sort_keys=True)
    # Cache keying, not an integrity guarantee — unkeyed is fine here.
    return hashlib.sha256(payload.encode()).hexdigest()  # repro: allow(SEC002)


# -- model fingerprint (cache invalidation on code change) --------------------

# Fixed modules whose source can change a SimResult for an unchanged
# (trace, config): the simulator and everything it simulates with, plus
# trace generation. Scheme descriptors are NOT listed here — they are
# discovered from the registry so a newly registered scheme (even one
# defined outside the repo) invalidates the cache automatically.
_STATIC_TIMING_MODULES = (
    "repro.core.config",
    "repro.core.machine",
    "repro.fastpath",
    "repro.integrity.geometry",
    "repro.mem.bus",
    "repro.mem.cache",
    "repro.mem.layout",
    "repro.obs.adapters",
    "repro.obs.registry",
    "repro.sim.results",
    "repro.sim.simulator",
    "repro.sim.trace",
    "repro.workloads.spec2k",
    "repro.workloads.synthetic",
)


def timing_modules() -> tuple[str, ...]:
    """Every module whose source feeds the model fingerprint.

    The static core above, plus the whole :mod:`repro.schemes` package
    (walked, not hard-coded), plus the defining module of every
    *registered* scheme descriptor — so third-party schemes registered
    from outside the package are fingerprinted too.
    """
    import pkgutil

    from .. import schemes

    from .. import fastpath

    names = set(_STATIC_TIMING_MODULES)
    names.add("repro.schemes")
    names.update(
        info.name for info in pkgutil.iter_modules(schemes.__path__, "repro.schemes.")
    )
    # repro.fastpath is a package (per-event engine + trace pre-compiler);
    # walk it like repro.schemes so every engine module is fingerprinted.
    names.update(
        info.name for info in pkgutil.iter_modules(fastpath.__path__, "repro.fastpath.")
    )
    names.update(type(scheme).__module__ for scheme in schemes.registered_schemes())
    return tuple(sorted(names))


_model_fingerprints: dict[tuple, str] = {}


def model_fingerprint() -> str:
    """Digest of the timing model: MODEL_VERSION + registered scheme keys
    + timing-critical sources.

    Any edit to the modules of :func:`timing_modules` changes the
    fingerprint and thereby invalidates every cached result —
    conservative (comment edits also invalidate) but safe: a stale cache
    can never masquerade as a fresh simulation. Registering or removing
    a scheme re-keys the memo and changes the digest even when no
    tracked source file changed.
    """
    import importlib

    from ..schemes import encryption_keys, integrity_keys

    modules = timing_modules()
    registered = ("enc",) + encryption_keys() + ("int",) + integrity_keys()
    memo_key = (modules, registered)
    cached = _model_fingerprints.get(memo_key)
    if cached is not None:
        return cached

    h = hashlib.sha256(MODEL_VERSION.encode())  # repro: allow(SEC002)
    for key in registered:
        h.update(key.encode())
    for name in modules:
        try:
            module = importlib.import_module(name)
            source = getattr(module, "__file__", None)
        except ImportError:
            source = None
        if source is None:
            h.update(f"<no source: {name}>".encode())
            continue
        with open(source, "rb") as f:
            h.update(f.read())
    fingerprint = h.hexdigest()[:20]
    _model_fingerprints[memo_key] = fingerprint
    return fingerprint


# -- the grid -----------------------------------------------------------------


@dataclass(frozen=True)
class Cell:
    """One point of the evaluation grid: a benchmark under a configuration.

    ``label`` and ``mac_bits`` are reporting keys (what the figures index
    by); ``config`` is the fully-resolved machine the cell simulates —
    two cells with the same label but different configs (as in the
    sensitivity sweeps) are distinct grid points.
    """

    bench: str
    label: str
    config: MachineConfig
    mac_bits: int | None = None

    @property
    def key(self) -> tuple:
        return (self.bench, self.label, self.mac_bits)


# Worker-local trace memo: a pool worker executes many cells, typically
# cycling over few benchmarks, and a kept Trace carries its decoded form
# and compiled lowerings (repro.fastpath.compiled) with it — so sweep
# cells sharing a trace replay one lowering instead of re-generating and
# re-lowering per cell. Bounded: a grid rarely cycles more benchmarks
# than this concurrently, and each entry holds megabytes.
_worker_traces: dict[tuple, "object"] = {}
_WORKER_TRACE_CAPACITY = 8


def _worker_trace(bench: str, events: int):
    key = (bench, events)
    trace = _worker_traces.get(key)
    if trace is None:
        while len(_worker_traces) >= _WORKER_TRACE_CAPACITY:
            _worker_traces.pop(next(iter(_worker_traces)))
        trace = _worker_traces[key] = spec_trace(bench, events)
    return trace


def _simulate_cell(payload: tuple) -> dict:
    """Worker entry point: simulate one cell, return the result as a dict.

    Module-level (picklable under both fork and spawn); obtains the trace
    from the worker-local memo (regenerated on first use) — trace
    generation is seeded by benchmark name, so every process sees the
    identical event stream.
    """
    bench, events, config, label, overlap, warmup, metrics = payload
    trace = _worker_trace(bench, events)
    result = TimingSimulator(config, overlap=overlap).run(
        trace, label=label, warmup=warmup, collect_metrics=metrics
    )
    return result.to_dict()


# -- the persistent cache -----------------------------------------------------


class ResultCache:
    """A directory of JSON records, one per simulated grid cell.

    Records are written atomically (temp file + rename) so concurrent
    sweeps can share one cache directory; a corrupt or stale record is
    deleted and treated as a miss. Keys fold in everything a result
    depends on: the trace's content digest, the full machine config, the
    runner knobs (overlap, warmup), and the model fingerprint.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        # A worker killed between mkstemp and os.replace leaves its temp
        # file behind; nothing ever references one again, so sweep them
        # here. Records themselves are immune — the rename is atomic.
        self.stale_tmp = 0
        for name in os.listdir(root):
            if name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(root, name))
                except OSError:
                    continue
                self.stale_tmp += 1

    def key_for(self, trace_digest: str, config: MachineConfig,
                overlap: float, warmup: float, metrics: bool = False) -> str:
        payload = {
            "trace": trace_digest,
            "config": config_to_dict(config),
            "overlap": overlap,
            "warmup": warmup,
            "model": model_fingerprint(),
        }
        if metrics:
            # Only metric-carrying records get the extra key component, so
            # every pre-existing cache key (and record) stays valid.
            payload["metrics"] = True
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:40]  # repro: allow(SEC002)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> SimResult | None:
        path = self._path(key)
        try:
            with open(path) as f:
                record = json.load(f)
            result = SimResult.from_dict(record["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Corrupt record: drop it and recompute (it will be rewritten).
            self.corrupt += 1
            self.misses += 1
            log.warning("dropping corrupt cache record %s (%s)", path, exc)
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult, cell: Cell | None = None) -> None:
        record = {"key": key, "result": result.to_dict()}
        if cell is not None:
            # Human-readable provenance; not part of the key.
            record["cell"] = {"bench": cell.bench, "label": cell.label,
                              "mac_bits": cell.mac_bits}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(record, f, sort_keys=True)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".json"))


# -- the engine ---------------------------------------------------------------


def run_cells(
    cells,
    events: int,
    workers: int = 1,
    cache: ResultCache | None = None,
    overlap: float = 0.7,
    warmup: float = 0.25,
    trace_provider=None,
    progress=None,
    metrics: bool = False,
) -> dict[Cell, SimResult]:
    """Simulate every cell, fanning out across ``workers`` processes.

    * ``workers <= 1`` runs serially in this process (no pool, no IPC) —
      the reference the determinism tests compare the pool against;
      ``workers == 0`` means "one per core".
    * ``cache`` short-circuits cells whose results are already on disk
      and persists fresh ones.
    * ``trace_provider`` (bench -> Trace) supplies traces for digest
      computation; defaults to regenerating via ``spec_trace``. Callers
      with memoized traces (the Runner) pass theirs to avoid regeneration.
    * ``progress`` (done, total, cell) is called after each cell resolves.
    * ``metrics`` attaches each cell's metrics-registry snapshot to its
      ``SimResult.metrics`` (cached under distinct keys, so metric-free
      and metric-carrying sweeps never serve each other stale records).

    Returns {cell: SimResult}, one entry per *distinct* cell. Cells that
    simulate the same (bench, config, label) — e.g. mac_bits=None and an
    explicit override equal to the default — share one simulation. Cells
    that crash a worker are retried serially in the parent, so one bad
    cell degrades throughput, not coverage.
    """
    distinct: list[Cell] = list(dict.fromkeys(cells))
    if workers == 0:
        workers = default_workers()
    base_provider = trace_provider or (lambda bench: spec_trace(bench, events))
    # Memoize per sweep: the digest pass and the serial path then share
    # one Trace per benchmark, and with it the decoded columns and the
    # compiled lowering — every serial cell on the same trace replays one
    # pre-compilation (the multiplicative evalx win; pool workers get the
    # same effect from the module-level memo above).
    trace_memo: dict[str, object] = {}

    def provider(bench: str):
        trace = trace_memo.get(bench)
        if trace is None:
            trace = trace_memo[bench] = base_provider(bench)
        return trace
    # Collapse cells that would run the identical simulation.
    twins: dict[tuple, list[Cell]] = {}
    for cell in distinct:
        twins.setdefault((cell.bench, cell.config, cell.label), []).append(cell)
    unique = [group[0] for group in twins.values()]
    results: dict[Cell, SimResult] = {}
    keys: dict[Cell, str] = {}
    digests: dict[str, str] = {}
    pending: list[Cell] = []

    for cell in unique:
        if cache is None:
            pending.append(cell)
            continue
        digest = digests.get(cell.bench)
        if digest is None:
            digest = digests[cell.bench] = provider(cell.bench).digest()
        key = keys[cell] = cache.key_for(digest, cell.config, overlap, warmup,
                                         metrics=metrics)
        hit = cache.get(key)
        if hit is not None:
            results[cell] = hit
        else:
            pending.append(cell)

    total = len(unique)
    done = total - len(pending)
    if cache is not None and done:
        log.info("result cache: %d/%d cells already on disk", done, total)

    def finish(cell: Cell, result: SimResult) -> None:
        nonlocal done
        results[cell] = result
        if cache is not None:
            cache.put(keys[cell], result, cell)
        done += 1
        log.info("cell %d/%d: %s/%s done", done, total, cell.bench, cell.label)
        if progress is not None:
            progress(done, total, cell)

    def serial(cell: Cell) -> SimResult:
        trace = provider(cell.bench)
        sim = TimingSimulator(cell.config, overlap=overlap)
        return sim.run(trace, label=cell.label, warmup=warmup,
                       collect_metrics=metrics)

    def spread() -> dict[Cell, SimResult]:
        """Fan each group's one result back out to its twin cells."""
        for group in twins.values():
            for twin in group[1:]:
                results[twin] = results[group[0]]
        return {cell: results[cell] for cell in distinct}

    if not pending:
        return spread()

    if workers <= 1:
        for cell in pending:
            finish(cell, serial(cell))
        return spread()

    payloads = {
        cell: (cell.bench, events, cell.config, cell.label, overlap, warmup, metrics)
        for cell in pending
    }
    retry: list[Cell] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
        futures = {pool.submit(_simulate_cell, payloads[cell]): cell for cell in pending}
        for future, cell in futures.items():
            try:
                finish(cell, SimResult.from_dict(future.result()))
            except Exception as exc:  # worker crash / broken pool
                log.warning("worker failed on %s/%s (%s); retrying serially",
                            cell.bench, cell.label, exc)
                retry.append(cell)
    for cell in retry:
        finish(cell, serial(cell))
    return spread()
