"""Parallel, disk-cached evaluation engine.

The paper's evaluation is one (21 benchmarks x 7 configurations) grid,
and every cell is independent: each simulates a deterministic trace on a
fresh :class:`~repro.sim.simulator.TimingSimulator`. This module fans
that grid out across CPU cores with a :class:`ProcessPoolExecutor` and
backs it with a persistent on-disk result cache, so

* a full sweep costs wall-clock roughly ``serial / workers``,
* worker results are **bit-identical** to serial ones (same trace, same
  model, and every value survives the JSON round-trip losslessly — a
  repo invariant the determinism tests enforce), and
* regenerating figures after an unrelated edit is near-free: the cache
  is keyed by trace digest + machine-config fingerprint + a fingerprint
  of the timing-critical source modules, so it invalidates itself
  exactly when a result could change.

Degradation is graceful: a crashed worker (or a broken pool) causes the
affected cells to be re-simulated serially in the parent; a corrupt
cache record is dropped, recomputed, and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass

from ..core.config import CacheConfig, MachineConfig
from ..obs import fleet as fleet_obs
from ..obs.log import get_logger
from ..sim.results import SimResult
from ..sim.simulator import MODEL_VERSION, TimingSimulator
from ..sim.trace import Trace
from ..workloads.spec2k import spec_trace

log = get_logger("evalx.parallel")

# Default location of the shared result cache (gitignored).
DEFAULT_CACHE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results", "cache",
)


def default_workers() -> int:
    """Worker count for ``workers=0`` ("use the machine"): one per core."""
    return os.cpu_count() or 1


# -- machine-config serialization ---------------------------------------------


def config_to_dict(config: MachineConfig) -> dict:
    """Plain-data form of a MachineConfig (JSON-ready, nested caches too)."""
    return asdict(config)


def config_from_dict(data: dict) -> MachineConfig:
    """Rebuild a MachineConfig from :func:`config_to_dict` output."""
    data = dict(data)
    for key in ("l1d", "l1i", "l2", "counter_cache"):
        if isinstance(data.get(key), dict):
            data[key] = CacheConfig(**data[key])
    if isinstance(data.get("node_cache"), dict):
        data["node_cache"] = CacheConfig(**data["node_cache"])
    return MachineConfig(**data)


def config_fingerprint(config: MachineConfig) -> str:
    """Stable digest of every field of a MachineConfig."""
    payload = json.dumps(config_to_dict(config), sort_keys=True)
    # Cache keying, not an integrity guarantee — unkeyed is fine here.
    return hashlib.sha256(payload.encode()).hexdigest()  # repro: allow(SEC002)


# -- model fingerprint (cache invalidation on code change) --------------------

# Fixed modules whose source can change a SimResult for an unchanged
# (trace, config): the simulator and everything it simulates with, plus
# trace generation. Scheme descriptors are NOT listed here — they are
# discovered from the registry so a newly registered scheme (even one
# defined outside the repo) invalidates the cache automatically.
_STATIC_TIMING_MODULES = (
    "repro.core.config",
    "repro.core.machine",
    "repro.fastpath",
    "repro.integrity.geometry",
    "repro.mem.bus",
    "repro.mem.cache",
    "repro.mem.layout",
    "repro.obs.adapters",
    "repro.obs.registry",
    "repro.sim.results",
    "repro.sim.simulator",
    "repro.sim.trace",
    "repro.workloads.spec2k",
    "repro.workloads.synthetic",
)


def timing_modules() -> tuple[str, ...]:
    """Every module whose source feeds the model fingerprint.

    The static core above, plus the whole :mod:`repro.schemes` package
    (walked, not hard-coded), plus the defining module of every
    *registered* scheme descriptor — so third-party schemes registered
    from outside the package are fingerprinted too — plus each
    descriptor's declared tree-engine modules
    (:meth:`~repro.schemes.base.IntegrityScheme.tree_modules`), so a
    cached cell from one tree implementation is never served after
    another implementation (or an edit to one) changes the model.
    """
    import pkgutil

    from .. import schemes

    from .. import fastpath

    names = set(_STATIC_TIMING_MODULES)
    names.add("repro.schemes")
    names.update(
        info.name for info in pkgutil.iter_modules(schemes.__path__, "repro.schemes.")
    )
    # repro.fastpath is a package (per-event engine + trace pre-compiler);
    # walk it like repro.schemes so every engine module is fingerprinted.
    names.update(
        info.name for info in pkgutil.iter_modules(fastpath.__path__, "repro.fastpath.")
    )
    for scheme in schemes.registered_schemes():
        names.add(type(scheme).__module__)
        names.update(getattr(scheme, "tree_modules", tuple)())
    return tuple(sorted(names))


_model_fingerprints: dict[tuple, str] = {}


def model_fingerprint() -> str:
    """Digest of the timing model: MODEL_VERSION + registered scheme keys
    + timing-critical sources.

    Any edit to the modules of :func:`timing_modules` changes the
    fingerprint and thereby invalidates every cached result —
    conservative (comment edits also invalidate) but safe: a stale cache
    can never masquerade as a fresh simulation. Registering or removing
    a scheme re-keys the memo and changes the digest even when no
    tracked source file changed.
    """
    import importlib

    from ..schemes import encryption_keys, integrity_keys

    modules = timing_modules()
    registered = ("enc",) + encryption_keys() + ("int",) + integrity_keys()
    memo_key = (modules, registered)
    cached = _model_fingerprints.get(memo_key)
    if cached is not None:
        return cached

    h = hashlib.sha256(MODEL_VERSION.encode())  # repro: allow(SEC002)
    for key in registered:
        h.update(key.encode())
    for name in modules:
        try:
            module = importlib.import_module(name)
            source = getattr(module, "__file__", None)
        except ImportError:
            source = None
        if source is None:
            h.update(f"<no source: {name}>".encode())
            continue
        with open(source, "rb") as f:
            h.update(f.read())
    fingerprint = h.hexdigest()[:20]
    _model_fingerprints[memo_key] = fingerprint
    return fingerprint


# -- the grid -----------------------------------------------------------------


@dataclass(frozen=True)
class Cell:
    """One point of the evaluation grid: a benchmark under a configuration.

    ``label`` and ``mac_bits`` are reporting keys (what the figures index
    by); ``config`` is the fully-resolved machine the cell simulates —
    two cells with the same label but different configs (as in the
    sensitivity sweeps) are distinct grid points.
    """

    bench: str
    label: str
    config: MachineConfig
    mac_bits: int | None = None

    @property
    def key(self) -> tuple:
        return (self.bench, self.label, self.mac_bits)


# Worker-local trace memo: a pool worker executes many cells, typically
# cycling over few benchmarks, and a kept Trace carries its decoded form
# and compiled lowerings (repro.fastpath.compiled) with it — so sweep
# cells sharing a trace replay one lowering instead of re-generating and
# re-lowering per cell. Bounded: a grid rarely cycles more benchmarks
# than this concurrently, and each entry holds megabytes.
_worker_traces: dict[tuple, "object"] = {}
_WORKER_TRACE_CAPACITY = 8


def _worker_trace(bench: str, events: int):
    key = (bench, events)
    trace = _worker_traces.get(key)
    if trace is None:
        while len(_worker_traces) >= _WORKER_TRACE_CAPACITY:
            _worker_traces.pop(next(iter(_worker_traces)))
        trace = _worker_traces[key] = spec_trace(bench, events)
    return trace


# Worker-side progress queue: installed by the pool initializer when the
# parent streams live progress; workers put `cell_start` records on it
# the moment a cell begins simulating (the parent can only observe when
# a future *resolves*, which lags by a full cell).
_worker_queue = None


def _worker_init(queue) -> None:
    """Pool initializer: remember the parent's progress queue (or None)."""
    global _worker_queue
    _worker_queue = queue


# Worker-side result caches, one per cache root. Until workers opened
# their own cache, every `ResultCache.hits` bump a worker would have
# made was process-local and silently lost — the parent's hit ratio
# under-reported any concurrent sweep sharing the cache directory.
# `_worker_cache_delta` hands the parent counter *deltas* (including the
# construction-time stale-tmp sweep), so parent-side absorption is exact
# no matter how cells interleave across workers.
_CACHE_COUNTERS = ("hits", "misses", "writes", "corrupt", "stale_tmp")
_worker_caches: dict[str, "ResultCache"] = {}
_worker_cache_reported: dict[str, dict] = {}


def _worker_cache(root: str) -> "ResultCache":
    cache = _worker_caches.get(root)
    if cache is None:
        cache = _worker_caches[root] = ResultCache(root)
        _worker_cache_reported[root] = dict.fromkeys(_CACHE_COUNTERS, 0)
    return cache


def _worker_cache_delta(root: str) -> dict:
    """Counter movement since the last report (first call includes the
    construction-time stale-tmp sweep)."""
    cache = _worker_caches[root]
    reported = _worker_cache_reported[root]
    delta = {}
    for name in _CACHE_COUNTERS:
        value = getattr(cache, name)
        delta[name] = value - reported[name]
        reported[name] = value
    return delta


def _simulate_cell(payload: tuple) -> dict:
    """Worker entry point: resolve one cell, return a result envelope.

    Module-level (picklable under both fork and spawn); obtains the trace
    from the worker-local memo (regenerated on first use) — trace
    generation is seeded by benchmark name, so every process sees the
    identical event stream.

    The envelope is ``{"result": SimResult dict, "cached": bool,
    "capture": per-cell fleet record or None, "cache": counter delta or
    None}``. When the parent passed a cache root, the worker checks the
    disk cache itself first (serving records a concurrent sweep landed
    after the parent's check) and writes its fresh result directly, so
    the parent never re-serializes it; when capture is on, the envelope
    carries the registry snapshot, engine attribution, and wall/CPU
    timings of the run. The SimResult itself is never touched — capture
    rides the envelope, keeping cached records and result JSON
    byte-identical with capture on or off.
    """
    (bench, events, config, label, mac_bits, overlap, warmup, metrics,
     capture, cache_root, key) = payload
    if _worker_queue is not None:
        _worker_queue.put({"event": "cell_start", "bench": bench,
                           "label": label, "worker": os.getpid()})
    out = {"result": None, "cached": False, "capture": None, "cache": None}
    cache = None
    if cache_root is not None and key is not None:
        cache = _worker_cache(cache_root)
        hit = cache.get(key)
        if hit is not None:
            out["result"] = hit.to_dict()
            out["cached"] = True
            out["cache"] = _worker_cache_delta(cache_root)
            return out
    trace = _worker_trace(bench, events)
    sim = TimingSimulator(config, overlap=overlap)
    t_start = time.time()
    p_start = time.perf_counter()
    c_start = time.process_time()
    result = sim.run(trace, label=label, warmup=warmup, collect_metrics=metrics)
    wall_s = time.perf_counter() - p_start
    cpu_s = time.process_time() - c_start
    t_end = time.time()
    if cache is not None:
        cache.put(key, result, Cell(bench, label, config, mac_bits))
        out["cache"] = _worker_cache_delta(cache_root)
    if capture:
        record = fleet_obs.capture_cell(sim)
        record.update(wall_s=wall_s, cpu_s=cpu_s, t_start=t_start, t_end=t_end)
        out["capture"] = record
    out["result"] = result.to_dict()
    return out


# -- the persistent cache -----------------------------------------------------


class ResultCache:
    """A directory of JSON records, one per simulated grid cell.

    Records are written atomically (temp file + rename) so concurrent
    sweeps can share one cache directory; a corrupt or stale record is
    deleted and treated as a miss. Keys fold in everything a result
    depends on: the trace's content digest, the full machine config, the
    runner knobs (overlap, warmup), and the model fingerprint.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        # Counter movement absorbed from pool workers' own ResultCache
        # instances on this root (see ``absorb_worker``); kept separate
        # from this process's counts so hit ratios stay attributable.
        self.worker_hits = 0
        self.worker_misses = 0
        self.worker_writes = 0
        self.worker_corrupt = 0
        self.worker_stale_tmp = 0
        # A worker killed between mkstemp and os.replace leaves its temp
        # file behind; nothing ever references one again, so sweep them
        # here. Records themselves are immune — the rename is atomic.
        self.stale_tmp = 0
        for name in os.listdir(root):
            if name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(root, name))
                except OSError:
                    continue
                self.stale_tmp += 1

    @staticmethod
    def key_for(trace_digest: str, config: MachineConfig,
                overlap: float, warmup: float, metrics: bool = False) -> str:
        # A pure function of its arguments (static so the service's LRU
        # tier can key records identically without opening a directory):
        # everything a result depends on, nothing about where it lands.
        payload = {
            "trace": trace_digest,
            "config": config_to_dict(config),
            "overlap": overlap,
            "warmup": warmup,
            "model": model_fingerprint(),
        }
        if metrics:
            # Only metric-carrying records get the extra key component, so
            # every pre-existing cache key (and record) stays valid.
            payload["metrics"] = True
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:40]  # repro: allow(SEC002)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> SimResult | None:
        path = self._path(key)
        try:
            with open(path) as f:
                record = json.load(f)
            result = SimResult.from_dict(record["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Corrupt record: drop it and recompute (it will be rewritten).
            self.corrupt += 1
            self.misses += 1
            log.warning("dropping corrupt cache record %s (%s)", path, exc)
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult, cell: Cell | None = None) -> None:
        record = {"key": key, "result": result.to_dict()}
        if cell is not None:
            # Human-readable provenance; not part of the key.
            record["cell"] = {"bench": cell.bench, "label": cell.label,
                              "mac_bits": cell.mac_bits}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(record, f, sort_keys=True)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def absorb_worker(self, delta: dict) -> None:
        """Fold one worker's counter delta into the ``worker_*`` totals.

        ``delta`` comes from ``_worker_cache_delta`` — strictly the
        movement since that worker's last report, so absorbing every
        envelope double-counts nothing.
        """
        for name in _CACHE_COUNTERS:
            setattr(self, f"worker_{name}",
                    getattr(self, f"worker_{name}") + delta.get(name, 0))

    def counts(self) -> dict:
        """Every counter (this process's and absorbed worker movement)
        as a plain dict — the cache block of a fleet report."""
        out = {name: getattr(self, name) for name in _CACHE_COUNTERS}
        for name in _CACHE_COUNTERS:
            out[f"worker_{name}"] = getattr(self, f"worker_{name}")
        return out

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".json"))


# -- the engine ---------------------------------------------------------------


def run_cells(
    cells,
    events: int,
    workers: int = 1,
    cache: ResultCache | None = None,
    overlap: float = 0.7,
    warmup: float = 0.25,
    trace_provider=None,
    progress=None,
    metrics: bool = False,
    fleet: "fleet_obs.FleetCollector | None" = None,
    live: "fleet_obs.ProgressStream | None" = None,
) -> dict[Cell, SimResult]:
    """Simulate every cell, fanning out across ``workers`` processes.

    * ``workers <= 1`` runs serially in this process (no pool, no IPC) —
      the reference the determinism tests compare the pool against;
      ``workers == 0`` means "one per core".
    * ``cache`` short-circuits cells whose results are already on disk
      and persists fresh ones. Pool workers open their own handle on the
      same directory (serving concurrent sweeps' records, writing fresh
      results in-worker) and every counter they move is absorbed back
      into this cache's ``worker_*`` totals — nothing stays
      process-local.
    * ``trace_provider`` (bench -> Trace) supplies traces for digest
      computation; defaults to regenerating via ``spec_trace``. Callers
      with memoized traces (the Runner) pass theirs to avoid regeneration.
    * ``progress`` (done, total, cell) is called after each cell resolves.
    * ``metrics`` attaches each cell's metrics-registry snapshot to its
      ``SimResult.metrics`` (cached under distinct keys, so metric-free
      and metric-carrying sweeps never serve each other stale records).
    * ``fleet`` (a :class:`repro.obs.fleet.FleetCollector`) collects one
      observability record per cell — registry snapshot, engine
      attribution, wall/CPU timings, worker pid — and, at sweep end, the
      finished :class:`~repro.obs.fleet.FleetReport` (``fleet.report``).
    * ``live`` (a :class:`repro.obs.fleet.ProgressStream`) receives the
      typed progress stream: ``sweep_begin``, worker-emitted
      ``cell_start`` (via the pool's queue), per-cell ``cell_done`` with
      throughput/ETA/cache-hit-ratio, ``sweep_end``.

    Fleet capture and the live stream are observers only: they never
    touch a ``SimResult``, a cache record, or a cache key, so results
    are byte-identical with either enabled or not.

    Returns {cell: SimResult}, one entry per *distinct* cell. Cells that
    simulate the same (bench, config, label) — e.g. mac_bits=None and an
    explicit override equal to the default — share one simulation. Cells
    that crash a worker are retried serially in the parent, so one bad
    cell degrades throughput, not coverage.
    """
    distinct: list[Cell] = list(dict.fromkeys(cells))
    if workers == 0:
        workers = default_workers()
    base_provider = trace_provider or (lambda bench: spec_trace(bench, events))
    # Memoize per sweep: the digest pass and the serial path then share
    # one Trace per benchmark, and with it the decoded columns and the
    # compiled lowering — every serial cell on the same trace replays one
    # pre-compilation (the multiplicative evalx win; pool workers get the
    # same effect from the module-level memo above).
    trace_memo: dict[str, object] = {}

    def provider(bench: str):
        trace = trace_memo.get(bench)
        if trace is None:
            trace = trace_memo[bench] = base_provider(bench)
        return trace
    # Collapse cells that would run the identical simulation.
    twins: dict[tuple, list[Cell]] = {}
    for cell in distinct:
        twins.setdefault((cell.bench, cell.config, cell.label), []).append(cell)
    unique = [group[0] for group in twins.values()]
    results: dict[Cell, SimResult] = {}
    keys: dict[Cell, str] = {}
    digests: dict[str, str] = {}
    pending: list[Cell] = []

    # Baselines before the cache-filter pass: the sweep's wall clock and
    # the fleet report's cache delta both cover the parent's own gets.
    start = time.perf_counter()
    cache_base = cache.counts() if cache is not None else None

    for cell in unique:
        if cache is None:
            pending.append(cell)
            continue
        digest = digests.get(cell.bench)
        if digest is None:
            digest = digests[cell.bench] = provider(cell.bench).digest()
        key = keys[cell] = cache.key_for(digest, cell.config, overlap, warmup,
                                         metrics=metrics)
        hit = cache.get(key)
        if hit is not None:
            results[cell] = hit
        else:
            pending.append(cell)

    total = len(unique)
    prehits = [cell for cell in unique if cell in results]
    if cache is not None and prehits:
        log.info("result cache: %d/%d cells already on disk",
                 len(prehits), total)

    done = 0
    cached_done = 0
    capture = fleet is not None or live is not None
    if live is not None:
        live.emit("sweep_begin", total=total, workers=workers, events=events)
    if fleet is not None:
        fleet.begin(total=total, workers=workers, events=events)

    def rates() -> tuple[float, float, float]:
        elapsed = max(time.perf_counter() - start, 1e-9)
        rate = done / elapsed
        eta = (total - done) / rate if rate > 0 else 0.0
        ratio = cached_done / done if done else 0.0
        return rate, eta, ratio

    def account(cell: Cell, source: str, capture_rec: dict | None = None) -> None:
        """One cell resolved: fleet record, progress, logging."""
        nonlocal done, cached_done
        done += 1
        if source == fleet_obs.SOURCE_CACHE:
            cached_done += 1
        engine = "cached" if source == fleet_obs.SOURCE_CACHE else "unknown"
        reason = None
        wall = 0.0
        worker = os.getpid()
        if capture_rec is not None:
            engine = capture_rec.get("engine") or engine
            reason = capture_rec.get("fallback_reason")
            wall = capture_rec.get("wall_s", 0.0)
            worker = capture_rec.get("worker", worker)
        if fleet is not None:
            record = {"bench": cell.bench, "label": cell.label,
                      "mac_bits": cell.mac_bits, "source": source,
                      "engine": engine, "fallback_reason": reason}
            if capture_rec is not None:
                record.update(capture_rec)
            else:
                record.update(t_start=time.time(), wall_s=0.0, worker=worker)
            fleet.add_cell(record)
        if live is not None:
            rate, eta, ratio = rates()
            live.emit("cell_done", bench=cell.bench, label=cell.label,
                      done=done, total=total, source=source, engine=engine,
                      fallback_reason=reason, wall_s=wall,
                      cells_per_sec=rate, eta_s=eta,
                      cache_hit_ratio=ratio, worker=worker)
        log.info("cell %d/%d: %s/%s done", done, total, cell.bench, cell.label)
        if progress is not None:
            progress(done, total, cell)

    def finish(cell: Cell, result: SimResult, source: str,
               capture_rec: dict | None = None,
               worker_wrote: bool = False) -> None:
        results[cell] = result
        if cache is not None and not worker_wrote:
            cache.put(keys[cell], result, cell)
        account(cell, source, capture_rec)

    def serial(cell: Cell) -> tuple[SimResult, dict | None]:
        trace = provider(cell.bench)
        sim = TimingSimulator(cell.config, overlap=overlap)
        t_start = time.time()
        p_start = time.perf_counter()
        c_start = time.process_time()
        result = sim.run(trace, label=cell.label, warmup=warmup,
                         collect_metrics=metrics)
        capture_rec = None
        if capture:
            capture_rec = fleet_obs.capture_cell(sim)
            capture_rec.update(wall_s=time.perf_counter() - p_start,
                               cpu_s=time.process_time() - c_start,
                               t_start=t_start, t_end=time.time())
        return result, capture_rec

    def finalize() -> None:
        wall = time.perf_counter() - start
        if fleet is not None:
            if cache_base is not None:
                now = cache.counts()
                fleet.absorb_cache({name: now[name] - cache_base[name]
                                    for name in now})
            fleet.finish(wall)
        if live is not None:
            live.emit("sweep_end", total=total, simulated=done - cached_done,
                      cached=cached_done, wall_s=wall)

    def spread() -> dict[Cell, SimResult]:
        """Fan each group's one result back out to its twin cells."""
        for group in twins.values():
            for twin in group[1:]:
                results[twin] = results[group[0]]
        return {cell: results[cell] for cell in distinct}

    for cell in prehits:
        account(cell, fleet_obs.SOURCE_CACHE)

    if not pending:
        finalize()
        return spread()

    if workers <= 1:
        for cell in pending:
            result, capture_rec = serial(cell)
            finish(cell, result, fleet_obs.SOURCE_SERIAL, capture_rec)
        finalize()
        return spread()

    payloads = {
        cell: (cell.bench, events, cell.config, cell.label, cell.mac_bits,
               overlap, warmup, metrics, capture,
               cache.root if cache is not None else None, keys.get(cell))
        for cell in pending
    }
    retry: list[Cell] = []
    queue = manager = drain = None
    if live is not None:
        # Workers announce cell starts over a manager queue (the proxy is
        # picklable, so this works under spawn too); a parent-side thread
        # drains it into the stream while futures are in flight.
        import multiprocessing

        manager = multiprocessing.Manager()
        queue = manager.Queue()
        drain = threading.Thread(target=_drain_progress, args=(queue, live),
                                 daemon=True)
        drain.start()
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending)),
                                 initializer=_worker_init,
                                 initargs=(queue,)) as pool:
            futures = {pool.submit(_simulate_cell, payloads[cell]): cell
                       for cell in pending}
            for future, cell in futures.items():
                try:
                    envelope = future.result()
                    if cache is not None and envelope.get("cache"):
                        cache.absorb_worker(envelope["cache"])
                    source = (fleet_obs.SOURCE_CACHE if envelope["cached"]
                              else fleet_obs.SOURCE_POOL)
                    finish(cell, SimResult.from_dict(envelope["result"]),
                           source, envelope.get("capture"),
                           worker_wrote=cache is not None)
                except Exception as exc:  # worker crash / broken pool
                    log.warning("worker failed on %s/%s (%s); retrying serially",
                                cell.bench, cell.label, exc)
                    retry.append(cell)
    finally:
        if queue is not None:
            queue.put(None)
            drain.join(timeout=5.0)
            manager.shutdown()
    for cell in retry:
        result, capture_rec = serial(cell)
        finish(cell, result, fleet_obs.SOURCE_RETRY, capture_rec)
    if cache is not None and (cache.worker_hits or cache.worker_misses):
        log.info("worker cache: %d hits, %d misses, %d writes, %d corrupt, "
                 "%d stale tmp swept", cache.worker_hits, cache.worker_misses,
                 cache.worker_writes, cache.worker_corrupt,
                 cache.worker_stale_tmp)
    finalize()
    return spread()


def _drain_progress(queue, stream) -> None:
    """Forward worker progress records from the pool queue to the stream
    until the parent posts the ``None`` sentinel."""
    while True:
        try:
            record = queue.get()
        except (EOFError, OSError):
            return
        if record is None:
            return
        event = record.pop("event", None)
        if event:
            stream.emit(event, **record)
