"""Experiment runner: simulates (benchmark x configuration) grids with caching.

Every figure in the paper draws from the same small set of protection
configurations over the same 21 benchmarks. The runner simulates each
pair once per process and memoizes the :class:`SimResult`, so generating
all six figures costs one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import MachineConfig, aise_bmt_config, baseline_config, global64_mt_config
from ..sim.results import SimResult
from ..sim.simulator import TimingSimulator
from ..sim.trace import Trace
from ..workloads.spec2k import SPEC2K_BENCHMARKS, spec_trace

# The named configurations the evaluation uses. MAC-size variants are
# derived on demand (figure 11).
CONFIGS: dict[str, MachineConfig] = {
    "base": baseline_config(),
    "aise": MachineConfig(encryption="aise", integrity="none"),
    "global32": MachineConfig(encryption="global32", integrity="none"),
    "global64": MachineConfig(encryption="global64", integrity="none"),
    "aise+mt": MachineConfig(encryption="aise", integrity="merkle"),
    "aise+bmt": aise_bmt_config(),
    "global64+mt": global64_mt_config(),
}


def config_named(label: str, mac_bits: int | None = None) -> MachineConfig:
    """Resolve a registry label (optionally with a MAC-size override)."""
    config = CONFIGS[label]
    if mac_bits is not None and mac_bits != config.mac_bits:
        from dataclasses import replace

        config = replace(config, mac_bits=mac_bits)
    return config


@dataclass
class Runner:
    """Memoizing simulation driver."""

    events: int = 120_000
    benchmarks: tuple = SPEC2K_BENCHMARKS
    overlap: float = 0.7
    warmup: float = 0.25
    _traces: dict = field(default_factory=dict, repr=False)
    _results: dict = field(default_factory=dict, repr=False)

    def trace(self, bench: str) -> Trace:
        """The (memoized) trace for a benchmark."""
        cached = self._traces.get(bench)
        if cached is None:
            cached = self._traces[bench] = spec_trace(bench, self.events)
        return cached

    def result(self, bench: str, label: str, mac_bits: int | None = None) -> SimResult:
        """Simulate (benchmark, configuration) once; memoized thereafter."""
        key = (bench, label, mac_bits)
        cached = self._results.get(key)
        if cached is None:
            config = config_named(label, mac_bits)
            sim = TimingSimulator(config, overlap=self.overlap)
            cached = sim.run(self.trace(bench), label=label, warmup=self.warmup)
            self._results[key] = cached
        return cached

    def overhead(self, bench: str, label: str, mac_bits: int | None = None) -> float:
        """Normalized execution-time overhead of a configuration vs base."""
        base = self.result(bench, "base")
        return self.result(bench, label, mac_bits).overhead_vs(base)

    def average(self, metric) -> float:
        """Average a per-benchmark callable over all benchmarks."""
        values = [metric(bench) for bench in self.benchmarks]
        return sum(values) / len(values)

    def average_overhead(self, label: str, mac_bits: int | None = None) -> float:
        """Mean overhead across all configured benchmarks."""
        return self.average(lambda bench: self.overhead(bench, label, mac_bits))
