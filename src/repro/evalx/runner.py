"""Experiment runner: simulates (benchmark x configuration) grids with caching.

Every figure in the paper draws from the same small set of protection
configurations over the same 21 benchmarks. The runner simulates each
pair once per process and memoizes the :class:`SimResult`; with
``workers > 1`` it fans the grid out over a process pool, and with a
``cache_dir`` it shares a persistent on-disk result cache with every
other process using the same directory (see :mod:`repro.evalx.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import MachineConfig
from ..sim.results import SimResult
from ..sim.trace import Trace
from ..workloads.spec2k import SPEC2K_BENCHMARKS, spec_trace
from .parallel import Cell, ResultCache, run_cells

# The named configurations the evaluation uses, derived from the preset
# registry so the CLI, the facade, and the figures agree on labels.
# MAC-size variants are derived on demand (figure 11).
CONFIGS: dict[str, MachineConfig] = {
    label: MachineConfig.preset(label) for label in MachineConfig.preset_names()
}


def config_named(label: str, mac_bits: int | None = None) -> MachineConfig:
    """Resolve a registry label (optionally with a MAC-size override).

    The canonical labels resolve through :data:`CONFIGS`; any other
    registry-valid ``encryption[+integrity]`` pair — e.g. a registered
    third-party scheme, or ``aise+bmt_lazy`` — resolves through
    :meth:`MachineConfig.preset`, so explicitly requested sweeps are not
    limited to the figure-6 grid (whose default label set, and the
    committed golden, stay exactly :data:`CONFIGS`)."""
    config = CONFIGS.get(label)
    if config is None:
        config = MachineConfig.preset(label)
    if mac_bits is not None and mac_bits != config.mac_bits:
        from dataclasses import replace

        config = replace(config, mac_bits=mac_bits)
    return config


@dataclass
class Runner:
    """Memoizing simulation driver over the registry configurations.

    ``workers`` and ``cache_dir`` turn on the parallel engine: grid-wide
    entry points (:meth:`run_grid`, :meth:`prefetch`) fan out across a
    process pool, and individual :meth:`result` calls consult the disk
    cache before simulating. ``workers=1`` (the default) is the serial
    reference path; ``workers=0`` means one worker per core.
    """

    events: int = 120_000
    benchmarks: tuple = SPEC2K_BENCHMARKS
    overlap: float = 0.7
    warmup: float = 0.25
    workers: int = 1
    cache_dir: str | None = None
    # Attach per-cell metrics-registry snapshots to SimResult.metrics
    # (repro.obs); metric-carrying results cache under their own keys.
    metrics: bool = False
    _traces: dict = field(default_factory=dict, repr=False)
    _results: dict = field(default_factory=dict, repr=False)
    _cache: ResultCache | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.cache_dir is not None:
            self._cache = ResultCache(self.cache_dir)

    @property
    def cache(self) -> ResultCache | None:
        """The disk result cache, if one is configured."""
        return self._cache

    def trace(self, bench: str) -> Trace:
        """The (memoized) trace for a benchmark."""
        cached = self._traces.get(bench)
        if cached is None:
            cached = self._traces[bench] = spec_trace(bench, self.events)
        return cached

    def _cell(self, bench: str, label: str, mac_bits: int | None = None) -> Cell:
        return Cell(bench=bench, label=label, mac_bits=mac_bits,
                    config=config_named(label, mac_bits))

    def result(self, bench: str, label: str, mac_bits: int | None = None) -> SimResult:
        """Simulate (benchmark, configuration) once; memoized thereafter."""
        key = (bench, label, mac_bits)
        cached = self._results.get(key)
        if cached is None:
            computed = run_cells(
                [self._cell(bench, label, mac_bits)],
                events=self.events,
                workers=1,  # a single cell gains nothing from a pool
                cache=self._cache,
                overlap=self.overlap,
                warmup=self.warmup,
                trace_provider=self.trace,
                metrics=self.metrics,
            )
            cached = self._results[key] = next(iter(computed.values()))
        return cached

    # -- grid-wide entry points (the parallel engine) -----------------------

    def run_grid(
        self,
        labels=None,
        mac_bits=(None,),
        benchmarks=None,
        workers: int | None = None,
        fleet=None,
        live=None,
    ) -> dict[tuple, SimResult]:
        """Simulate a (benchmark x label x mac_bits) grid, parallel if asked.

        Returns {(bench, label, mac_bits): SimResult} and populates the
        in-memory memo, so subsequent :meth:`result`/:meth:`overhead`
        calls are free. Results are identical to the serial path cell by
        cell (a repo invariant; see tests/evalx/test_parallel.py) — with
        or without fleet observability: ``fleet`` (a
        :class:`~repro.obs.fleet.FleetCollector`) and ``live`` (a
        :class:`~repro.obs.fleet.ProgressStream`) pass straight through
        to :func:`~repro.evalx.parallel.run_cells` and never touch
        results or cache keys.
        """
        labels = tuple(labels) if labels is not None else tuple(CONFIGS)
        benchmarks = tuple(benchmarks) if benchmarks is not None else self.benchmarks
        cells = [
            self._cell(bench, label, bits)
            for label in labels
            for bits in mac_bits
            for bench in benchmarks
        ]
        computed = run_cells(
            cells,
            events=self.events,
            workers=self.workers if workers is None else workers,
            cache=self._cache,
            overlap=self.overlap,
            warmup=self.warmup,
            trace_provider=self.trace,
            metrics=self.metrics,
            fleet=fleet,
            live=live,
        )
        grid = {cell.key: result for cell, result in computed.items()}
        self._results.update(grid)
        return grid

    def prefetch(self, labels=None, mac_bits=(None,), workers: int | None = None) -> int:
        """Warm the in-memory memo for a label set; returns cells resolved.

        Figure builders then hit only the memo — one pool fan-out serves
        every figure drawn from the same sweep.
        """
        return len(self.run_grid(labels=labels, mac_bits=mac_bits, workers=workers))

    # -- per-cell conveniences ----------------------------------------------

    def overhead(self, bench: str, label: str, mac_bits: int | None = None) -> float:
        """Normalized execution-time overhead of a configuration vs base."""
        base = self.result(bench, "base")
        return self.result(bench, label, mac_bits).overhead_vs(base)

    def average(self, metric) -> float:
        """Average a per-benchmark callable over all benchmarks."""
        values = [metric(bench) for bench in self.benchmarks]
        return sum(values) / len(values)

    def average_overhead(self, label: str, mac_bits: int | None = None) -> float:
        """Mean overhead across all configured benchmarks."""
        return self.average(lambda bench: self.overhead(bench, label, mac_bits))
