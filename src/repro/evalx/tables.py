"""Regeneration of the paper's tables.

* Table 1 — qualitative comparison of seed schemes, generated from each
  scheme's :class:`~repro.core.seeds.SchemeProperties` (so the table stays
  truthful to the implementations rather than being hand-written prose).
* Table 2 — in-memory storage overheads across MAC sizes, from the
  analytic model in :mod:`repro.core.storage`. This table reproduces the
  paper's 16 cells exactly (to the printed 0.01%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.seeds import (
    AiseSeedScheme,
    GlobalCounterSeedScheme,
    PhysicalAddressSeedScheme,
    VirtualAddressSeedScheme,
)
from ..core.storage import storage_breakdown


@dataclass
class TableData:
    """A rendered-table payload: id, title, ordered columns, row dicts."""

    table: str
    title: str
    columns: list
    rows: list = field(default_factory=list)  # list of dicts keyed by column


def table1() -> TableData:
    """Qualitative comparison of counter-mode encryption approaches."""
    schemes = [
        GlobalCounterSeedScheme(64),
        PhysicalAddressSeedScheme(),
        VirtualAddressSeedScheme(),
        AiseSeedScheme(),
    ]
    table = TableData(
        table="1",
        title="Qualitative comparison of AISE with other counter-mode approaches",
        columns=["Encryption Approach", "IPC Support", "Latency Hiding", "Storage Overhead", "Other Issues"],
    )
    for scheme in schemes:
        props = scheme.properties
        table.rows.append(
            {
                "Encryption Approach": props.name,
                "IPC Support": props.ipc_support,
                "Latency Hiding": props.latency_hiding,
                "Storage Overhead": props.storage_overhead,
                "Other Issues": props.other_issues,
            }
        )
    return table


# The paper's Table 2, for verification in tests and reports.
PAPER_TABLE2 = {
    (256, "global64+mt"): (49.83, 0.35, 5.54, 55.71),
    (256, "aise+bmt"): (33.50, 0.51, 1.02, 35.03),
    (128, "global64+mt"): (24.94, 0.26, 8.31, 33.51),
    (128, "aise+bmt"): (20.02, 0.31, 1.23, 21.55),
    (64, "global64+mt"): (12.48, 0.15, 9.71, 22.34),
    (64, "aise+bmt"): (11.11, 0.17, 1.36, 12.65),
    (32, "global64+mt"): (6.24, 0.08, 10.41, 16.73),
    (32, "aise+bmt"): (5.88, 0.09, 1.45, 7.42),
}


def results_table(runner, labels=None) -> TableData:
    """Measured summary of the simulated grid: one row per configuration.

    Not a paper table — the companion artifact ``repro sweep`` emits
    alongside the raw per-cell JSON: average overhead vs base, miss
    rates, occupancy, and bus utilization across the runner's benchmark
    suite. Draws every cell through the runner, so a prefetched (pooled
    or disk-cached) grid renders for free.
    """
    if labels is None:
        from .runner import CONFIGS

        labels = [label for label in CONFIGS if label != "base"]
    table = TableData(
        table="R",
        title="Measured averages across the benchmark suite",
        columns=["Configuration", "Overhead %", "L2 Miss %", "Data Occupancy %",
                 "Bus Util %", "Counter Miss %"],
    )
    benches = runner.benchmarks

    def avg(metric) -> float:
        return sum(metric(b) for b in benches) / len(benches)

    for label in labels:
        table.rows.append(
            {
                "Configuration": label,
                "Overhead %": round(avg(lambda b: runner.overhead(b, label)) * 100, 2),
                "L2 Miss %": round(avg(lambda b: runner.result(b, label).l2_miss_rate) * 100, 2),
                "Data Occupancy %": round(
                    avg(lambda b: runner.result(b, label).l2_data_fraction) * 100, 2),
                "Bus Util %": round(
                    avg(lambda b: runner.result(b, label).bus_utilization) * 100, 2),
                "Counter Miss %": round(
                    avg(lambda b: runner.result(b, label).counter_miss_rate) * 100, 2),
            }
        )
    return table


def table2(data_bytes: int = 1 << 30) -> TableData:
    """MAC & counter memory overheads (fractions of total memory, %)."""
    table = TableData(
        table="2",
        title="MAC & counter memory storage overheads",
        columns=["MAC size", "Scheme", "MT %", "Page Root %", "Counters %", "Total %", "Paper Total %"],
    )
    for bits in (256, 128, 64, 32):
        for scheme_label, (enc, integ) in (
            ("global64+mt", ("global64", "merkle")),
            ("aise+bmt", ("aise", "bonsai")),
        ):
            b = storage_breakdown(enc, integ, bits, data_bytes=data_bytes)
            paper = PAPER_TABLE2[(bits, scheme_label)]
            table.rows.append(
                {
                    "MAC size": f"{bits}b",
                    "Scheme": scheme_label,
                    "MT %": round(b.merkle_fraction * 100, 2),
                    "Page Root %": round(b.page_root_fraction * 100, 2),
                    "Counters %": round(b.counter_fraction * 100, 2),
                    "Total %": round(b.overhead_fraction * 100, 2),
                    "Paper Total %": paper[3],
                }
            )
    return table
