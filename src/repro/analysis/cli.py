"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit status is 0 when no (non-suppressed) findings remain, 1 otherwise —
suitable for CI. Also installed as the ``repro-analyze`` console script
and reachable as ``python -m repro analyze``.
"""

from __future__ import annotations

import argparse
import sys

from .engine import analyze_paths
from .reporters import render_json, render_rule_list, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Security-invariant linter for the AISE/BMT reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        default=None,
        help="run only these rule ids (e.g. SEC001 DET001)",
    )
    parser.add_argument(
        "--ignore",
        nargs="+",
        metavar="RULE",
        default=None,
        help="skip these rule ids",
    )
    parser.add_argument(
        "--no-suppressions",
        action="store_true",
        help="report findings even where '# repro: allow(...)' comments exist",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="append rule rationales to text output"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    try:
        findings = analyze_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            respect_suppressions=not args.no_suppressions,
        )
    except (FileNotFoundError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings, verbose=args.verbose))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
