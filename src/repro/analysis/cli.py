"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit status: 0 when no (non-suppressed, non-baselined) findings remain,
1 when findings are reported, 2 when the analyzer itself failed (bad
arguments, missing paths, or a rule crash — reported with the file it
crashed on). Also installed as the ``repro-analyze`` console script and
reachable as ``python -m repro analyze``.
"""

from __future__ import annotations

import argparse
import sys

from .engine import (
    AnalyzerCrash,
    analyze_paths,
    analyze_project,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .reporters import render_json, render_rule_list, render_sarif, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Security-invariant linter for the AISE/BMT reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program FLOW rules (taint/call-graph pass)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        default=None,
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        default=None,
        help="run only these rule ids (e.g. SEC001 FLOW001)",
    )
    parser.add_argument(
        "--ignore",
        nargs="+",
        metavar="RULE",
        default=None,
        help="skip these rule ids",
    )
    parser.add_argument(
        "--no-suppressions",
        action="store_true",
        help="report findings even where '# repro: allow(...)' comments exist",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--layers",
        action="store_true",
        help="print the package import-layering table and exit",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="append rule rationales to text output"
    )
    return parser


def _print_layers(paths: list[str]) -> int:
    import ast

    from .engine import FileContext, iter_python_files
    from .graph import ProjectGraph

    contexts = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            ast.parse(source)
        except SyntaxError:
            continue
        contexts.append(FileContext(str(file_path), source))
    graph = ProjectGraph.build(contexts)
    imports = graph.package_imports()
    for depth, layer in enumerate(graph.package_layers()):
        for package in layer:
            deps = ", ".join(sorted(imports.get(package, ()))) or "-"
            print(f"layer {depth}: {package:<12} imports: {deps}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    try:
        if args.layers:
            return _print_layers(args.paths)
        if args.flow:
            findings = analyze_project(
                args.paths,
                select=args.select,
                ignore=args.ignore,
                respect_suppressions=not args.no_suppressions,
            )
        else:
            findings = analyze_paths(
                args.paths,
                select=args.select,
                ignore=args.ignore,
                respect_suppressions=not args.no_suppressions,
            )
        if args.baseline is not None:
            findings = apply_baseline(findings, load_baseline(args.baseline))
    except AnalyzerCrash as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except (FileNotFoundError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        write_baseline(findings, args.write_baseline)
        print(f"baseline with {len(findings)} finding(s) written to {args.write_baseline}")
        return 0
    if args.sarif is not None:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(findings) + "\n")
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings, verbose=args.verbose))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
