"""The taint lattice and the per-function taint tracker.

Four labels model the paper's threat boundary:

* ``PLAINTEXT`` — a value that came back through a decryption path and
  must therefore never cross the chip boundary (DRAM, swap, traces)
  without passing through an encryption engine again;
* ``NONDET`` — derived from wall-clock time, ambient randomness, or the
  process environment; must never reach deterministic artifacts
  (``SimResult``, cache fingerprints, goldens);
* ``UNVERIFIED`` — bytes fetched from attackable storage (DRAM, the
  swap device) whose integrity has not yet been checked; must not be
  decrypted or parsed into trusted state;
* ``SEED_MATERIAL`` — produced by a sanctioned seed/counter API
  (``seeds_for_block``, ``record_encryption``); the *only* thing that
  may flow into pad/keystream generation.

The first three are **may**-taints: at a control-flow join a value is
tainted if it is tainted on *any* incoming path, so sets join by union.
``SEED_MATERIAL`` is a **must**-property: a seed argument is sanctioned
only if it is sanctioned on *every* path, so it joins by intersection.
:class:`TaintEnv` keeps the two polarities separate; getting the join
direction wrong is exactly how an analysis silently stops seeing the
bug it was built for.

:class:`FunctionTainter` runs the abstract interpretation over one
function body in statement order: assignments propagate, catalog calls
introduce or clear labels, interprocedural effects come from summaries
computed by :mod:`repro.analysis.flow`. It is flow-sensitive down
straight-line code and joins at branches; loop bodies run twice so a
loop-carried taint reaches its own first iteration's uses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

PLAINTEXT = "PLAINTEXT"
SEED_MATERIAL = "SEED_MATERIAL"
NONDET = "NONDET"
UNVERIFIED = "UNVERIFIED"

LABELS = (PLAINTEXT, SEED_MATERIAL, NONDET, UNVERIFIED)

#: May-taints join by union; the must-property SEED_MATERIAL by intersection.
MAY_LABELS = frozenset({PLAINTEXT, NONDET, UNVERIFIED})
MUST_LABELS = frozenset({SEED_MATERIAL})

EMPTY: frozenset = frozenset()


def join(a: frozenset, b: frozenset) -> frozenset:
    """Lattice join of two label sets attached to the *same* value.

    Everything outside MAY_LABELS joins by intersection: that covers
    SEED_MATERIAL and the ``PARAM:<name>`` provenance labels the flow
    engine plants on function parameters.
    """
    return frozenset(((a | b) & MAY_LABELS) | ((a & b) - MAY_LABELS))


# -- catalogs ----------------------------------------------------------------


@dataclass(frozen=True)
class CallPattern:
    """Matches a call by terminal name, with optional receiver constraints.

    ``receivers`` restricts to calls whose receiver name contains one of
    the substrings ("memory" matches ``self.memory.write_block``);
    ``dotted`` restricts to exact dotted prefixes ("time.time").
    """

    names: frozenset
    receivers: tuple = ()
    dotted: tuple = ()

    def matches(self, name: str, dotted_path: str | None) -> bool:
        if self.dotted:
            return dotted_path is not None and any(
                dotted_path == d or dotted_path.endswith("." + d) for d in self.dotted
            )
        if name not in self.names:
            return False
        if self.receivers:
            if dotted_path is None or "." not in dotted_path:
                return False
            receiver = dotted_path.split(".")[-2]
            return any(hint in receiver for hint in self.receivers)
        return True


def pattern(*names: str, receivers: tuple = (), dotted: tuple = ()) -> CallPattern:
    return CallPattern(frozenset(names), receivers=receivers, dotted=dotted)


#: Calls whose return value is freshly decrypted plaintext.
PLAINTEXT_SOURCES = (
    pattern("decrypt", "decrypt_with_seeds", "decrypt_block", "apply_pad_int"),
)

#: Calls that re-encrypt: their return value is safe for DRAM/swap/traces.
PLAINTEXT_SANITIZERS = (
    pattern("encrypt", "encrypt_for_write", "encrypt_block",
            "reencrypt_block_for_move"),
)

#: Calls yielding wall-clock / environment / ambient-randomness values.
NONDET_SOURCES = (
    pattern("time", "time_ns", "perf_counter", "monotonic",
            dotted=("time.time", "time.time_ns", "time.perf_counter",
                    "time.monotonic")),
    pattern("now", "utcnow", dotted=("datetime.now", "datetime.utcnow",
                                     "datetime.datetime.now",
                                     "datetime.datetime.utcnow")),
    pattern("get", "getenv", dotted=("os.environ.get", "os.getenv")),
    pattern("random", "randint", "randrange", "choice", "shuffle", "uniform",
            "getrandbits", "randbytes", receivers=("random",)),
    pattern("uuid4", dotted=("uuid.uuid4",)),
)

#: Bytes arriving from attackable storage, unchecked.
UNVERIFIED_SOURCES = (
    pattern("read_block", receivers=("memory", "storage", "dram")),
    pattern("dma_read", "snapshot_slot", "load_image", "_load_image"),
)

#: Calls that perform (or model) integrity verification of their byte
#: arguments; passing a value through one clears UNVERIFIED.
VERIFIERS = (
    pattern("verify", "verify_data", "verify_metadata", "metadata_verify",
            "verify_block", "verify_root", "compute_data_mac",
            "page_root_of_image", "check_image"),
)

#: Sanctioned producers of seed material (FLOW002's provenance anchor).
SEED_PRODUCERS = (
    pattern("seeds_for_block", "record_encryption", "next_generation"),
)


@dataclass(frozen=True)
class SinkSpec:
    """A call that must not receive a given taint on given arguments."""

    pattern: CallPattern
    label: str
    describe: str
    #: argument positions to check; () means every argument.
    args: tuple = ()


#: FLOW001: plaintext escaping the chip boundary.
PLAINTEXT_SINKS = (
    SinkSpec(pattern("write_block", receivers=("memory", "storage", "dram")),
             PLAINTEXT, "a DRAM write"),
    SinkSpec(pattern("dma_write", "replay_slot", "_store_image", "store_image"),
             PLAINTEXT, "swap serialization"),
    SinkSpec(pattern("dump", "dumps", receivers=("json",)),
             PLAINTEXT, "a JSON artifact"),
    SinkSpec(pattern("emit", receivers=("obs", "tracer", "hooks", "_hooks")),
             PLAINTEXT, "an event-trace record"),
)

#: FLOW003: nondeterminism reaching deterministic artifacts.
NONDET_SINKS = (
    SinkSpec(pattern("SimResult"), NONDET, "a SimResult"),
    SinkSpec(pattern("config_fingerprint", "model_fingerprint", "cache_key",
                     "cell_key", "_cell_key", "trace_digest", "fingerprint"),
             NONDET, "a cache fingerprint"),
)

#: Keystream consumers: (pattern, seed-argument position, parameter name).
#: The named argument must carry SEED_MATERIAL (FLOW002).
KEYSTREAM_CONSUMERS = (
    (pattern("pad_int", "block_pad_int"), 0, "seeds"),
    (pattern("pad", receivers=("pads", "_pads", "generator")), 0, "seed"),
    (pattern("encrypt", "decrypt", "apply", receivers=("cipher",)), 1, "seeds"),
    (pattern("decrypt_with_seeds"), 1, "seeds"),
)


def match_any(patterns, name: str, dotted: str | None) -> bool:
    return any(p.matches(name, dotted) for p in patterns)


# -- the per-function tracker -------------------------------------------------


@dataclass
class TaintedValue:
    """Where a variable picked up its labels (for flow traces)."""

    labels: frozenset
    origin: str = ""  # "core/encryption.py:327: PLAINTEXT from decrypt()"


class TaintEnv:
    """Variable -> labels, with polarity-correct joins."""

    def __init__(self, values: dict | None = None):
        self.values: dict[str, TaintedValue] = dict(values or {})

    def get(self, name: str) -> frozenset:
        value = self.values.get(name)
        return value.labels if value is not None else EMPTY

    def origin(self, name: str) -> str:
        value = self.values.get(name)
        return value.origin if value is not None else ""

    def set(self, name: str, labels: frozenset, origin: str = "") -> None:
        if labels:
            self.values[name] = TaintedValue(labels, origin)
        else:
            self.values.pop(name, None)

    def copy(self) -> "TaintEnv":
        return TaintEnv(self.values)

    def merge(self, *others: "TaintEnv") -> None:
        """Join this env with sibling branch envs, in place."""
        names = set(self.values)
        for other in others:
            names |= set(other.values)
        for name in names:
            labels = self.get(name)
            origin = self.origin(name)
            for other in others:
                other_labels = other.get(name)
                labels = join(labels, other_labels)
                origin = origin or other.origin(name)
            self.set(name, labels, origin)


@dataclass
class SinkHit:
    """One tainted value arriving at a sink call."""

    sink: SinkSpec
    node: ast.Call
    labels: frozenset
    origin: str


class FunctionTainter:
    """Abstract interpretation of one function body.

    ``summaries`` maps *unambiguous* function names to the label set of
    their return value (computed to fixpoint by the flow engine);
    ``param_labels`` seeds the environment for interprocedural checks.
    """

    def __init__(
        self,
        fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
        logical: str,
        summaries: dict | None = None,
        param_labels: dict | None = None,
    ):
        self.node = fn_node
        self.logical = logical
        self.summaries = summaries or {}
        self.env = TaintEnv()
        self.return_labels: frozenset = EMPTY
        self.return_origin = ""
        self._saw_return = False
        self.sink_hits: list[SinkHit] = []
        #: id(ast.Call) -> {"pos": [(labels, origin), ...], "kw": {name: ...}}
        #: — the labels each argument carried when the call was reached.
        self.call_args: dict[int, dict] = {}
        args = fn_node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            labels = (param_labels or {}).get(arg.arg, EMPTY)
            if labels:
                self.env.set(arg.arg, labels,
                             f"{logical}:{fn_node.lineno}: parameter {arg.arg!r}")

    # -- driving ------------------------------------------------------------

    def run(self) -> "FunctionTainter":
        # Two passes so loop-carried taints stabilise (labels only grow
        # for may-taints; the must-property can only shrink, which a
        # second pass also captures).
        self._exec_block(self.node.body, self.env)
        self._exec_block(self.node.body, self.env)
        # The double pass records every sink hit twice; keep the second
        # (stabilised) record per (call, sink).
        unique: dict[tuple, SinkHit] = {}
        for hit in self.sink_hits:
            unique[(id(hit.node), hit.sink.label, hit.sink.describe)] = hit
        self.sink_hits = list(unique.values())
        return self

    def _exec_block(self, body, env: TaintEnv) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: TaintEnv) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            if value is None:
                return
            labels, origin = self._eval(value, env)
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                self._assign(target, value, labels, origin, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                labels, origin = self._eval(stmt.value, env)
                if self._saw_return:
                    # join() intersects must-properties across returns.
                    self.return_labels = join(self.return_labels, labels)
                else:
                    self.return_labels = labels
                    self._saw_return = True
                self.return_origin = self.return_origin or origin
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = env.copy(), env.copy()
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            env.values = then_env.values
            env.merge(else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            labels, origin = self._eval_iteration(stmt.iter, env)
            self._assign(stmt.target, stmt.iter, labels, origin, env)
            # Twice, so a taint born late in the body reaches the body's
            # own earlier uses (the loop-carried case).
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels, origin = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, item.context_expr,
                                 labels, origin, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env)
            for handler in stmt.handlers:
                self._exec_block(handler.body, env)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs analyzed as their own functions
        else:
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._eval(value, env)

    # -- assignment targets --------------------------------------------------

    def _assign(self, target, value_node, labels, origin, env: TaintEnv) -> None:
        if isinstance(target, ast.Name):
            env.set(target.id, labels, origin)
        elif isinstance(target, ast.Attribute):
            # self.x = tainted: track the attribute name locally too.
            env.set(target.attr, labels, origin)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # enumerate(x) unpacks (index, element-of-x); otherwise every
            # element conservatively carries the iterated value's labels.
            element_labels = [labels] * len(target.elts)
            if (
                isinstance(value_node, ast.Call)
                and isinstance(value_node.func, ast.Name)
                and value_node.func.id == "enumerate"
                and len(target.elts) == 2
            ):
                element_labels = [EMPTY, labels]
            for element, elabels in zip(target.elts, element_labels):
                self._assign(element, value_node, elabels, origin, env)

    # -- expressions ---------------------------------------------------------

    def _eval_iteration(self, node: ast.expr, env: TaintEnv):
        """Labels of elements yielded by iterating ``node``."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("enumerate", "sorted", "reversed", "list", "tuple")
            and node.args
        ):
            return self._eval(node.args[0], env)
        return self._eval(node, env)

    def _eval(self, node: ast.expr, env: TaintEnv):
        """(labels, origin) of an expression; records sink hits en route."""
        if isinstance(node, ast.Name):
            return env.get(node.id), env.origin(node.id)
        if isinstance(node, ast.Attribute):
            dotted = _expr_dotted(node)
            if dotted in ("os.environ",):
                return frozenset({NONDET}), self._where(node, "os.environ")
            # a.b.c: taint tracked by terminal attribute name if we saw
            # an assignment to it; otherwise the root name's taint.
            labels, origin = env.get(node.attr), env.origin(node.attr)
            if labels:
                return labels, origin
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                return env.get(root.id), env.origin(root.id)
            return self._eval(root, env) if isinstance(root, ast.expr) else (EMPTY, "")
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Subscript):
            base_labels, origin = self._eval(node.value, env)
            if _expr_dotted(node.value) == "os.environ":
                return frozenset({NONDET}), self._where(node, "os.environ[...]")
            self._eval(node.slice, env)
            return base_labels, origin
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            then_labels, then_origin = self._eval(node.body, env)
            else_labels, else_origin = self._eval(node.orelse, env)
            return join(then_labels, else_labels), then_origin or else_origin
        if isinstance(node, ast.BoolOp):
            labels, origin = EMPTY, ""
            for value in node.values:
                vlabels, vorigin = self._eval(value, env)
                labels, origin = join(labels, vlabels), origin or vorigin
            return labels, origin
        if isinstance(node, ast.BinOp):
            left, lorigin = self._eval(node.left, env)
            right, rorigin = self._eval(node.right, env)
            # Derivation through arithmetic keeps may-taints and loses
            # the must-property (a doctored seed is no longer sanctioned).
            return (left | right) & MAY_LABELS, lorigin or rorigin
        if isinstance(node, ast.UnaryOp):
            labels, origin = self._eval(node.operand, env)
            return labels & MAY_LABELS, origin
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for comp in node.comparators:
                self._eval(comp, env)
            return EMPTY, ""
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            labels, origin = EMPTY, ""
            for element in node.elts:
                elabels, eorigin = self._eval(element, env)
                labels |= elabels & MAY_LABELS
                origin = origin or eorigin
            return labels, origin
        if isinstance(node, ast.Dict):
            labels, origin = EMPTY, ""
            for value in node.values:
                if value is not None:
                    vlabels, vorigin = self._eval(value, env)
                    labels |= vlabels & MAY_LABELS
                    origin = origin or vorigin
            return labels, origin
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            labels, origin = EMPTY, ""
            for generator in node.generators:
                glabels, gorigin = self._eval(generator.iter, env)
                labels |= glabels & MAY_LABELS
                origin = origin or gorigin
            elabels, eorigin = self._eval(node.elt, env)
            return labels | (elabels & MAY_LABELS), origin or eorigin
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, env)
            return EMPTY, ""
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, env)
        return EMPTY, ""

    def _eval_call(self, node: ast.Call, env: TaintEnv):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        dotted = _expr_dotted(func)
        pos_results = [self._eval(arg, env) for arg in node.args]
        kw_results = {
            kw.arg: self._eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:  # **kwargs splat: evaluate, don't record
            if kw.arg is None:
                self._eval(kw.value, env)
        arg_results = pos_results + list(kw_results.values())
        self.call_args[id(node)] = {"pos": pos_results, "kw": kw_results}
        if name is None:
            return EMPTY, ""

        # Verifier calls clear UNVERIFIED from their byte arguments.
        if match_any(VERIFIERS, name, dotted):
            for arg in node.args:
                self._clear(arg, UNVERIFIED, env)

        # Sink checks happen before sanitizer rewriting: the arguments
        # were evaluated with their incoming labels.
        for sink in self.sinks():
            if not sink.pattern.matches(name, dotted):
                continue
            if sink.args:
                checked = [
                    pos_results[p] for p in sink.args if p < len(pos_results)
                ]
            else:  # every argument, keywords included (SimResult(ipc=...))
                checked = arg_results
            for labels, origin in checked:
                if sink.label in labels:
                    self.sink_hits.append(SinkHit(sink, node, labels, origin))

        # Sources / sanitizers / summaries decide the return labels.
        if match_any(PLAINTEXT_SANITIZERS, name, dotted):
            return EMPTY, ""
        if match_any(PLAINTEXT_SOURCES, name, dotted):
            return frozenset({PLAINTEXT}), self._where(node, f"{name}()")
        if match_any(NONDET_SOURCES, name, dotted):
            return frozenset({NONDET}), self._where(node, f"{name}()")
        if match_any(UNVERIFIED_SOURCES, name, dotted):
            return frozenset({UNVERIFIED}), self._where(node, f"{name}()")
        if match_any(SEED_PRODUCERS, name, dotted):
            return frozenset({SEED_MATERIAL}), self._where(node, f"{name}()")
        summary = self.summaries.get(name)
        if summary:
            labels, summary_origin = summary
            # Union in the arguments' may-taints: a summarised helper may
            # also pass tainted arguments through to its return value.
            for alabels, _ in arg_results:
                labels = labels | (alabels & MAY_LABELS)
            return labels, self._where(node, f"call to {name}() [{summary_origin}]")
        # Unknown call: derived from arguments, may-taints only (a pure
        # transformation keeps plaintext plaintext); bytes()/int.from_bytes
        # style conversions are the common carrier.
        labels, origin = EMPTY, ""
        for alabels, aorigin in arg_results:
            labels |= alabels & MAY_LABELS
            origin = origin or aorigin
        return labels, origin

    def sinks(self) -> tuple:
        """Sink catalog; FLOW rules override to focus one family."""
        return PLAINTEXT_SINKS + NONDET_SINKS

    def _clear(self, node: ast.expr, label: str, env: TaintEnv) -> None:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return
        labels = env.get(name)
        if label in labels:
            env.set(name, labels - {label}, env.origin(name))

    def _where(self, node: ast.AST, what: str) -> str:
        return f"{self.logical}:{getattr(node, 'lineno', 1)}: {what}"


def _expr_dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
