"""The FLOW rule family: whole-program checks of the paper's invariants.

Where the SEC/DET rules inspect one file at a time, these four rules run
over the assembled :class:`~repro.analysis.graph.ProjectGraph` with the
taint machinery from :mod:`repro.analysis.taint`:

========  ==================================================================
FLOW001   Plaintext stays on-chip: a value returned by a decryption path
          must not reach a DRAM write, swap serialization, or trace/JSON
          sink without passing back through an encryption engine — and,
          dually, ciphertext fetched from attackable storage must not be
          decrypted before an integrity check clears it (paper sections
          3 and 5: the chip boundary IS the trust boundary).
FLOW002   Seed provenance: every argument flowing into pad/keystream
          generation must originate from a sanctioned counter API
          (``seeds_for_block`` / ``SeedAudit.record_encryption``) — the
          interprocedural generalization of SEC001/SEC003. Pad reuse is
          a two-time pad (paper section 4).
FLOW003   Nondeterminism taint: values derived from wall clocks, the
          process environment, or ambient randomness must not reach
          ``SimResult`` or cache fingerprints — the interprocedural
          generalization of DET001 (trace-driven runs are bit-
          reproducible).
FLOW004   Memo soundness: a memo-cache insertion that records "this
          verified" must be dominated by the verification it memoizes on
          every path — the Freij-et-al. reorder bug class that PR 5's
          fastpath memos make possible.
========  ==================================================================

All four share one :class:`FlowAnalysis` per graph (summary fixpoint +
one taint run per function), cached on the graph object, so selecting
multiple FLOW rules costs one analysis, not four.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import taint
from .engine import AnalyzerCrash, Finding, Rule, register
from .graph import CallSite, FunctionInfo, ProjectGraph

#: Provenance labels planted on every parameter: must-polarity, so a
#: value keeps PARAM:<name> only while it is the parameter on all paths.
PARAM_PREFIX = "PARAM:"

#: Functions whose seed parameter is discharged by checking *their* call
#: sites against the consumer catalog instead of recursing further —
#: the pad/cipher chokepoints themselves.
KEYSTREAM_CHOKEPOINTS = frozenset(
    {
        "apply",
        "encrypt",
        "decrypt",
        "pad",
        "pad_int",
        "block_pad_int",
        "_generate",
        "_apply_reference",
        "decrypt_with_seeds",
    }
)


def _param_labels_for(fn: FunctionInfo) -> dict:
    return {
        p: frozenset({PARAM_PREFIX + p})
        for p in fn.params
        if p not in ("self", "cls")
    }


class FlowAnalysis:
    """Shared taint state for one :class:`ProjectGraph`.

    Builds interprocedural return summaries to fixpoint (propagated only
    through unambiguous names), then runs one final taint pass per
    function whose recorded sink hits and per-call argument labels the
    FLOW rules consume.
    """

    MAX_ROUNDS = 4

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        self.summaries: dict[str, tuple] = {}
        self.tainters: dict[str, taint.FunctionTainter] = {}
        self._compute()

    @classmethod
    def of(cls, graph: ProjectGraph) -> "FlowAnalysis":
        cached = getattr(graph, "_flow_analysis", None)
        if cached is None:
            cached = cls(graph)
            graph._flow_analysis = cached
        return cached

    def _run(self, fn: FunctionInfo) -> taint.FunctionTainter:
        try:
            return taint.FunctionTainter(
                fn.node,
                fn.module.logical,
                summaries=self.summaries,
                param_labels=_param_labels_for(fn),
            ).run()
        except AnalyzerCrash:
            raise
        except Exception as err:
            raise AnalyzerCrash(fn.module.ctx.path, "FLOW", err) from err

    def _compute(self) -> None:
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for fn in self.graph.functions:
                if self.graph.resolve_unique(fn.name) is not fn:
                    continue  # ambiguous names never carry summaries
                tainter = self._run(fn)
                # Caller-relative PARAM labels don't survive into the
                # summary; pass-through is approximated at the call site
                # by unioning the arguments' may-taints.
                labels = frozenset(
                    label
                    for label in tainter.return_labels
                    if not label.startswith(PARAM_PREFIX)
                )
                if labels:
                    entry = (labels, fn.qualname)
                    if self.summaries.get(fn.name) != entry:
                        self.summaries[fn.name] = entry
                        changed = True
                elif fn.name in self.summaries:
                    del self.summaries[fn.name]
                    changed = True
            if not changed:
                break
        for fn in self.graph.functions:
            self.tainters[fn.qualname] = self._run(fn)

    def arg_labels(self, fn: FunctionInfo, call: CallSite, position: int, keyword: str | None):
        """(labels, origin) the given argument carried at this call site."""
        recorded = self.tainters[fn.qualname].call_args.get(id(call.node))
        if recorded is None:
            return taint.EMPTY, ""
        if 0 <= position < len(call.node.args) and position < len(recorded["pos"]):
            if not isinstance(call.node.args[position], ast.Starred):
                return recorded["pos"][position]
        if keyword is not None and keyword in recorded["kw"]:
            return recorded["kw"][keyword]
        return taint.EMPTY, ""


class ProjectRule(Rule):
    """A rule over the assembled program rather than a single file."""

    is_project_rule = True

    def check(self, tree: ast.Module, ctx) -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        raise NotImplementedError

    def flow_finding(
        self, fn: FunctionInfo, node: ast.AST, message: str, trace: tuple = ()
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            message=message,
            path=fn.module.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            trace=trace,
        )


def _trace(origin: str, *steps: str) -> tuple:
    return tuple(step for step in (origin, *steps) if step)


# -- FLOW001: plaintext never crosses the chip boundary ----------------------


@register
class PlaintextEscapeRule(ProjectRule):
    id = "FLOW001"
    severity = "error"
    title = "plaintext must not cross the chip boundary unencrypted"
    rationale = (
        "The processor chip is the trust boundary (paper section 3): "
        "anything written to DRAM, serialized to the swap device, or "
        "emitted into traces is adversary-visible, so a decrypted value "
        "must pass back through an encryption engine first — and "
        "ciphertext arriving from that same untrusted side must clear "
        "an integrity check before it is decrypted and trusted."
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        analysis = FlowAnalysis.of(graph)
        for fn in graph.functions:
            tainter = analysis.tainters[fn.qualname]
            for hit in tainter.sink_hits:
                if hit.sink.label != taint.PLAINTEXT:
                    continue
                yield self.flow_finding(
                    fn,
                    hit.node,
                    f"decrypted plaintext reaches {hit.sink.describe} in "
                    f"{fn.qualname} without re-encryption",
                    trace=_trace(
                        hit.origin,
                        f"{fn.module.logical}:{hit.node.lineno}: "
                        f"escapes the chip boundary via {hit.sink.describe}",
                    ),
                )
            # The dual direction: decrypting bytes whose integrity was
            # never verified trusts the memory adversary's input.
            for call in fn.calls:
                if not taint.match_any(
                    taint.PLAINTEXT_SOURCES, call.name, call.dotted
                ):
                    continue
                recorded = tainter.call_args.get(id(call.node), {"pos": [], "kw": {}})
                for labels, origin in recorded["pos"]:
                    if taint.UNVERIFIED in labels:
                        yield self.flow_finding(
                            fn,
                            call.node,
                            f"{fn.qualname} decrypts ciphertext that was "
                            "never integrity-verified; call verify_data/"
                            "metadata_verify on it first",
                            trace=_trace(
                                origin,
                                f"{fn.module.logical}:{call.node.lineno}: "
                                f"decrypted by {call.name}() before any "
                                "verification",
                            ),
                        )
                        break


# -- FLOW002: seeds originate from sanctioned counter APIs --------------------


@register
class SeedProvenanceFlowRule(ProjectRule):
    id = "FLOW002"
    severity = "error"
    title = "keystream seeds must come from sanctioned counter APIs"
    rationale = (
        "Every pad is E_K(seed) and a repeated seed is a two-time pad "
        "(paper section 4); the only sound producers are the seed-scheme "
        "APIs (seeds_for_block, SeedAudit.record_encryption), which "
        "guarantee LPID + per-block-counter uniqueness. This is SEC001/"
        "SEC003 made interprocedural: the argument is traced through "
        "calls, not just within one expression."
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        analysis = FlowAnalysis.of(graph)
        for fn in graph.functions:
            for call in fn.calls:
                for pattern, position, keyword in taint.KEYSTREAM_CONSUMERS:
                    if not pattern.matches(call.name, call.dotted):
                        continue
                    arg = call.arg(position, keyword)
                    if arg is None:
                        continue  # *args splat: nothing to trace
                    yield from self._check_seed(
                        graph, analysis, fn, call, position, keyword, set()
                    )

    def _check_seed(
        self,
        graph: ProjectGraph,
        analysis: FlowAnalysis,
        fn: FunctionInfo,
        call: CallSite,
        position: int,
        keyword: str | None,
        visited: set,
        steps: tuple = (),
    ) -> Iterator[Finding]:
        labels, origin = analysis.arg_labels(fn, call, position, keyword)
        if taint.SEED_MATERIAL in labels:
            return
        here = (
            f"{fn.module.logical}:{call.node.lineno}: seed argument of "
            f"{call.name}() in {fn.qualname}"
        )
        params = [
            label[len(PARAM_PREFIX):]
            for label in labels
            if label.startswith(PARAM_PREFIX)
        ]
        if params:
            param = params[0]
            if fn.name in KEYSTREAM_CHOKEPOINTS:
                return  # this function's own call sites carry the obligation
            key = (fn.qualname, param)
            if key in visited:
                return
            visited.add(key)
            if graph.resolve_unique(fn.name) is not fn:
                return  # ambiguous callee name: callers can't be attributed
            index = fn.call_index_of_param(param)
            for caller, site in graph.callers_of(fn.name):
                caller_arg = (
                    site.arg(index, param) if index is not None else site.arg(-1, param)
                )
                if caller_arg is None:
                    continue
                yield from self._check_seed(
                    graph,
                    analysis,
                    caller,
                    site,
                    index if index is not None else -1,
                    param,
                    visited,
                    steps + (here + f" <- parameter {param!r}",),
                )
            return
        yield self.flow_finding(
            fn,
            call.node,
            f"seed argument of {call.name}() in {fn.qualname} does not "
            "originate from a sanctioned counter API (seeds_for_block / "
            "record_encryption)",
            trace=_trace(origin, *reversed(steps), here),
        )


# -- FLOW003: nondeterminism never reaches deterministic artifacts ------------


@register
class NondeterminismFlowRule(ProjectRule):
    id = "FLOW003"
    severity = "error"
    title = "nondeterministic values must not reach results or fingerprints"
    rationale = (
        "Trace-driven runs are bit-reproducible: the committed goldens, "
        "the evalx result cache, and every figure depend on it. A wall-"
        "clock, os.environ, or ambient-randomness value flowing into a "
        "SimResult or a cache fingerprint makes results differ run to "
        "run — DET001 traced across function boundaries."
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        analysis = FlowAnalysis.of(graph)
        for fn in graph.functions:
            for hit in analysis.tainters[fn.qualname].sink_hits:
                if hit.sink.label != taint.NONDET:
                    continue
                yield self.flow_finding(
                    fn,
                    hit.node,
                    f"nondeterministic value reaches {hit.sink.describe} in "
                    f"{fn.qualname}; derive it from the config/trace instead",
                    trace=_trace(
                        hit.origin,
                        f"{fn.module.logical}:{hit.node.lineno}: "
                        f"flows into {hit.sink.describe}",
                    ),
                )


# -- FLOW004: memo inserts are dominated by their verification ----------------

_MEMO_HINTS = ("memo", "verified", "cache", "pads")


def _memoish(name: str | None) -> bool:
    if not name:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in _MEMO_HINTS)


def _base_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _memo_inserts(stmt: ast.stmt) -> list[tuple[ast.AST, str]]:
    """(node, memo-name) for memo-style stores in one statement.

    A store is ``memo[key] = value`` on a memo-named container, or a
    ``.insert(...)`` call on one (the PadCache API). Nested function
    bodies are the callee's problem, not this statement's.
    """
    inserts: list[tuple[ast.AST, str]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                name = _base_name(target.value)
                if _memoish(name):
                    inserts.append((stmt, name))
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr == "insert":
            name = _base_name(func.value)
            if _memoish(name):
                inserts.append((stmt, name))
    return inserts


def _is_verify_stmt(stmt: ast.stmt) -> bool:
    """True if executing ``stmt`` performs an integrity verification."""
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False  # don't credit verification inside nested defs
        if isinstance(sub, ast.Call):
            name = None
            if isinstance(sub.func, ast.Attribute):
                name = sub.func.attr
            elif isinstance(sub.func, ast.Name):
                name = sub.func.id
            if name is not None and "verify" in name.lower():
                return True
    return False


def _block_raises(body: list) -> bool:
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                break
            if isinstance(sub, ast.Raise):
                return True
    return False


def _terminates(body: list) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@register
class MemoSoundnessRule(ProjectRule):
    id = "FLOW004"
    severity = "error"
    title = "memo inserts must be dominated by the verification they memoize"
    rationale = (
        "A verified-state memo (the bonsai MAC memo, the pad memos) is "
        "sound only if every insertion happens after the verification it "
        "caches succeeded on that path; an insert that precedes (or can "
        "bypass) the check turns the fastpath into an undetectable-"
        "tamper primitive — the verify/update reorder bug class of "
        "Freij et al."
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for fn in graph.functions:
            verify_somewhere = any(
                _is_verify_stmt(stmt)
                for stmt in ast.walk(fn.node)
                if isinstance(stmt, ast.stmt)
            )
            hits: list[tuple[ast.AST, str]] = []
            self._scan(fn.node.body, False, hits)
            for node, memo_name in hits:
                # Only memos that assert verification are in scope: the
                # function verifies somewhere (so ordering matters) or
                # the container's own name claims verified-ness.
                if not verify_somewhere and "verified" not in memo_name.lower():
                    continue
                yield self.flow_finding(
                    fn,
                    node,
                    f"memo insert into {memo_name!r} in {fn.qualname} is not "
                    "dominated by the verification that should guard it; "
                    "move the insert after the check succeeds on every path",
                    trace=(
                        f"{fn.module.logical}:{getattr(node, 'lineno', 1)}: "
                        f"insert into {memo_name!r} reachable with no prior "
                        "verification on this path",
                    ),
                )

    def _scan(self, body: list, verified: bool, hits: list) -> bool:
        """Walk ``body`` tracking the must-verified state; returns the
        state after the block for its fallthrough paths."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs are scanned as their own functions
            for node, memo_name in _memo_inserts(stmt):
                if not verified:
                    hits.append((node, memo_name))
            if isinstance(stmt, ast.If):
                after_then = self._scan(stmt.body, verified, hits)
                after_else = self._scan(stmt.orelse, verified, hits)
                if _block_raises(stmt.body) or _block_raises(stmt.orelse):
                    # Compare-and-raise guard: surviving it means the
                    # check passed (the verify_data idiom).
                    verified = True
                else:
                    branches = []
                    if not _terminates(stmt.body):
                        branches.append(after_then)
                    if not _terminates(stmt.orelse):
                        branches.append(after_else)
                    verified = all(branches) if branches else verified
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                verified = self._scan(stmt.body, verified, hits)
                self._scan(stmt.orelse, verified, hits)
            elif isinstance(stmt, ast.Try):
                after_body = self._scan(stmt.body, verified, hits)
                for handler in stmt.handlers:
                    self._scan(handler.body, verified, hits)
                after_else = self._scan(stmt.orelse, after_body, hits)
                verified = self._scan(stmt.finalbody, after_else, hits)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                verified = self._scan(stmt.body, verified, hits)
            if _is_verify_stmt(stmt):
                verified = True
        return verified
