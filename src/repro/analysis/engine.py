"""The lint engine: rule registry, file contexts, suppressions, drivers.

A *rule* is a class with an ``id`` (e.g. ``SEC003``), a ``severity``, a
one-line ``title``, and a ``check(tree, ctx)`` generator yielding
:class:`Finding` objects.  Rules register themselves with
:func:`register`; the drivers (:func:`analyze_source`,
:func:`analyze_paths`) run every selected rule over every file and
filter the results through ``# repro: allow(RULE-ID)`` suppressions.

Path scoping works on *logical paths*: the file's path relative to the
``repro`` package (``core/seeds.py``, ``osmodel/swap.py``, ...).  Rules
scope themselves with :meth:`FileContext.under` /
:meth:`FileContext.is_file` so fixtures in the test suite can pretend to
live anywhere in the tree.
"""

from __future__ import annotations

import ast
import io
import tokenize
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

SEVERITIES = ("error", "warning")

# ``# repro: allow(SEC001)``, ``# repro: allow(SEC001, DET001)``, or the
# escape hatch ``# repro: allow(*)``.
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\-\s*]+?)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    message: str
    path: str
    line: int
    col: int = 0

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class FileContext:
    """Everything a rule may want to know about the file under analysis."""

    def __init__(self, path: str, source: str, logical_path: str | None = None):
        self.path = path
        self.source = source
        self.logical = logical_path if logical_path is not None else logical_path_for(path)
        self.suppressions = parse_suppressions(source)

    # -- path scoping helpers ------------------------------------------------

    def under(self, *prefixes: str) -> bool:
        """True if the logical path sits under any of ``prefixes``."""
        return any(
            self.logical == p or self.logical.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def is_file(self, *names: str) -> bool:
        return self.logical in names

    def suppressed(self, rule_id: str, line: int) -> bool:
        allowed = self.suppressions.get(line)
        return allowed is not None and (rule_id in allowed or "*" in allowed)


def logical_path_for(path: str) -> str:
    """Path relative to the ``repro`` package (or the bare filename).

    ``src/repro/core/seeds.py`` -> ``core/seeds.py``;  a path with no
    ``repro`` component maps to its final components unchanged so the
    engine still works on loose files.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    return Path(path).name


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids allowed there.

    A suppression comment applies to its own line; a comment that is the
    only thing on its line also applies to the next line, so both styles
    work::

        latency = 28  # repro: allow(SIM001)

        # repro: allow(SIM001)
        latency = 28
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return allowed
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(tok.string)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        line = tok.start[0]
        allowed.setdefault(line, set()).update(ids)
        before = lines[line - 1][: tok.start[1]] if line - 1 < len(lines) else ""
        if not before.strip():  # comment-only line: cover the next line too
            allowed.setdefault(line + 1, set()).update(ids)
    return allowed


class Rule:
    """Base class for lint rules. Subclasses register with :func:`register`."""

    id: str = "RULE000"
    severity: str = "warning"
    title: str = ""
    rationale: str = ""  # the invariant this guards (shown by --list-rules)

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(f"rule {rule_cls.id}: unknown severity {rule_cls.severity!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return dict(_REGISTRY)


def get_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Instantiate the registered rules, honouring select/ignore lists."""
    registry = all_rules()
    chosen = list(select) if select else sorted(registry)
    unknown = [rid for rid in chosen if rid not in registry]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    dropped = set(ignore or ())
    return [registry[rid]() for rid in chosen if rid not in dropped]


# -- drivers -----------------------------------------------------------------


def analyze_source(
    source: str,
    path: str = "<string>",
    logical_path: str | None = None,
    rules: list[Rule] | None = None,
    respect_suppressions: bool = True,
) -> list[Finding]:
    """Run the rules over one source string; returns surviving findings."""
    ctx = FileContext(path, source, logical_path=logical_path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(
                rule="PARSE",
                severity="error",
                message=f"could not parse: {err.msg}",
                path=path,
                line=err.lineno or 1,
                col=err.offset or 0,
            )
        ]
    findings: list[Finding] = []
    for rule in rules if rules is not None else get_rules():
        if not rule.applies(ctx):
            continue
        for finding in rule.check(tree, ctx):
            if respect_suppressions and ctx.suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the .py files to analyze."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "egg-info" in sub.parts or ".egg-info" in str(sub.parent):
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def analyze_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> list[Finding]:
    """Analyze every .py file reachable from ``paths``."""
    rules = get_rules(select=select, ignore=ignore)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            analyze_source(
                source,
                path=str(file_path),
                rules=rules,
                respect_suppressions=respect_suppressions,
            )
        )
    return findings
