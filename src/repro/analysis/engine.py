"""The lint engine: rule registry, file contexts, suppressions, drivers.

A *rule* is a class with an ``id`` (e.g. ``SEC003``), a ``severity``, a
one-line ``title``, and a ``check(tree, ctx)`` generator yielding
:class:`Finding` objects.  Rules register themselves with
:func:`register`; the drivers (:func:`analyze_source`,
:func:`analyze_paths`) run every selected rule over every file and
filter the results through ``# repro: allow(RULE-ID)`` suppressions.

Path scoping works on *logical paths*: the file's path relative to the
``repro`` package (``core/seeds.py``, ``osmodel/swap.py``, ...).  Rules
scope themselves with :meth:`FileContext.under` /
:meth:`FileContext.is_file` so fixtures in the test suite can pretend to
live anywhere in the tree.
"""

from __future__ import annotations

import ast
import io
import tokenize
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

SEVERITIES = ("error", "warning")

# ``# repro: allow(SEC001)``, ``# repro: allow(SEC001, DET001)``, or the
# escape hatch ``# repro: allow(*)``.
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\-\s*]+?)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``trace`` is the flow rules' witness path: one human-readable step
    per line, source to sink, so a cross-module finding is actionable
    without re-running the analysis in one's head.
    """

    rule: str
    severity: str
    message: str
    path: str
    line: int
    col: int = 0
    trace: tuple = ()

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class AnalyzerCrash(Exception):
    """A rule raised while analyzing a file (exit code 2, not 1).

    Carries the file being analyzed so the CLI can report *where* the
    analyzer fell over instead of dumping a bare traceback.
    """

    def __init__(self, path: str, rule_id: str, original: BaseException):
        super().__init__(
            f"analyzer crashed in rule {rule_id} while analyzing {path}: "
            f"{type(original).__name__}: {original}"
        )
        self.path = path
        self.rule_id = rule_id
        self.original = original


class FileContext:
    """Everything a rule may want to know about the file under analysis."""

    def __init__(self, path: str, source: str, logical_path: str | None = None):
        self.path = path
        self.source = source
        self.logical = logical_path if logical_path is not None else logical_path_for(path)
        self.suppressions = parse_suppressions(source)

    # -- path scoping helpers ------------------------------------------------

    def under(self, *prefixes: str) -> bool:
        """True if the logical path sits under any of ``prefixes``."""
        return any(
            self.logical == p or self.logical.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def is_file(self, *names: str) -> bool:
        return self.logical in names

    def suppressed(self, rule_id: str, line: int) -> bool:
        allowed = self.suppressions.get(line)
        return allowed is not None and (rule_id in allowed or "*" in allowed)


def logical_path_for(path: str) -> str:
    """Path relative to the ``repro`` package (or the bare filename).

    ``src/repro/core/seeds.py`` -> ``core/seeds.py``.  Files under a
    ``tests`` or ``benchmarks`` root keep that root as their first
    logical component (``tests/analysis/test_flow.py``) so rules can
    scope themselves with ``ctx.under("tests")``.  A path with neither
    anchor maps to its bare filename so the engine still works on loose
    files.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] in ("tests", "benchmarks"):
            return "/".join(parts[i:])
    return Path(path).name


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids allowed there.

    A suppression comment applies to its own line; a comment that is the
    only thing on its line also applies to the next line, so both styles
    work::

        latency = 28  # repro: allow(SIM001)

        # repro: allow(SIM001)
        latency = 28
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return allowed
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(tok.string)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        line = tok.start[0]
        allowed.setdefault(line, set()).update(ids)
        before = lines[line - 1][: tok.start[1]] if line - 1 < len(lines) else ""
        if not before.strip():  # comment-only line: cover the next line too
            allowed.setdefault(line + 1, set()).update(ids)
    return allowed


class Rule:
    """Base class for lint rules. Subclasses register with :func:`register`."""

    id: str = "RULE000"
    severity: str = "warning"
    title: str = ""
    rationale: str = ""  # the invariant this guards (shown by --list-rules)
    #: Library-discipline rules don't lint tests/benchmarks (attack tests
    #: deliberately violate the invariants they probe). Hygiene rules set
    #: this False to cover the whole tree.
    library_only: bool = True
    #: Project rules analyze the assembled ProjectGraph, not single files.
    is_project_rule: bool = False

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(f"rule {rule_cls.id}: unknown severity {rule_cls.severity!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    from . import rules as _rules  # noqa: F401  (import registers the rules)
    from . import flow as _flow  # noqa: F401  (FLOW rules register too)

    return dict(_REGISTRY)


def get_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Instantiate the registered rules, honouring select/ignore lists."""
    registry = all_rules()
    chosen = list(select) if select else sorted(registry)
    unknown = [rid for rid in chosen if rid not in registry]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    dropped = set(ignore or ())
    return [registry[rid]() for rid in chosen if rid not in dropped]


# -- drivers -----------------------------------------------------------------


def analyze_source(
    source: str,
    path: str = "<string>",
    logical_path: str | None = None,
    rules: list[Rule] | None = None,
    respect_suppressions: bool = True,
) -> list[Finding]:
    """Run the rules over one source string; returns surviving findings."""
    ctx = FileContext(path, source, logical_path=logical_path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(
                rule="PARSE",
                severity="error",
                message=f"could not parse: {err.msg}",
                path=path,
                line=err.lineno or 1,
                col=err.offset or 0,
            )
        ]
    findings: list[Finding] = []
    for rule in rules if rules is not None else get_rules():
        if rule.is_project_rule:
            continue  # needs the whole program: see analyze_project
        if rule.library_only and ctx.under("tests", "benchmarks"):
            continue
        if not rule.applies(ctx):
            continue
        try:
            for finding in rule.check(tree, ctx):
                if respect_suppressions and ctx.suppressed(finding.rule, finding.line):
                    continue
                findings.append(finding)
        except Exception as err:  # a rule bug must not masquerade as findings
            raise AnalyzerCrash(path, rule.id, err) from err
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the .py files to analyze."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "egg-info" in sub.parts or ".egg-info" in str(sub.parent):
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def analyze_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> list[Finding]:
    """Analyze every .py file reachable from ``paths``."""
    rules = get_rules(select=select, ignore=ignore)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            analyze_source(
                source,
                path=str(file_path),
                rules=rules,
                respect_suppressions=respect_suppressions,
            )
        )
    return findings


def analyze_project(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> list[Finding]:
    """Per-file rules plus the whole-program FLOW rules over ``paths``.

    The flow rules see every parseable file under ``paths`` as one
    program (import graph, call graph, interprocedural taint), so run
    this over a package root, not a single file, for meaningful results.
    """
    from .graph import ProjectGraph  # deferred: graph imports this module

    rules = get_rules(select=select, ignore=ignore)
    registry = all_rules()
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        ctx = FileContext(str(file_path), source)
        file_findings = analyze_source(
            source,
            path=ctx.path,
            logical_path=ctx.logical,
            rules=rules,
            respect_suppressions=respect_suppressions,
        )
        findings.extend(file_findings)
        if not any(f.rule == "PARSE" for f in file_findings):
            contexts.append(ctx)
    ctx_by_path = {ctx.path: ctx for ctx in contexts}
    project_rules = [r for r in rules if r.is_project_rule]
    if project_rules and contexts:
        graph = ProjectGraph.build(contexts)
        for rule in project_rules:
            try:
                raw = list(rule.check_project(graph))
            except AnalyzerCrash:
                raise
            except Exception as err:
                raise AnalyzerCrash("<project>", rule.id, err) from err
            for finding in raw:
                ctx = ctx_by_path.get(finding.path)
                if ctx is None:
                    findings.append(finding)
                    continue
                if respect_suppressions and ctx.suppressed(finding.rule, finding.line):
                    continue
                rule_cls = registry.get(finding.rule)
                if (
                    rule_cls is not None
                    and rule_cls.library_only
                    and ctx.under("tests", "benchmarks")
                ):
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# -- baselines ---------------------------------------------------------------


def baseline_key(finding: Finding) -> str:
    """Stable identity for baseline matching: rule, logical path, message.

    Line numbers are deliberately excluded so unrelated edits above a
    known finding don't un-baseline it.
    """
    return f"{finding.rule}|{logical_path_for(finding.path)}|{finding.message}"


def write_baseline(findings: Iterable[Finding], path: str) -> None:
    """Record the current findings as the accepted baseline."""
    import json

    keys = sorted({baseline_key(f) for f in findings})
    Path(path).write_text(
        json.dumps({"version": 1, "accepted": keys}, indent=2) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: str) -> set[str]:
    import json

    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return set(payload.get("accepted", []))


def apply_baseline(findings: Iterable[Finding], accepted: set[str]) -> list[Finding]:
    """Drop findings whose :func:`baseline_key` is in ``accepted``."""
    return [f for f in findings if baseline_key(f) not in accepted]
