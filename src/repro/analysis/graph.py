"""Whole-program structure: modules, functions, imports, and call sites.

The per-file rules in :mod:`repro.analysis.rules` see one AST at a time;
the FLOW rules (:mod:`repro.analysis.flow`) reason about values crossing
function and module boundaries, which needs the project assembled first:

* :class:`ModuleInfo` — one parsed file: its logical path, dotted module
  name, import aliases, and every function/method defined in it;
* :class:`FunctionInfo` — one function or method with its call sites
  pre-extracted (:class:`CallSite`: the terminal callee name plus the
  dotted receiver chain, the two facts call resolution works from);
* :class:`ProjectGraph` — the assembled program: name-indexed function
  lookup, caller queries, the module-level import graph, and the
  package layering table documented in docs/static-analysis.md.

Call resolution is deliberately *name-keyed*: Python has no static
types, so a call ``self._cipher.decrypt(...)`` resolves to every
function def named ``decrypt`` in the project. The flow engine layers
two disciplines on top: interprocedural summaries propagate only
through *unambiguous* names (exactly one def project-wide), and the
security-relevant polymorphic names (``decrypt``, ``encrypt``, ...)
are pinned by the explicit catalogs in :mod:`repro.analysis.taint`,
which may also require a receiver hint. That keeps the analysis sound
where it matters and quiet where it cannot know.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .engine import FileContext


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    name: str  # terminal callee name: "decrypt" for a.b.decrypt(...)
    dotted: str | None  # full dotted chain when Name-rooted, else None

    @property
    def receiver(self) -> str | None:
        """The name the method is invoked on: "_cipher" for self._cipher.f()."""
        if self.dotted is None or "." not in self.dotted:
            return None
        parts = self.dotted.split(".")
        return parts[-2]

    def arg(self, position: int, keyword: str | None = None) -> ast.expr | None:
        """Positional argument ``position``, falling back to ``keyword``."""
        if 0 <= position < len(self.node.args):
            candidate = self.node.args[position]
            if not isinstance(candidate, ast.Starred):
                return candidate
        if keyword is not None:
            for kw in self.node.keywords:
                if kw.arg == keyword:
                    return kw.value
        return None


@dataclass
class FunctionInfo:
    """A function or method definition plus its extracted call sites."""

    name: str
    qualname: str  # "core/encryption.py::AiseEncryption.decrypt"
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    calls: list[CallSite] = field(default_factory=list)

    @property
    def params(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def call_index_of_param(self, param: str) -> int | None:
        """The positional index callers use for ``param`` (self/cls-adjusted).

        None for keyword-only parameters (callers must use the keyword).
        """
        args = self.node.args
        positional = [a.arg for a in args.posonlyargs + args.args]
        if param not in positional:
            return None
        index = positional.index(param)
        if self.is_method and positional and positional[0] in ("self", "cls"):
            index -= 1
        return index if index >= 0 else None


@dataclass
class ModuleInfo:
    """One parsed source file of the project."""

    ctx: FileContext
    tree: ast.Module
    module_name: str  # "repro.core.encryption"
    functions: list[FunctionInfo] = field(default_factory=list)
    #: local alias -> imported dotted module/symbol ("np" -> "numpy")
    aliases: dict[str, str] = field(default_factory=dict)
    #: fully-dotted repro modules this module imports
    repro_imports: set[str] = field(default_factory=set)

    @property
    def logical(self) -> str:
        return self.ctx.logical

    @property
    def package(self) -> str:
        """The first-level package the module lives in ("core", "osmodel")."""
        return self.logical.split("/")[0] if "/" in self.logical else "<root>"


def module_name_for(logical: str) -> str:
    """Dotted module name for a logical path: core/seeds.py -> repro.core.seeds."""
    stem = logical[:-3] if logical.endswith(".py") else logical
    parts = [p for p in stem.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


def _extract_calls(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[CallSite]:
    """Call sites in ``fn``'s own body — nested defs own their own calls."""
    calls = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(sub))
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute):
            calls.append(CallSite(sub, func.attr, _dotted(func)))
        elif isinstance(func, ast.Name):
            calls.append(CallSite(sub, func.id, func.id))
    return calls


def _collect_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.aliases[alias.asname or alias.name.split(".")[0]] = alias.name
                if alias.name == "repro" or alias.name.startswith("repro."):
                    module.repro_imports.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            target = node.module or ""
            if node.level:  # relative: resolve against this module's package
                base = module.module_name.split(".")
                # level 1 strips the module's own name, each extra level one more.
                base = base[: len(base) - node.level]
                target = ".".join(base + ([target] if target else []))
            for alias in node.names:
                dotted = f"{target}.{alias.name}" if target else alias.name
                module.aliases[alias.asname or alias.name] = dotted
                if target == "repro" or target.startswith("repro."):
                    module.repro_imports.add(target)


def _collect_functions(module: ModuleInfo) -> None:
    def visit(body, class_name):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{class_name}.{node.name}" if class_name else node.name
                module.functions.append(
                    FunctionInfo(
                        name=node.name,
                        qualname=f"{module.logical}::{qual}",
                        module=module,
                        node=node,
                        class_name=class_name,
                        calls=_extract_calls(node),
                    )
                )
                # Nested defs still index by name (closures in fastpath.py).
                visit(node.body, class_name)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, node.name)

    visit(module.tree.body, None)


class ProjectGraph:
    """The assembled program: modules, functions, imports, call edges."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = {m.logical: m for m in modules}
        self.functions: list[FunctionInfo] = [
            f for m in modules for f in m.functions
        ]
        self.by_name: dict[str, list[FunctionInfo]] = {}
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
        # Class-body aliases ("decrypt = apply") widen the name index: a
        # call to the alias behaves like a call to the aliased def.
        for module in modules:
            self._index_aliased_defs(module)

    @classmethod
    def build(cls, contexts: list[FileContext]) -> "ProjectGraph":
        modules = []
        for ctx in contexts:
            tree = ast.parse(ctx.source, filename=ctx.path)
            module = ModuleInfo(ctx=ctx, tree=tree, module_name=module_name_for(ctx.logical))
            _collect_imports(module)
            _collect_functions(module)
            modules.append(module)
        return cls(modules)

    def _index_aliased_defs(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            local = {f.name: f for f in module.functions if f.class_name == node.name}
            for item in node.body:
                if (
                    isinstance(item, ast.Assign)
                    and isinstance(item.value, ast.Name)
                    and item.value.id in local
                ):
                    for target in item.targets:
                        if isinstance(target, ast.Name) and target.id not in local:
                            self.by_name.setdefault(target.id, []).append(
                                local[item.value.id]
                            )

    # -- queries ------------------------------------------------------------

    def defs_named(self, name: str) -> list[FunctionInfo]:
        return self.by_name.get(name, [])

    def resolve_unique(self, name: str) -> FunctionInfo | None:
        """The single def for ``name``, or None when absent/ambiguous.

        Interprocedural summaries only flow through unambiguous names —
        a polymorphic name must instead appear in a taint catalog.
        """
        defs = self.by_name.get(name, [])
        return defs[0] if len(defs) == 1 else None

    def callers_of(self, name: str) -> list[tuple[FunctionInfo, CallSite]]:
        """Every (caller, call site) invoking ``name`` anywhere in the project."""
        out = []
        for fn in self.functions:
            for call in fn.calls:
                if call.name == name:
                    out.append((fn, call))
        return out

    # -- import structure ---------------------------------------------------

    def module_imports(self) -> dict[str, set[str]]:
        """logical path -> logical paths of project modules it imports."""
        by_name = {m.module_name: m.logical for m in self.modules.values()}
        edges: dict[str, set[str]] = {}
        for module in self.modules.values():
            targets = set()
            for imported in module.repro_imports:
                # An import of a symbol resolves to its defining module,
                # a package import to its __init__.
                probe = imported
                while probe and probe not in by_name:
                    probe = probe.rpartition(".")[0]
                if probe and by_name[probe] != module.logical:
                    targets.add(by_name[probe])
            edges[module.logical] = targets
        return edges

    def package_imports(self) -> dict[str, set[str]]:
        """First-level package -> packages it imports (the layering table)."""
        edges: dict[str, set[str]] = {}
        for source, targets in self.module_imports().items():
            src_pkg = source.split("/")[0] if "/" in source else "<root>"
            bucket = edges.setdefault(src_pkg, set())
            for target in targets:
                dst_pkg = target.split("/")[0] if "/" in target else "<root>"
                if dst_pkg != src_pkg:
                    bucket.add(dst_pkg)
        return edges

    def package_layers(self) -> list[list[str]]:
        """Packages grouped bottom-up: layer 0 imports nothing below it.

        Cycles collapse into one layer (reported together) rather than
        erroring — the layering table is documentation, not a gate.
        """
        edges = self.package_imports()
        remaining = dict(edges)
        layers: list[list[str]] = []
        placed: set[str] = set()
        while remaining:
            ready = sorted(
                pkg for pkg, deps in remaining.items() if deps <= placed
            )
            if not ready:  # cycle: take the whole strongly-tangled rest
                ready = sorted(remaining)
            layers.append(ready)
            placed.update(ready)
            for pkg in ready:
                remaining.pop(pkg)
        return layers
