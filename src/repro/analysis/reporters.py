"""Render lint findings as human text or machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .engine import Finding, all_rules


def render_text(findings: Iterable[Finding], verbose: bool = False) -> str:
    """One line per finding (plus its flow trace) and a per-rule summary."""
    findings = list(findings)
    lines = []
    for f in findings:
        lines.append(f"{f.location()}: {f.severity} {f.rule}: {f.message}")
        for step in f.trace:
            lines.append(f"    flow: {step}")
    if not findings:
        lines.append("no findings")
    else:
        counts = Counter(f.rule for f in findings)
        summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        lines.append(f"{len(findings)} finding(s): {summary}")
    if verbose:
        registry = all_rules()
        for rule_id in sorted({f.rule for f in findings}):
            rule = registry.get(rule_id)
            if rule is not None:
                lines.append(f"  {rule_id}: {rule.rationale}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Stable JSON document: findings plus per-rule/severity counts."""
    findings = list(findings)
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "message": f.message,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "trace": list(f.trace),
            }
            for f in findings
        ],
        "counts": {
            "total": len(findings),
            "by_rule": dict(sorted(Counter(f.rule for f in findings).items())),
            "by_severity": dict(
                sorted(Counter(f.severity for f in findings).items())
            ),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Iterable[Finding]) -> str:
    """SARIF 2.1.0 document, one run, for code-scanning upload/artifacts."""
    findings = list(findings)
    registry = all_rules()
    used = sorted({f.rule for f in findings} | set(registry))
    rules = []
    for rule_id in used:
        rule_cls = registry.get(rule_id)
        entry = {"id": rule_id}
        if rule_cls is not None:
            entry["shortDescription"] = {"text": rule_cls.title or rule_id}
            if rule_cls.rationale:
                entry["fullDescription"] = {"text": rule_cls.rationale}
            entry["defaultConfiguration"] = {
                "level": "error" if rule_cls.severity == "error" else "warning"
            }
        rules.append(entry)
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
        }
        if f.trace:
            result["message"]["text"] += "\n" + "\n".join(
                f"flow: {step}" for step in f.trace
            )
        results.append(result)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` catalogue."""
    lines = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        lines.append(f"{rule_id} [{rule_cls.severity}] {rule_cls.title}")
        if rule_cls.rationale:
            lines.append(f"    {rule_cls.rationale}")
    return "\n".join(lines)
