"""Render lint findings as human text or machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .engine import Finding, all_rules


def render_text(findings: Iterable[Finding], verbose: bool = False) -> str:
    """One line per finding plus a per-rule summary."""
    findings = list(findings)
    lines = [
        f"{f.location()}: {f.severity} {f.rule}: {f.message}" for f in findings
    ]
    if not findings:
        lines.append("no findings")
    else:
        counts = Counter(f.rule for f in findings)
        summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        lines.append(f"{len(findings)} finding(s): {summary}")
    if verbose:
        registry = all_rules()
        for rule_id in sorted({f.rule for f in findings}):
            rule = registry.get(rule_id)
            if rule is not None:
                lines.append(f"  {rule_id}: {rule.rationale}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Stable JSON document: findings plus per-rule/severity counts."""
    findings = list(findings)
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "message": f.message,
                "path": f.path,
                "line": f.line,
                "col": f.col,
            }
            for f in findings
        ],
        "counts": {
            "total": len(findings),
            "by_rule": dict(sorted(Counter(f.rule for f in findings).items())),
            "by_severity": dict(
                sorted(Counter(f.severity for f in findings).items())
            ),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` catalogue."""
    lines = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        lines.append(f"{rule_id} [{rule_cls.severity}] {rule_cls.title}")
        if rule_cls.rationale:
            lines.append(f"    {rule_cls.rationale}")
    return "\n".join(lines)
