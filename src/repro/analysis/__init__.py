"""Security-invariant static analysis for the AISE/BMT reproduction.

The paper's design (Rogers et al., MICRO 2007) is a bundle of invariants
— seeds are never address-derived, counters only move forward, MACs are
keyed and bind (ciphertext, counter, address), the bonsai tree anchors
counter freshness — and this package is the tooling that keeps new code
honest about them.  It provides:

* an AST-based lint engine with a rule registry, per-rule severity,
  ``# repro: allow(RULE-ID)`` suppressions, baseline files, and
  text/JSON/SARIF reporters (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.reporters`);
* the per-file domain rules (:mod:`repro.analysis.rules`):
  SEC001-SEC004 for the paper's security invariants, DET001 for
  trace-run determinism, SIM001 for timing-model discipline, and the
  generic GEN001/GEN002 hygiene rules;
* the whole-program FLOW rules (:mod:`repro.analysis.flow`): an
  import/call graph (:mod:`repro.analysis.graph`) and a taint lattice
  (:mod:`repro.analysis.taint`) proving the chip-boundary (FLOW001),
  seed-provenance (FLOW002), determinism (FLOW003), and memo-soundness
  (FLOW004) invariants across function and module boundaries;
* a CLI: ``python -m repro.analysis src/repro --flow`` (also installed
  as ``repro-analyze`` and reachable via ``python -m repro analyze``).

The static rules have a dynamic counterpart in
:mod:`repro.core.sanitizer`, which arms cheap runtime assertions at the
same seams the rules guard.
"""

from __future__ import annotations

from .engine import (
    AnalyzerCrash,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_project,
    analyze_source,
    apply_baseline,
    baseline_key,
    get_rules,
    load_baseline,
    register,
    write_baseline,
)
from .graph import ProjectGraph
from .reporters import render_json, render_sarif, render_text

__all__ = [
    "AnalyzerCrash",
    "FileContext",
    "Finding",
    "ProjectGraph",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "apply_baseline",
    "baseline_key",
    "get_rules",
    "load_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
