"""Security-invariant static analysis for the AISE/BMT reproduction.

The paper's design (Rogers et al., MICRO 2007) is a bundle of invariants
— seeds are never address-derived, counters only move forward, MACs are
keyed and bind (ciphertext, counter, address), the bonsai tree anchors
counter freshness — and this package is the tooling that keeps new code
honest about them.  It provides:

* an AST-based lint engine with a rule registry, per-rule severity,
  ``# repro: allow(RULE-ID)`` suppressions and text/JSON reporters
  (:mod:`repro.analysis.engine`, :mod:`repro.analysis.reporters`);
* the domain rules themselves (:mod:`repro.analysis.rules`):
  SEC001-SEC003 for the paper's security invariants, DET001 for
  trace-run determinism, SIM001 for timing-model discipline, and the
  generic GEN001/GEN002 hygiene rules;
* a CLI: ``python -m repro.analysis src/repro`` (also installed as
  ``repro-analyze`` and reachable via ``python -m repro analyze``).

The static rules have a dynamic counterpart in
:mod:`repro.core.sanitizer`, which arms cheap runtime assertions at the
same seams the rules guard.
"""

from __future__ import annotations

from .engine import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rules,
    register,
)
from .reporters import render_json, render_text

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rules",
    "register",
    "render_json",
    "render_text",
]
