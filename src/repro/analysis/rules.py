"""Domain lint rules for the AISE/BMT reproduction.

Every rule guards one invariant of the paper (Rogers et al., MICRO 2007)
or one discipline of this repository:

========  ==================================================================
SEC001    Seed material must come from :mod:`repro.core.seeds` — no ad-hoc
          address-derived seeds (paper section 4: AISE's security argument
          is precisely that seeds are *not* address-derived; CROSSLINE
          broke SEV by violating the equivalent assumption).
SEC002    No unkeyed hash where a keyed MAC is required (paper section 5:
          every authentication primitive is keyed with an on-chip secret).
SEC003    Counter state only moves through the monotonic APIs in
          :mod:`repro.core.counters` (paper sections 4.1/4.3: counter
          reuse is pad reuse).
SEC004    No reaching into another object's private state (``x.y._z``):
          volatile on-chip state (counter caches, trusted Merkle nodes)
          is cleared/queried through public APIs so the security-
          relevant lifecycle is auditable at the owning class.
DET001    No wall-clock or unseeded randomness in the library (trace-
          driven runs must be bit-reproducible); ``evalx`` reporting is
          exempt.
SIM001    Timing costs come from :class:`repro.core.config.MachineConfig`,
          not from literals sprinkled through the simulator (section 6's
          parameters live in one place).
SCH001    The functional machine, the timing simulator, and the kernel
          never branch on ``ENC_*``/``INT_*`` scheme constants — scheme
          behavior lives in the :mod:`repro.schemes` descriptors, so a
          new scheme is one new file, not a hunt through if/elif chains.
SCH002    Merkle tree node state mutates only through the tree's own
          update/scheduler API (``update``/``flush_pending``/``drain``/
          ``build``) — no direct writes to a tree's node stores or root
          register outside :mod:`repro.integrity`. The incremental
          engine's soundness argument (dirty write-back cache is
          authoritative; drains are bottom-up) holds only if every
          mutation goes through it.
OBS001    Statistics objects mutate only inside their owning component;
          everyone else observes them through the pull-model adapters in
          :mod:`repro.obs.adapters` (and resets via ``reset_stats()``),
          so reported numbers have exactly one source of truth.
OBS002    Metrics register only through :mod:`repro.obs.adapters` — no
          ad-hoc ``registry.counter()/bind()/...`` from engine code, so
          the metric namespace (and the fleet merge semantics and
          exporters built on it) is auditable in one module.
API001    Example scripts (the tutorial surface) import only the
          :mod:`repro.api` facade — never ``repro.*`` internals — so the
          facade provably covers every documented workflow and internal
          modules stay free to refactor.
API002    The simulation knobs (``events``, ``workers``, ``cache_dir``,
          ``metrics``) are spelled and defaulted identically across the
          :mod:`repro.api` facade functions, the service request schema,
          and the CLI's argparse flags — one grammar, three surfaces.
GEN001    No bare ``except:``.
GEN002    No mutable default arguments.
========  ==================================================================
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath
from typing import Iterator

from .engine import FileContext, Finding, Rule, register

# -- shared AST helpers ------------------------------------------------------

_ADDRESS_NAMES = {
    "paddr",
    "vaddr",
    "addr",
    "address",
    "block_number",
    "page_index",
    "page_idx",
    "frame_index",
}
_ADDRESS_SUFFIXES = ("_paddr", "_vaddr", "_addr", "_address")


def _is_addressy(name: str) -> bool:
    return name in _ADDRESS_NAMES or name.endswith(_ADDRESS_SUFFIXES)


def _target_name(node: ast.AST) -> str | None:
    """The terminal name of an assignment target (``x`` or ``obj.x``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _assign_targets(node: ast.AST) -> list[ast.expr]:
    """Flattened assignment targets of an Assign/AnnAssign/AugAssign."""
    if isinstance(node, ast.Assign):
        targets: list[ast.expr] = []
        for t in node.targets:
            if isinstance(t, (ast.Tuple, ast.List)):
                targets.extend(t.elts)
            else:
                targets.append(t)
        return targets
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _contains_address_bitop(expr: ast.AST) -> bool:
    """True if ``expr`` mixes an address-derived name into a ``<<``/``|``."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, (ast.LShift, ast.BitOr)):
            for leaf in ast.walk(sub):
                name = None
                if isinstance(leaf, ast.Name):
                    name = leaf.id
                elif isinstance(leaf, ast.Attribute):
                    name = leaf.attr
                if name is not None and _is_addressy(name):
                    return True
    return False


def _has_literal_at_least(expr: ast.AST, minimum: int) -> ast.Constant | None:
    for sub in ast.walk(expr):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, (int, float))
            and not isinstance(sub.value, bool)
            and sub.value >= minimum
        ):
            return sub
    return None


# -- SEC001: seed construction goes through core.seeds -----------------------


@register
class SeedProvenanceRule(Rule):
    id = "SEC001"
    severity = "error"
    title = "seed construction must go through repro.core.seeds"
    rationale = (
        "AISE's security argument (paper section 4) is that encryption "
        "seeds are address-independent and globally unique; composing "
        "seed material ad hoc — especially from addresses — reintroduces "
        "the pad-reuse bugs of the baseline schemes."
    )

    WATCHED = ("core", "crypto", "integrity")
    HOME = "core/seeds.py"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.under(*self.WATCHED) and not ctx.is_file(self.HOME)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        return_owner = self._return_owners(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                if node.name.endswith("SeedScheme"):
                    yield self.finding(
                        ctx,
                        node,
                        f"seed scheme {node.name!r} defined outside core/seeds.py; "
                        "add it to the registry in repro.core.seeds instead",
                    )
                    continue
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                        item.name in ("seed", "seeds_for_block")
                    ):
                        yield self.finding(
                            ctx,
                            item,
                            f"method {item.name!r} defines seed composition outside "
                            "core/seeds.py; use a SeedScheme from repro.core.seeds",
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for target in _assign_targets(node):
                    name = _target_name(target)
                    if name is None or "seed" not in name.lower() or "audit" in name.lower():
                        continue
                    value = getattr(node, "value", None)
                    if value is not None and _contains_address_bitop(value):
                        yield self.finding(
                            ctx,
                            node,
                            f"{name!r} is composed from address-derived material; "
                            "seeds must come from a repro.core.seeds SeedScheme",
                        )
            elif isinstance(node, ast.Return) and node.value is not None:
                # Only flag returns from functions that are seed factories.
                parent = return_owner.get(id(node))
                if (
                    parent is not None
                    and "seed" in parent.lower()
                    and _contains_address_bitop(node.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"function {parent!r} returns address-derived seed material; "
                        "seeds must come from a repro.core.seeds SeedScheme",
                    )

    @staticmethod
    def _return_owners(tree: ast.Module) -> dict[int, str]:
        """Map each Return node to its innermost enclosing function name."""
        owners: dict[int, str] = {}
        for fn in ast.walk(tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(fn):
                    if isinstance(sub, ast.Return):
                        owners[id(sub)] = fn.name  # innermost visited last (walk order)
        return owners


# -- SEC002: keyed MACs only -------------------------------------------------


@register
class UnkeyedHashRule(Rule):
    id = "SEC002"
    severity = "error"
    title = "no unkeyed hash where a keyed MAC is required"
    rationale = (
        "Every authentication primitive in the design is keyed with an "
        "on-chip secret (paper section 5); an unkeyed digest is forgeable "
        "by the memory adversary."
    )

    EXEMPT_DIRS = ("crypto",)
    EXEMPT_FILES = ("integrity/merkle.py",)
    UNKEYED = {"sha1", "sha256", "sha384", "sha512", "md5"}
    BLAKE = {"blake2s", "blake2b"}
    KEYING_KWARGS = {"key", "person", "salt"}

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.under(*self.EXEMPT_DIRS) or ctx.is_file(*self.EXEMPT_FILES))

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name is None:
                continue
            if name in self.UNKEYED:
                yield self.finding(
                    ctx,
                    node,
                    f"unkeyed digest {name!r}; use a keyed MAC from repro.crypto.mac "
                    "(make_mac / Blake2Mac) instead",
                )
            elif name in self.BLAKE:
                kwargs = {kw.arg for kw in node.keywords}
                if not (kwargs & self.KEYING_KWARGS):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name!r} without key=/person=/salt= is an unkeyed hash; "
                        "bind it to an on-chip secret or domain-separate it",
                    )


# -- SEC003: counters move only through the monotonic APIs -------------------


@register
class CounterMutationRule(Rule):
    id = "SEC003"
    severity = "error"
    title = "counter fields mutate only via repro.core.counters APIs"
    rationale = (
        "A counter that can be rolled back or skipped is a reused pad "
        "(paper sections 4.1/4.3) and a replay hole (section 5.2); all "
        "mutation goes through the increment/overflow APIs so "
        "monotonicity is auditable in one file."
    )

    HOME = "core/counters.py"
    FIELDS = {"minors", "major", "lpid"}

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_file(self.HOME)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            for target in _assign_targets(node):
                field = None
                if isinstance(target, ast.Attribute) and target.attr in self.FIELDS:
                    field = target.attr
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr in self.FIELDS
                ):
                    field = target.value.attr
                if field is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"raw write to counter field {field!r}; use the monotonic "
                        "APIs in repro.core.counters (increment/fresh/from_bytes)",
                    )


# -- SEC004: no cross-module private state access ----------------------------


@register
class PrivateStateReachRule(Rule):
    id = "SEC004"
    severity = "warning"
    title = "no reaching into another object's private state"
    rationale = (
        "Security-relevant volatile state — the AISE counter cache, the "
        "Merkle tree's trusted node copies — must be cleared and queried "
        "through the owning class's public API (clear_volatile, "
        "has_cached_counters, ...) so its lifecycle is auditable in one "
        "place; a foreign `obj.engine._cache.clear()` silently bypasses "
        "that audit trail."
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            # `self._x` / `machine._x` (Name-rooted, depth 1) is the class
            # or a friend touching its own field; a chained `a.b._x` is one
            # object reaching through another into private state.
            if isinstance(node.value, ast.Attribute):
                dotted = _dotted(node) or attr
                yield self.finding(
                    ctx,
                    node,
                    f"access to private state {dotted!r} through another "
                    "object; add a public method on the owning class",
                )


# -- SCH001: scheme dispatch lives in repro.schemes, not if/elif chains -------


@register
class SchemeConstantDispatchRule(Rule):
    id = "SCH001"
    severity = "error"
    title = "no ENC_*/INT_* scheme dispatch outside repro.schemes"
    rationale = (
        "Scheme-specific behavior (counter geometry, engine choice, "
        "metadata traffic, swap policy) is owned by the descriptors in "
        "repro.schemes; an ENC_*/INT_* comparison in the machine, the "
        "timing simulator, or the kernel re-scatters that knowledge and "
        "breaks the one-file-per-scheme extension contract."
    )

    WATCHED_FILES = ("core/machine.py", "sim/simulator.py", "osmodel/kernel.py")
    CONSTANT_RE = re.compile(r"^(ENC|INT)_[A-Z0-9]+$")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_file(*self.WATCHED_FILES)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if self.CONSTANT_RE.match(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of scheme constant {alias.name!r}; consult "
                            "the scheme descriptor (repro.schemes) instead",
                        )
            elif isinstance(node, ast.Name) and self.CONSTANT_RE.match(node.id):
                yield self.finding(
                    ctx,
                    node,
                    f"reference to scheme constant {node.id!r}; scheme-"
                    "specific behavior belongs in a repro.schemes descriptor",
                )


# -- SCH002: tree node state mutates only through the tree's own API ---------


@register
class TreeNodeMutationRule(Rule):
    id = "SCH002"
    severity = "error"
    title = "no direct tree node-state mutation outside repro.integrity"
    rationale = (
        "The Merkle engines' soundness argument depends on every node "
        "mutation flowing through the tree's update/scheduler API "
        "(update, flush_pending, drain, build): the incremental engine "
        "treats its dirty write-back cache as authoritative and drains "
        "bottom-up, so a direct write to a node store or the root "
        "register from outside repro.integrity silently forks the "
        "tree's view of memory."
    )

    # The node-state containers of MerkleTree / IncrementalMerkleTree.
    NODE_STATE = frozenset({"_dirty", "_trusted", "_materialized", "nodes"})
    # Mutating container methods (set/dict/OrderedDict surface).
    MUTATORS = frozenset(
        {"add", "discard", "remove", "pop", "popitem", "clear",
         "update", "setdefault", "move_to_end"}
    )

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.under("integrity")

    @staticmethod
    def _via_tree(node: ast.AST) -> bool:
        """True if the attribute chain is rooted in something tree-ish
        (``tree``, ``self.tree``, ``machine.tree``, ``self._tree``...)."""
        while isinstance(node, ast.Attribute):
            if "tree" in node.attr.lower():
                return True
            node = node.value
        return isinstance(node, ast.Name) and "tree" in node.id.lower()

    def _is_node_state(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr in self.NODE_STATE
            and self._via_tree(expr.value)
        )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            for target in _assign_targets(node):
                if self._is_node_state(target):
                    dotted = _dotted(target) or _dotted(getattr(target, "value", target))
                    yield self.finding(
                        ctx,
                        node,
                        f"direct write to tree node state {dotted or '<expr>'!r}; "
                        "mutate through the tree's update/flush_pending/drain API",
                    )
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                # tree._dirty.pop(...), machine.tree._materialized.add(...)
                if func.attr in self.MUTATORS and self._is_node_state(func.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"mutating call {func.attr!r} on tree node state; "
                        "mutate through the tree's update/flush_pending/drain API",
                    )
                # tree.root.store(...): the root register is tree state too.
                elif (
                    func.attr == "store"
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "root"
                    and self._via_tree(func.value.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "direct root-register store through a tree; the root "
                        "refreshes only from the tree's own drain/build",
                    )


# -- DET001: determinism of trace-driven runs --------------------------------


@register
class DeterminismRule(Rule):
    id = "DET001"
    severity = "error"
    title = "no wall-clock time or unseeded randomness in the library"
    # Applies to tests/benchmarks too: a wall-clock read in a test makes
    # its failures irreproducible (benchmarks time themselves with the
    # allowed perf_counter).
    library_only = False
    rationale = (
        "Trace-driven evaluation must be bit-reproducible run to run; "
        "wall-clock reads and unseeded RNGs make results (and test "
        "failures) irreproducible. Reporting code in evalx/ is exempt "
        "(it may time itself with perf_counter)."
    )

    EXEMPT_DIRS = ("evalx",)
    WALL_CLOCK = {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
    RANDOM_FNS = {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "randbytes",
        "gauss",
    }
    NP_ALIASES = {"np", "numpy"}
    NP_SEEDED_FACTORIES = {"default_rng", "RandomState", "SeedSequence", "Generator"}

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.under(*self.EXEMPT_DIRS)

    def _banned_bare_names(self, tree: ast.Module) -> dict[str, str]:
        """Names imported from time/random that are banned when called bare."""
        banned: dict[str, str] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        banned[alias.asname or alias.name] = f"time.{alias.name}"
            elif node.module == "random":
                for alias in node.names:
                    if alias.name in self.RANDOM_FNS:
                        banned[alias.asname or alias.name] = f"random.{alias.name}"
        return banned

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        bare = self._banned_bare_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = _dotted(func)
            if dotted in self.WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {dotted}(); use time.perf_counter() for "
                    "intervals (evalx only) or pass timestamps in explicitly",
                )
                continue
            if isinstance(func, ast.Name) and func.id in bare:
                yield self.finding(
                    ctx,
                    node,
                    f"call to {bare[func.id]} via bare import; wall-clock and "
                    "module-level randomness are banned outside evalx",
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in self.RANDOM_FNS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"random.{func.attr}() uses the unseeded global RNG; create "
                    "a seeded generator instead",
                )
                continue
            # numpy: np.random.<fn>(...) — only seeded generator factories pass.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in self.NP_ALIASES
            ):
                fn = func.attr
                if fn in self.NP_SEEDED_FACTORIES:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            f"np.random.{fn}() without a seed is nondeterministic; "
                            "pass an explicit seed",
                        )
                else:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.random.{fn}() uses numpy's global RNG; use "
                        "np.random.default_rng(seed) instead",
                    )


# -- SIM001: timing parameters live in core/config.py ------------------------


@register
class LatencyLiteralRule(Rule):
    id = "SIM001"
    severity = "warning"
    title = "latency/cycle costs come from MachineConfig, not literals"
    rationale = (
        "The paper's timing parameters (section 6) are modelled in one "
        "place — repro.core.config.MachineConfig — so sweeps and ablations "
        "change them consistently; a literal latency in the simulator "
        "silently escapes every sweep."
    )

    WATCHED = ("sim", "mem")
    NAME_RE = re.compile(r"latency|cycle|_ready|stall", re.IGNORECASE)
    MINIMUM = 2  # 0/1 resets and rounding guards are fine

    def applies(self, ctx: FileContext) -> bool:
        return ctx.under(*self.WATCHED)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = getattr(node, "value", None)
                if value is None:
                    continue
                for target in _assign_targets(node):
                    name = _target_name(target)
                    if name is None or not self.NAME_RE.search(name):
                        continue
                    literal = _has_literal_at_least(value, self.MINIMUM)
                    if literal is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"literal {literal.value!r} assigned to timing field "
                            f"{name!r}; route it through MachineConfig",
                        )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                sides = (node.left, node.right)
                latencyish = any(
                    (n := _target_name(s)) is not None and self.NAME_RE.search(n)
                    for s in sides
                )
                if not latencyish:
                    continue
                for side in sides:
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, (int, float)
                    ) and not isinstance(side.value, bool) and side.value >= self.MINIMUM:
                        yield self.finding(
                            ctx,
                            node,
                            f"literal {side.value!r} added to a cycle count; "
                            "route timing costs through MachineConfig",
                        )
                        break


# -- OBS001: stats objects mutate only inside their owners -------------------


def _passes_through_stats(node: ast.AST) -> bool:
    """True if an assignment target is, or dereferences, a ``stats`` attr."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr == "stats":
            return True
        node = node.value
    return False


@register
class StatsMutationRule(Rule):
    id = "OBS001"
    severity = "warning"
    title = "stats objects mutate only inside their owning component"
    rationale = (
        "The observability registry (repro.obs) binds pull-model gauges "
        "over each component's stats object; a foreign write — replacing "
        "a cache's stats wholesale, or bumping another object's counters "
        "— bypasses the owner's accounting and can diverge from what the "
        "registry (and thus every figure and trace) reports. Owners "
        "expose reset_stats() for the one legitimate foreign operation."
    )

    # Modules that define and therefore own a *Stats object. The obs
    # package itself only ever reads stats through bound gauges.
    OWNERS = (
        "mem/bus.py",
        "mem/cache.py",
        "osmodel/kernel.py",
        "core/prediction.py",
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.under("obs") or ctx.is_file(*self.OWNERS))

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            for target in _assign_targets(node):
                if _passes_through_stats(target):
                    dotted = _dotted(target)
                    shown = dotted if dotted is not None else "a stats field"
                    yield self.finding(
                        ctx,
                        node,
                        f"direct mutation of {shown!r} outside the owning "
                        "component; call the owner's reset_stats() or read "
                        "values through repro.obs.adapters bindings",
                    )


# -- OBS002: fleet/engine metrics register through obs/adapters.py ------------


@register
class RegistryWriteRule(Rule):
    id = "OBS002"
    severity = "warning"
    title = "metrics register only through repro.obs.adapters"
    rationale = (
        "Every metric a registry exposes — including the engine-selection "
        "telemetry the fleet pipeline aggregates — is bound in "
        "repro.obs.adapters, so the full metric namespace (names, kinds, "
        "merge semantics, Prometheus exposition) is auditable in one "
        "module. An ad-hoc registry.counter()/bind() from engine code "
        "creates a metric the fleet merge rules and exporters never "
        "heard of; add a register_* adapter instead."
    )

    # The registration surface of MetricsRegistry/Scope. Reads
    # (get, snapshot) and scoping are fine anywhere; creating or binding
    # a metric is what must stay in the adapters module.
    REGISTER_METHODS = ("counter", "gauge", "bind", "histogram")

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.under("obs")

    @staticmethod
    def _is_registry_like(node: ast.expr) -> bool:
        dotted = _dotted(node)
        if dotted is None:
            return False
        return any(
            segment in ("registry", "scope")
            or segment.endswith(("_registry", "_scope"))
            for segment in dotted.split(".")
        )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in self.REGISTER_METHODS:
                continue
            if not self._is_registry_like(func.value):
                continue
            receiver = _dotted(func.value) or "a registry"
            yield self.finding(
                ctx,
                node,
                f"ad-hoc metric registration {receiver}.{func.attr}(...) "
                "outside repro.obs; route it through a register_* adapter "
                "in repro.obs.adapters so the fleet merge semantics and "
                "exporters cover it",
            )


# -- API001: examples import only the repro.api facade -----------------------


@register
class FacadeOnlyImportRule(Rule):
    id = "API001"
    severity = "error"
    title = "examples import only the repro.api facade"
    rationale = (
        "The examples are the tutorial: whatever they import is the "
        "supported surface. Holding them to repro.api (plus the package "
        "root, which re-exports it) keeps the facade honest — a workflow "
        "the facade cannot express fails the lint instead of quietly "
        "deep-importing — and leaves repro.* internals free to refactor "
        "without breaking documentation."
    )

    ALLOWED = ("repro", "repro.api")

    def applies(self, ctx: FileContext) -> bool:
        return "examples" in PurePath(ctx.path).parts

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                is_repro = module == "repro" or module.startswith("repro.")
                if node.level == 0 and not is_repro:
                    continue
                if node.level == 0 and module in self.ALLOWED:
                    continue
                shown = "." * node.level + module
                yield self.finding(
                    ctx,
                    node,
                    f"import from {shown!r}; examples must import from "
                    "'repro.api' (re-export the symbol there if it is "
                    "missing)",
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    is_repro = alias.name == "repro" or alias.name.startswith("repro.")
                    if is_repro and alias.name not in self.ALLOWED:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r}; examples must import "
                            "from 'repro.api' (re-export the symbol there "
                            "if it is missing)",
                        )


# -- API002: one knob grammar across facade, schema, and CLI -----------------


@register
class KnobGrammarRule(Rule):
    id = "API002"
    severity = "error"
    title = "simulation knobs spelled and defaulted identically everywhere"
    rationale = (
        "The facade (repro.api), the service request schema "
        "(repro.api.schema), and the CLI (repro.__main__) all expose the "
        "same simulation knobs. Holding every surface to one table — "
        "events=60000, workers=1, cache_dir=None, metrics=False — means a "
        "script, a service request, and a shell command that look "
        "equivalent are equivalent; a renamed or re-defaulted knob fails "
        "the lint instead of silently diverging between surfaces."
    )

    #: The canonical knob grammar — the single source of truth the
    #: facade functions, request dataclasses, and argparse flags are all
    #: checked against.
    KNOB_DEFAULTS = {
        "events": 60_000,
        "workers": 1,
        "cache_dir": None,
        "metrics": False,
    }
    #: Alternate spellings that must not appear as parameters/fields.
    #: ``collect_metrics`` is special-cased: it may exist as the
    #: deprecation shim, but only defaulting to None.
    BANNED_SPELLINGS = {
        "cache": "cache_dir",
        "cachedir": "cache_dir",
        "n_events": "events",
        "num_events": "events",
        "nevents": "events",
        "num_workers": "workers",
        "n_workers": "workers",
        "collect_metrics": "metrics",
    }
    FACADE_OPS = ("simulate", "sweep", "trace", "precompile")
    FLAG_KNOBS = {
        "--events": "events",
        "--workers": "workers",
        "--cache-dir": "cache_dir",
        "--cache": "cache_dir",
        "--metrics": "metrics",
    }

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_file("__main__.py", "api/__init__.py", "api/schema.py")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_file("__main__.py"):
            yield from self._check_cli(tree, ctx)
        else:
            yield from self._check_signatures(tree, ctx)

    # -- facade functions and request dataclasses ----------------------------

    def _check_signatures(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ctx.is_file("api/__init__.py") and node.name in self.FACADE_OPS:
                    yield from self._check_params(node, ctx)
            elif isinstance(node, ast.ClassDef) and ctx.is_file("api/schema.py"):
                yield from self._check_fields(node, ctx)

    def _check_params(self, fn, ctx: FileContext) -> Iterator[Finding]:
        args = fn.args
        params = list(args.posonlyargs) + list(args.args)
        defaults = [None] * (len(params) - len(args.defaults)) + list(args.defaults)
        pairs = list(zip(params, defaults))
        pairs += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)]
        for param, default in pairs:
            yield from self._check_one(
                param.arg, default, param, ctx, f"{fn.name}() parameter"
            )

    def _check_fields(self, cls: ast.ClassDef, ctx: FileContext) -> Iterator[Finding]:
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                yield from self._check_one(
                    stmt.target.id, stmt.value, stmt, ctx, f"{cls.name} field"
                )

    def _check_one(self, name, default, node, ctx, where) -> Iterator[Finding]:
        if name == "collect_metrics":
            if not (isinstance(default, ast.Constant) and default.value is None):
                yield self.finding(
                    ctx, node,
                    f"{where} 'collect_metrics' is the deprecated spelling "
                    "of 'metrics' and may only default to None (the "
                    "not-passed sentinel of the deprecation shim)",
                )
            return
        if name in self.BANNED_SPELLINGS:
            yield self.finding(
                ctx, node,
                f"{where} {name!r} is a non-canonical knob spelling; "
                f"spell it {self.BANNED_SPELLINGS[name]!r}",
            )
            return
        if name not in self.KNOB_DEFAULTS or default is None:
            return
        want = self.KNOB_DEFAULTS[name]
        try:
            got = ast.literal_eval(default)
        except ValueError:
            return  # computed default: not this rule's business
        if got != want:
            yield self.finding(
                ctx, node,
                f"{where} {name!r} defaults to {got!r}; the knob grammar "
                f"says {want!r} everywhere",
            )

    # -- argparse flags ------------------------------------------------------

    def _check_cli(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in node.body:
                call = self._add_argument_call(stmt)
                if call is not None:
                    yield from self._check_flag(call, ctx)

    @staticmethod
    def _add_argument_call(stmt: ast.stmt) -> ast.Call | None:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "add_argument"
        ):
            return stmt.value
        return None

    def _check_flag(self, call: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        flags = [
            a.value for a in call.args
            if isinstance(a, ast.Constant) and isinstance(a.value, str)
            and a.value.startswith("--")
        ]
        knobs = {self.FLAG_KNOBS[f] for f in flags if f in self.FLAG_KNOBS}
        if not knobs:
            return
        kw = {k.arg: k.value for k in call.keywords if k.arg is not None}
        knob = knobs.pop()
        if knob == "cache_dir":
            if "--cache-dir" not in flags:
                yield self.finding(
                    ctx, call,
                    "flag '--cache' is the deprecated spelling; declare "
                    "'--cache-dir' first and keep '--cache' as its alias "
                    "(dest='cache_dir')",
                )
                return
            dest = kw.get("dest")
            if "--cache" in flags and not (
                isinstance(dest, ast.Constant) and dest.value == "cache_dir"
            ):
                yield self.finding(
                    ctx, call,
                    "'--cache-dir'/'--cache' aliases need an explicit "
                    "dest='cache_dir'",
                )
        if knob == "metrics":
            action = kw.get("action")
            if not (isinstance(action, ast.Constant) and action.value == "store_true"):
                yield self.finding(
                    ctx, call,
                    "'--metrics' must be a store_true flag (knob grammar: "
                    "metrics defaults to False)",
                )
            return
        default = kw.get("default")
        want = self.KNOB_DEFAULTS[knob]
        if default is None:
            if want is not None:
                yield self.finding(
                    ctx, call,
                    f"flag for knob {knob!r} needs an explicit "
                    f"default={want!r} (argparse would default to None)",
                )
            return
        try:
            got = ast.literal_eval(default)
        except ValueError:
            return
        if got != want:
            yield self.finding(
                ctx, call,
                f"flag for knob {knob!r} defaults to {got!r}; the knob "
                f"grammar says {want!r} everywhere",
            )


# -- GEN001/GEN002: general hygiene ------------------------------------------


@register
class BareExceptRule(Rule):
    id = "GEN001"
    severity = "warning"
    title = "no bare except clauses"
    library_only = False  # hygiene holds in tests and benchmarks too
    rationale = (
        "A bare except swallows IntegrityError and SanitizerError alike, "
        "turning a detected attack into silence; catch specific exceptions."
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:'; name the exception types to catch"
                )


@register
class MutableDefaultRule(Rule):
    id = "GEN002"
    severity = "warning"
    title = "no mutable default arguments"
    library_only = False  # hygiene holds in tests and benchmarks too
    rationale = (
        "A mutable default is shared across calls — for stateful machine "
        "models that means state leaking between supposedly independent "
        "simulations."
    )

    MUTABLE_CALLS = {"list", "dict", "set", "OrderedDict", "defaultdict", "deque"}

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self.MUTABLE_CALLS
                )
                if bad:
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name!r}; default to "
                        "None and create the object inside the function",
                    )
