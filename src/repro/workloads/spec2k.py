"""SPEC CPU2000-like workload profiles (the paper's 21 C/C++ benchmarks).

We cannot run SPEC binaries, so each benchmark is replaced by a synthetic
profile whose knobs are set from its well-known memory behaviour (working
set, locality, write ratio, memory intensity). The figures of the paper
single out the benchmarks with L2 miss rates above 20% — art, mcf, swim,
applu, mgrid, equake, wupwise — and report averages across all 21; the
profiles below are calibrated so that

* the memory-bound subset lands in the paper's miss-rate regime (average
  local L2 miss rate near 38% on a 1MB L2),
* art and mcf are the pathological cases (large footprints, poor
  locality), and
* the remaining benchmarks are largely L2-resident, diluting averages
  exactly as in the paper.

Absolute numbers are not expected to match a cycle-accurate SESC run;
the *ordering and rough magnitudes* of the per-scheme overheads are the
reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..sim.trace import Trace
from .synthetic import WorkloadProfile, generate_trace

KB = 1024
MB = 1024 * 1024

# name: (hot_bytes, cold_bytes, hot_fraction, chunk_blocks, write_fraction, mean_gap)
_PROFILES = {
    # --- memory-bound benchmarks the paper plots individually ---
    "art": WorkloadProfile("art", hot_bytes=960 * KB, cold_bytes=2560 * KB, hot_fraction=0.72,
                           chunk_blocks=16, write_fraction=0.30, mean_gap=6),
    "mcf": WorkloadProfile("mcf", hot_bytes=896 * KB, cold_bytes=20 * MB, hot_fraction=0.58,
                           chunk_blocks=4, write_fraction=0.28, mean_gap=8),
    "swim": WorkloadProfile("swim", hot_bytes=896 * KB, cold_bytes=12 * MB, hot_fraction=0.55,
                            chunk_blocks=48, write_fraction=0.45, mean_gap=9),
    "applu": WorkloadProfile("applu", hot_bytes=832 * KB, cold_bytes=10 * MB, hot_fraction=0.72,
                             chunk_blocks=32, write_fraction=0.35, mean_gap=12),
    "mgrid": WorkloadProfile("mgrid", hot_bytes=768 * KB, cold_bytes=7 * MB, hot_fraction=0.76,
                             chunk_blocks=40, write_fraction=0.30, mean_gap=13),
    "equake": WorkloadProfile("equake", hot_bytes=832 * KB, cold_bytes=4 * MB, hot_fraction=0.80,
                              chunk_blocks=8, write_fraction=0.25, mean_gap=12),
    "wupwise": WorkloadProfile("wupwise", hot_bytes=768 * KB, cold_bytes=6 * MB, hot_fraction=0.82,
                               chunk_blocks=24, write_fraction=0.28, mean_gap=15),
    # --- moderately memory-sensitive ---
    "ammp": WorkloadProfile("ammp", hot_bytes=640 * KB, cold_bytes=2 * MB, hot_fraction=0.90,
                            chunk_blocks=6, write_fraction=0.24, mean_gap=18),
    "gap": WorkloadProfile("gap", hot_bytes=576 * KB, cold_bytes=1536 * KB, hot_fraction=0.92,
                           chunk_blocks=8, write_fraction=0.26, mean_gap=20),
    "vpr": WorkloadProfile("vpr", hot_bytes=512 * KB, cold_bytes=1024 * KB, hot_fraction=0.93,
                           chunk_blocks=4, write_fraction=0.28, mean_gap=22),
    "parser": WorkloadProfile("parser", hot_bytes=512 * KB, cold_bytes=1536 * KB, hot_fraction=0.94,
                              chunk_blocks=3, write_fraction=0.30, mean_gap=24),
    "bzip2": WorkloadProfile("bzip2", hot_bytes=640 * KB, cold_bytes=2 * MB, hot_fraction=0.93,
                             chunk_blocks=32, write_fraction=0.32, mean_gap=22),
    "gcc": WorkloadProfile("gcc", hot_bytes=704 * KB, cold_bytes=2 * MB, hot_fraction=0.94,
                           chunk_blocks=12, write_fraction=0.30, mean_gap=24),
    "twolf": WorkloadProfile("twolf", hot_bytes=448 * KB, cold_bytes=768 * KB, hot_fraction=0.94,
                             chunk_blocks=3, write_fraction=0.27, mean_gap=25),
    # --- largely L2-resident ---
    "gzip": WorkloadProfile("gzip", hot_bytes=512 * KB, cold_bytes=448 * KB, hot_fraction=0.97,
                            chunk_blocks=24, write_fraction=0.30, mean_gap=28),
    "vortex": WorkloadProfile("vortex", hot_bytes=576 * KB, cold_bytes=448 * KB, hot_fraction=0.97,
                              chunk_blocks=8, write_fraction=0.33, mean_gap=30),
    "perlbmk": WorkloadProfile("perlbmk", hot_bytes=512 * KB, cold_bytes=384 * KB, hot_fraction=0.975,
                               chunk_blocks=6, write_fraction=0.31, mean_gap=32),
    "crafty": WorkloadProfile("crafty", hot_bytes=384 * KB, cold_bytes=320 * KB, hot_fraction=0.98,
                              chunk_blocks=4, write_fraction=0.25, mean_gap=34),
    "eon": WorkloadProfile("eon", hot_bytes=256 * KB, cold_bytes=256 * KB, hot_fraction=0.985,
                           chunk_blocks=4, write_fraction=0.28, mean_gap=36),
    "mesa": WorkloadProfile("mesa", hot_bytes=448 * KB, cold_bytes=448 * KB, hot_fraction=0.975,
                            chunk_blocks=16, write_fraction=0.29, mean_gap=30),
    "sixtrack": WorkloadProfile("sixtrack", hot_bytes=320 * KB, cold_bytes=320 * KB, hot_fraction=0.98,
                                chunk_blocks=24, write_fraction=0.26, mean_gap=34),
}

SPEC2K_BENCHMARKS = tuple(_PROFILES)

# The subset the paper plots individually (L2 miss rate > 20%).
MEMORY_BOUND = ("applu", "art", "equake", "mcf", "mgrid", "swim", "wupwise")


def profile(name: str) -> WorkloadProfile:
    """Look up the calibrated profile for a named benchmark."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown SPEC2K profile {name!r}; known: {sorted(_PROFILES)}") from None


def spec_trace(name: str, events: int = 200_000, seed: int | None = None) -> Trace:
    """Generate the trace for one named benchmark.

    The seed defaults to a stable hash of the name so every figure sees
    the same 'run' of each benchmark.
    """
    prof = profile(name)
    if seed is None:
        seed = sum(ord(c) * 131 ** i for i, c in enumerate(name)) % (2**31)
    return generate_trace(prof, events, seed)


def all_spec_traces(events: int = 200_000) -> dict[str, Trace]:
    """Generate traces for all 21 benchmarks (name -> Trace)."""
    return {name: spec_trace(name, events) for name in SPEC2K_BENCHMARKS}
