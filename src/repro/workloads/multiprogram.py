"""Multiprogrammed workloads: context-switched trace interleaving.

The paper motivates AISE partly by the multiprogramming era ("especially
in the age of CMPs"). This module builds multiprogrammed traces by
time-slicing several benchmarks' L2-access streams onto one core: each
process occupies its own region of physical memory, and every context
switch lands the next process's working set on whatever survived in the
shared L2 and counter cache.

What this stresses, scheme-wise: context switches wreck counter-cache
residency, so schemes with small counter reach (the global-counter
baselines) pay the exposed-AES penalty again after every switch, while
AISE's page-granular counter blocks re-warm 64x faster.
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import Trace

# Spacing between processes' physical footprints. Big enough that no
# realistic profile overlaps its neighbour.
DEFAULT_STRIDE = 256 << 20  # 256MB


def interleave(
    traces: list[Trace],
    quantum: int = 2000,
    address_stride: int = DEFAULT_STRIDE,
    name: str | None = None,
) -> Trace:
    """Round-robin ``traces`` in slices of ``quantum`` events.

    Each input trace is relocated to its own ``address_stride``-sized
    region (disjoint physical footprints, like separate processes).
    Interleaving continues until every trace is exhausted; shorter traces
    simply drop out of the rotation.
    """
    if not traces:
        raise ValueError("need at least one trace to interleave")
    if quantum < 1:
        raise ValueError("quantum must be positive")
    for index, trace in enumerate(traces):
        if len(trace) and int(trace.addresses.max()) + 64 > address_stride:
            raise ValueError(
                f"trace {index} extends past the address stride {address_stride}"
            )

    gaps_parts = []
    ops_parts = []
    addr_parts = []
    cursors = [0] * len(traces)
    remaining = sum(len(t) for t in traces)
    while remaining:
        for index, trace in enumerate(traces):
            start = cursors[index]
            if start >= len(trace):
                continue
            stop = min(start + quantum, len(trace))
            gaps_parts.append(trace.gaps[start:stop])
            ops_parts.append(trace.ops[start:stop])
            addr_parts.append(trace.addresses[start:stop] + np.uint64(index * address_stride))
            remaining -= stop - start
            cursors[index] = stop

    return Trace(
        gaps=np.concatenate(gaps_parts),
        ops=np.concatenate(ops_parts),
        addresses=np.concatenate(addr_parts),
        name=name or ("+".join(t.name for t in traces) + f"@q{quantum}"),
    )


def multiprogrammed_spec(
    benchmarks: tuple = ("art", "gcc"),
    events_each: int = 30_000,
    quantum: int = 2000,
) -> Trace:
    """Convenience: interleave named SPEC2K-like benchmarks."""
    from .spec2k import spec_trace

    traces = [spec_trace(bench, events_each) for bench in benchmarks]
    return interleave(traces, quantum=quantum)
