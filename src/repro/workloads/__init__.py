"""Workload generation: synthetic kernels and SPEC2K-like profiles."""

from .multiprogram import interleave, multiprogrammed_spec
from .spec2k import MEMORY_BOUND, SPEC2K_BENCHMARKS, all_spec_traces, profile, spec_trace
from .synthetic import (
    WorkloadProfile,
    generate_trace,
    pointer_chase_trace,
    resident_trace,
    streaming_trace,
)

__all__ = [
    "WorkloadProfile",
    "generate_trace",
    "streaming_trace",
    "pointer_chase_trace",
    "resident_trace",
    "SPEC2K_BENCHMARKS",
    "MEMORY_BOUND",
    "profile",
    "spec_trace",
    "all_spec_traces",
    "interleave",
    "multiprogrammed_spec",
]
