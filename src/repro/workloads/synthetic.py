"""Synthetic trace generators.

The paper drives its evaluation with SPEC CPU2000 reference traces; we
have no access to those (and no SESC), so workloads are generated
synthetically from a small set of knobs that control exactly the
quantities the paper's figures depend on:

* ``hot_bytes`` / ``hot_fraction`` — a reuse region that should live in
  the L2; accesses to it hit unless *metadata pollution* evicts it (the
  mechanism behind Figures 9/10);
* ``cold_bytes`` — a larger region whose accesses mostly miss, streamed
  sequentially in runs of ``chunk_blocks`` (spatial locality controls
  how well counter blocks and leaf Merkle nodes amortize) or fully at
  random for pointer-chasing workloads;
* ``write_fraction`` — writeback (and hence counter/MAC update) traffic;
* ``mean_gap`` — instructions between L2 accesses (memory intensity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem.layout import BLOCK_SIZE, PAGE_SIZE
from ..sim.trace import Trace


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs for one synthetic benchmark."""

    name: str
    hot_bytes: int = 512 * 1024
    cold_bytes: int = 4 * 1024 * 1024
    hot_fraction: float = 0.6
    chunk_blocks: int = 16  # sequential run length in the cold region (1 = random)
    write_fraction: float = 0.3
    mean_gap: int = 20

    def __post_init__(self):
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.chunk_blocks < 1:
            raise ValueError("chunk_blocks must be >= 1")

    @property
    def footprint_bytes(self) -> int:
        return self.hot_bytes + self.cold_bytes


def _page_round(size: int) -> int:
    return (size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def generate_trace(profile: WorkloadProfile, events: int, seed: int = 1) -> Trace:
    """Generate an L2-access trace for a profile (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    hot_blocks = max(1, profile.hot_bytes // BLOCK_SIZE)
    cold_blocks = max(1, profile.cold_bytes // BLOCK_SIZE)
    cold_base = _page_round(profile.hot_bytes)

    pick_hot = rng.random(events) < profile.hot_fraction
    n_cold = int(events - pick_hot.sum())

    addresses = np.empty(events, dtype=np.uint64)
    hot_addresses = rng.integers(0, hot_blocks, int(pick_hot.sum()), dtype=np.uint64) * BLOCK_SIZE
    addresses[pick_hot] = hot_addresses

    if n_cold:
        chunk = profile.chunk_blocks
        runs = (n_cold + chunk - 1) // chunk
        starts = rng.integers(0, cold_blocks, runs, dtype=np.uint64)
        offsets = np.arange(chunk, dtype=np.uint64)
        cold_stream = ((starts[:, None] + offsets[None, :]) % cold_blocks).ravel()[:n_cold]
        addresses[~pick_hot] = cold_base + cold_stream * BLOCK_SIZE

    ops = (rng.random(events) < profile.write_fraction).astype(np.uint8)
    gaps = rng.geometric(1.0 / max(1, profile.mean_gap), events).astype(np.uint32)
    return Trace(gaps=gaps, ops=ops, addresses=addresses, name=profile.name)


def streaming_trace(events: int, footprint_bytes: int, write_fraction: float = 0.25,
                    mean_gap: int = 15, seed: int = 1, name: str = "stream") -> Trace:
    """Pure sequential sweep — the worst case for capacity, best for spatial
    locality of counters and leaf MACs."""
    profile = WorkloadProfile(
        name=name,
        hot_bytes=BLOCK_SIZE,
        cold_bytes=footprint_bytes,
        hot_fraction=0.0,
        chunk_blocks=256,
        write_fraction=write_fraction,
        mean_gap=mean_gap,
    )
    return generate_trace(profile, events, seed)


def pointer_chase_trace(events: int, footprint_bytes: int, write_fraction: float = 0.1,
                        mean_gap: int = 12, seed: int = 1, name: str = "chase") -> Trace:
    """Uniformly random block accesses — no spatial locality at all."""
    profile = WorkloadProfile(
        name=name,
        hot_bytes=BLOCK_SIZE,
        cold_bytes=footprint_bytes,
        hot_fraction=0.0,
        chunk_blocks=1,
        write_fraction=write_fraction,
        mean_gap=mean_gap,
    )
    return generate_trace(profile, events, seed)


def resident_trace(events: int, footprint_bytes: int = 256 * 1024, write_fraction: float = 0.3,
                   mean_gap: int = 40, seed: int = 1, name: str = "resident") -> Trace:
    """A working set that fits comfortably in the L2 — cache-friendly code."""
    profile = WorkloadProfile(
        name=name,
        hot_bytes=footprint_bytes,
        cold_bytes=BLOCK_SIZE,
        hot_fraction=1.0,
        write_fraction=write_fraction,
        mean_gap=mean_gap,
    )
    return generate_trace(profile, events, seed)
