"""repro.api: the blessed library entry points.

One small facade over the whole reproduction, so scripts, examples, and
the ``python -m repro`` CLI all drive the library through the same four
calls (the CLI subcommands are thin wrappers over this module — the two
paths cannot drift):

* :func:`build_machine` — a booted functional
  :class:`~repro.core.machine.SecureMemorySystem` from a preset label.
* :func:`simulate` — one workload through the timing model; returns a
  :class:`~repro.sim.results.SimResult`.
* :func:`sweep` — the (benchmark x configuration) grid, optionally
  parallel and disk-cached; returns a :class:`SweepRun`.
* :func:`trace` — one workload under full observability; returns a
  :class:`TraceRun` with the Chrome trace document, event stream,
  interval snapshots, and result.

Configurations are named by *preset labels* — ``encryption[+integrity]``
over the scheme-registry keys, e.g. ``base``, ``aise+bmt``,
``global64+mt`` (see :meth:`MachineConfig.preset`); every function also
accepts a ready :class:`~repro.core.config.MachineConfig`. Workloads are
named by SPEC benchmark (``art`` ... ``sixtrack``) or synthetic
generator (``stream``/``chase``/``resident``); every function also
accepts a ready :class:`~repro.sim.trace.Trace`.

The facade also re-exports the public types and helpers a script built
on it needs (``MachineConfig``, ``SecureMemorySystem``, ``Kernel``,
``IntegrityError``, the storage model, the attack suite, ...), so
examples and downstream code import from ``repro.api`` alone — the
linter's API001 rule holds ``examples/`` to exactly that.

``docs/api.md`` documents the facade, the preset grammar, and the
deprecation policy for the pre-facade constructors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import run_all as run_attacks
from ..core import CounterPredictor, IntegrityError
from ..core.config import ConfigurationError, MachineConfig
from ..core.machine import SecureMemorySystem
from ..core.storage import StorageBreakdown, breakdown_for_config, storage_breakdown
from ..osmodel import Kernel
from ..sim import AccessRecorder
from ..sim.results import SimResult
from ..sim.simulator import TimingSimulator
from ..sim.trace import Trace

__all__ = [
    "build_machine",
    "simulate",
    "sweep",
    "trace",
    "load_trace",
    "precompile",
    "preset_names",
    "SweepRun",
    "TraceRun",
    # re-exported public surface (examples/docs import only repro.api)
    "AccessRecorder",
    "ConfigurationError",
    "CounterPredictor",
    "IntegrityError",
    "Kernel",
    "MachineConfig",
    "SecureMemorySystem",
    "SimResult",
    "StorageBreakdown",
    "TimingSimulator",
    "Trace",
    "breakdown_for_config",
    "run_attacks",
    "storage_breakdown",
]


def preset_names(*, full: bool = False) -> tuple[str, ...]:
    """The configuration labels a client may pass as ``config``.

    By default this is the canonical set (Figure 6's labels, in
    presentation order) — the grid ``sweep`` runs when no configs are
    named, and the labels the committed golden pins. ``full=True``
    additionally surfaces every *registry-valid* ``encryption[+integrity]``
    combination (e.g. ``aise+bmt_lazy``) the way :meth:`MachineConfig.preset`
    already resolves them, so service clients can discover every legal
    preset: canonical labels first, then the extras in registry order,
    spelled with the canonical shorthands (``base``, ``mt``, ``bmt``).
    """
    canonical = MachineConfig.preset_names()
    if not full:
        return canonical
    from ..schemes import encryption_keys, integrity_keys

    # Prefer the canonical shorthand spellings for the label text; the
    # resolved (encryption, integrity) pair is the dedup key, so a pair a
    # canonical label already covers never reappears under a raw key.
    enc_alias = {"none": "base"}
    int_alias = {"merkle": "mt", "bonsai": "bmt"}
    labels = list(canonical)
    seen = set()
    for label in canonical:
        config = MachineConfig.preset(label)
        seen.add((config.encryption, config.integrity))
    for enc in encryption_keys():
        for integ in integrity_keys():
            enc_label = enc_alias.get(enc, enc)
            label = enc_label if integ == "none" else f"{enc_label}+{int_alias.get(integ, integ)}"
            try:
                config = MachineConfig.preset(label)
            except ConfigurationError:
                continue
            pair = (config.encryption, config.integrity)
            if pair in seen:
                continue
            seen.add(pair)
            labels.append(label)
    return tuple(labels)


def _resolve_config(config) -> tuple[MachineConfig, str | None]:
    """Accept a MachineConfig or a preset label; returns (config, label)."""
    if isinstance(config, MachineConfig):
        return config, None
    return MachineConfig.preset(config), config


def load_trace(workload, events: int = 60_000) -> Trace:
    """Resolve a workload name to a :class:`Trace` (passthrough for one).

    Accepts a SPEC2000 benchmark name or a synthetic generator:
    ``stream`` (sequential sweep), ``chase`` (pointer chase), or
    ``resident`` (cache-resident working set).
    """
    if isinstance(workload, Trace):
        return workload
    from ..workloads import synthetic
    from ..workloads.spec2k import SPEC2K_BENCHMARKS, spec_trace

    if workload in SPEC2K_BENCHMARKS:
        return spec_trace(workload, events)
    if workload == "stream":
        return synthetic.streaming_trace(events, footprint_bytes=8 << 20)
    if workload == "chase":
        return synthetic.pointer_chase_trace(events, footprint_bytes=8 << 20)
    if workload == "resident":
        return synthetic.resident_trace(events)
    raise ValueError(
        f"unknown workload {workload!r}; pass a Trace, a SPEC benchmark "
        f"({', '.join(SPEC2K_BENCHMARKS)}), or stream/chase/resident"
    )


def build_machine(preset="aise+bmt", *, boot: bool = True, **overrides) -> SecureMemorySystem:
    """A functional secure-memory system from a preset label.

    ``preset`` is an ``encryption[+integrity]`` label or a ready
    :class:`MachineConfig`; ``**overrides`` are MachineConfig fields
    (``physical_bytes=16 * 4096`` is the usual one for examples). The
    machine is booted unless ``boot=False`` (boot initializes the
    counter region and integrity tree; an unbooted machine is only
    useful for layout inspection).
    """
    if isinstance(preset, MachineConfig):
        if overrides:
            raise TypeError("pass overrides with a preset label, or a complete MachineConfig")
        config = preset
    else:
        config = MachineConfig.preset(preset, **overrides)
    machine = SecureMemorySystem(config)
    if boot:
        machine.boot()
    return machine


def simulate(
    workload,
    config="aise+bmt",
    *,
    events: int = 60_000,
    overlap: float = 0.7,
    warmup: float = 0.25,
    label: str | None = None,
    metrics: bool = False,
    collect_metrics: bool | None = None,
) -> SimResult:
    """Run one workload through the timing model.

    ``workload`` and ``config`` resolve via :func:`load_trace` and the
    preset grammar; ``events`` only applies when the workload is named
    (a ready Trace is simulated as-is). ``metrics=True`` attaches the
    end-of-run registry snapshot to ``SimResult.metrics`` (the same
    knob, same spelling, as :func:`sweep`). Equivalent to building the
    :class:`TimingSimulator` by hand — same defaults, same result.

    ``collect_metrics`` is the deprecated pre-service spelling of
    ``metrics``; it is honored for one release and will be removed.
    """
    if collect_metrics is not None:
        import warnings

        warnings.warn(
            "simulate(collect_metrics=...) is deprecated; use metrics=...",
            DeprecationWarning,
            stacklevel=2,
        )
        metrics = collect_metrics
    resolved, preset = _resolve_config(config)
    trace_ = load_trace(workload, events)
    return TimingSimulator(resolved, overlap=overlap).run(
        trace_, label=label or preset, warmup=warmup, collect_metrics=metrics
    )


def precompile(workload, config="aise+bmt", *, events: int = 60_000) -> dict:
    """Lower a workload's trace for a configuration ahead of time.

    The timing model's compiled engine (:mod:`repro.fastpath.compiled`)
    lowers a trace once per traffic-shaping geometry and memoizes the
    artifact on the :class:`Trace`; :func:`simulate` does this lazily on
    the first cold run. Calling ``precompile`` moves that one-time cost
    off the measured path explicitly — useful before timing loops, or to
    warm a trace that will be swept across many timing parameters (all
    of which replay the same lowering). Returns a small summary::

        {"trace": Trace, "events": ..., "misses": ..., "patterns": ...,
         "cached": bool}

    where ``cached`` reports whether the lowering already existed. The
    memo lives on the :class:`Trace` instance, so hand ``trace`` from
    the summary (or the Trace you passed in) to the later
    :func:`simulate` calls — a workload *name* resolves to a fresh,
    identical Trace each time and would re-lower.
    """
    from ..fastpath.compiled import classification_key, compiled_for
    from ..sim.simulator import _OCCUPANCY_SAMPLE_PERIOD

    resolved, _ = _resolve_config(config)
    trace_ = load_trace(workload, events)
    sim = TimingSimulator(resolved)
    key = classification_key(sim, _OCCUPANCY_SAMPLE_PERIOD)
    cached = key in trace_.__dict__.get("_compiled", {})
    artifact = compiled_for(sim, trace_, _OCCUPANCY_SAMPLE_PERIOD)
    return {
        "trace": trace_,
        "events": artifact.n,
        "misses": artifact.misses,
        "patterns": len(artifact.pattern_list),
        "cached": cached,
    }


@dataclass
class SweepRun:
    """A completed configuration sweep: the grid plus its provenance."""

    grid: dict  # {(bench, label, mac_bits): SimResult}
    runner: object  # the Runner, for cache statistics and follow-up queries
    labels: tuple
    benchmarks: tuple
    events: int
    # Fleet observability (repro.obs.fleet.FleetReport) when the sweep ran
    # with fleet=True; deliberately NOT part of to_payload() — the result
    # payload stays byte-identical with capture on or off.
    fleet: object | None = None

    def to_payload(self) -> dict:
        """The deterministic JSON payload of ``python -m repro sweep``.

        Sorted-key serialization of this payload is the byte-identity
        surface of the parallel-equivalence and golden CI jobs; the CLI
        writes exactly this.
        """
        return {
            "events": self.events,
            "benchmarks": list(self.benchmarks),
            "configs": list(self.labels),
            "cells": {
                f"{bench}/{label}/{bits if bits is not None else 'default'}": result.to_dict()
                for (bench, label, bits), result in self.grid.items()
            },
        }


def sweep(
    configs=None,
    benchmarks=None,
    *,
    events: int = 60_000,
    mac_bits=(None,),
    workers: int = 1,
    cache_dir: str | None = None,
    metrics: bool = False,
    overlap: float = 0.7,
    warmup: float = 0.25,
    fleet: bool = False,
    live_sinks=None,
) -> SweepRun:
    """Simulate a (benchmark x configuration) grid.

    Defaults to every canonical preset over all 21 SPEC2000 benchmarks.
    ``workers > 1`` fans out over a process pool (0 = one per core);
    ``cache_dir`` shares a persistent on-disk result cache. Unknown
    labels or benchmarks raise ValueError before any simulation runs.

    ``fleet=True`` captures per-cell observability (registry snapshots,
    engine attribution, worker timings) and attaches the aggregated
    :class:`~repro.obs.fleet.FleetReport` as ``SweepRun.fleet``;
    ``live_sinks`` is an iterable of progress sinks (objects with
    ``emit(record)``/``close()``, e.g.
    :class:`~repro.obs.fleet.JsonlProgressSink` or
    :class:`~repro.obs.fleet.TtyProgressSink`) that receive the typed
    progress stream while the sweep runs. Both are observers only: the
    grid, its payload, and every cache record are byte-identical with
    them on or off.
    """
    from ..evalx.runner import CONFIGS, Runner
    from ..obs.fleet import FleetCollector, ProgressStream
    from ..workloads.spec2k import SPEC2K_BENCHMARKS

    labels = tuple(configs) if configs else tuple(CONFIGS)
    # Canonical labels pass as-is; anything else must be a registry-valid
    # ``encryption[+integrity]`` preset (e.g. aise+bmt_lazy, or a
    # registered third-party scheme pair).
    unknown = []
    for label in labels:
        if label in CONFIGS:
            continue
        try:
            MachineConfig.preset(label)
        except ConfigurationError:
            unknown.append(label)
    if unknown:
        raise ValueError(
            f"unknown configs {unknown}; choose a canonical label "
            f"({', '.join(CONFIGS)}) or any registered "
            "'<encryption>[+<integrity>]' pair"
        )
    benches = tuple(benchmarks) if benchmarks else SPEC2K_BENCHMARKS
    unknown = [b for b in benches if b not in SPEC2K_BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmarks {unknown}; choose from {', '.join(SPEC2K_BENCHMARKS)}"
        )
    runner = Runner(
        events=events,
        benchmarks=benches,
        overlap=overlap,
        warmup=warmup,
        workers=workers,
        cache_dir=cache_dir,
        metrics=metrics,
    )
    collector = FleetCollector() if fleet else None
    stream = ProgressStream(live_sinks) if live_sinks else None
    try:
        grid = runner.run_grid(labels=labels, mac_bits=tuple(mac_bits),
                               fleet=collector, live=stream)
    finally:
        if stream is not None:
            stream.close()
    return SweepRun(grid=grid, runner=runner, labels=labels,
                    benchmarks=benches, events=events,
                    fleet=collector.report if collector is not None else None)


@dataclass
class TraceRun:
    """A workload run under full observability."""

    workload: str
    config_label: str
    result: SimResult
    chrome: dict  # Chrome trace-event document (Perfetto-loadable)
    events: list  # raw event stream
    samples: list  # interval metric snapshots
    phases: dict  # phase-profiler cycle attribution

    def to_payload(self) -> dict:
        """The deterministic JSON payload of a traced run.

        The service ``trace`` op and the CLI ``--json`` envelope carry
        exactly this body (events serialized through their typed
        ``to_dict``, same bytes as the JSONL sink writes them).
        """
        return {
            "workload": self.workload,
            "config": self.config_label,
            "result": self.result.to_dict(),
            "chrome": self.chrome,
            "events": [event.to_dict() for event in self.events],
            "samples": self.samples,
            "phases": self.phases,
        }


def trace(
    workload,
    config="aise+bmt",
    *,
    events: int = 60_000,
    interval: int = 1024,
    warmup: float = 0.25,
    jsonl=None,
) -> TraceRun:
    """Run one workload with live event tracing and interval sampling.

    The simulation runs under an ambient :mod:`repro.obs` session (which
    selects the instrumented reference loop — observability and the
    fastpath batched loop are mutually exclusive by design). ``jsonl``
    is an optional writable text file that additionally receives each
    raw event as a JSON line while the run progresses.
    """
    from .. import obs
    from ..obs import chrome as chrome_mod
    from ..obs.tracer import EventTracer, JsonlSink, ListSink, TeeSink

    resolved, preset = _resolve_config(config)
    trace_ = load_trace(workload, events)
    label = preset or f"{resolved.encryption}+{resolved.integrity}"

    list_sink = ListSink()
    sink = list_sink if jsonl is None else TeeSink([list_sink, JsonlSink(jsonl)])
    with obs.observed(tracer=EventTracer(sink), interval=interval) as session:
        sim = TimingSimulator(resolved)
        result = sim.run(trace_, label=label, warmup=warmup, collect_metrics=True)

    phases = session.profiler.snapshot()
    doc = chrome_mod.chrome_trace(
        list_sink.events, session.samples, phases, label=f"{trace_.name}/{label}"
    )
    return TraceRun(
        workload=trace_.name,
        config_label=label,
        result=result,
        chrome=doc,
        events=list_sink.events,
        samples=session.samples,
        phases=phases,
    )
