"""repro.api.schema: the versioned request/response envelope.

Every payload the reproduction emits across a process boundary — the
service wire protocol (:mod:`repro.service`), the CLI ``--json``
outputs, fleet reports shipped to dashboards — travels inside one
envelope shape::

    {"payload_version": 1, "kind": "<kind>", "body": {...}}

``payload_version`` is the schema generation (bumped only for an
incompatible body change), ``kind`` names the body's type, and ``body``
is the *unchanged* legacy payload for the established kinds — an
enveloped sweep body is byte-for-byte ``SweepRun.to_payload()``, an
enveloped result body is ``SimResult.to_dict()``, an enveloped fleet
body is ``FleetReport.to_payload()``. The envelope adds provenance
around those payloads without perturbing them, so the golden-diff
machinery keeps pinning the same bytes.

Requests are typed dataclasses (:class:`SimulateRequest`,
:class:`SweepRequest`, ...) with ``to_wire``/``from_wire`` that
round-trip exactly; the service dispatches on ``kind`` through
:data:`REQUEST_TYPES`. Responses are built by the ``*_envelope``
helpers so every emitter spells the same kinds.

Old bare shapes (a sweep payload with a top-level ``cells``, a fleet
report with ``aggregate``, a result dict with ``cycles``) remain
*readable* through :func:`read_payload` for one release behind a
:class:`DeprecationWarning`; writers must emit envelopes.

``docs/service.md`` documents the wire protocol this module types.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, fields

# The schema generation. Bump only for an incompatible change to an
# envelope body; additive request fields with defaults do not count.
PAYLOAD_VERSION = 1

# Envelope kinds with a legacy (pre-envelope) bare shape, and the
# top-level key that identifies each bare shape on sight.
_LEGACY_MARKERS = (
    ("sweep", "cells"),
    ("fleet", "aggregate"),
    ("result", "cycles"),
)


class SchemaError(ValueError):
    """A document that does not parse as a valid envelope or request."""


@dataclass(frozen=True)
class Envelope:
    """One versioned wire document: ``kind`` names the ``body``'s type."""

    kind: str
    body: dict
    payload_version: int = PAYLOAD_VERSION

    def to_wire(self) -> dict:
        return {
            "payload_version": self.payload_version,
            "kind": self.kind,
            "body": self.body,
        }

    @classmethod
    def from_wire(cls, doc: dict) -> "Envelope":
        if not isinstance(doc, dict):
            raise SchemaError(f"envelope must be an object, got {type(doc).__name__}")
        missing = {"payload_version", "kind", "body"} - doc.keys()
        if missing:
            raise SchemaError(f"envelope missing {sorted(missing)}")
        version = doc["payload_version"]
        if version != PAYLOAD_VERSION:
            raise SchemaError(
                f"payload_version {version!r} is not supported "
                f"(this build speaks version {PAYLOAD_VERSION})"
            )
        if not isinstance(doc["kind"], str) or not doc["kind"]:
            raise SchemaError("envelope kind must be a non-empty string")
        if not isinstance(doc["body"], dict):
            raise SchemaError("envelope body must be an object")
        return cls(kind=doc["kind"], body=doc["body"], payload_version=version)


def wire_encode(envelope: Envelope) -> str:
    """One NDJSON line (no trailing newline): sorted keys, compact.

    Sorted-key compact serialization makes identical envelopes
    byte-identical on the wire — the same determinism convention as the
    sweep payload and the JSONL sinks.
    """
    return json.dumps(envelope.to_wire(), sort_keys=True, separators=(",", ":"))


def wire_decode(line: str) -> Envelope:
    """Parse one NDJSON line into a validated :class:`Envelope`."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"not valid JSON: {exc}") from None
    return Envelope.from_wire(doc)


# -- typed requests -----------------------------------------------------------


@dataclass
class Request:
    """Base of the typed request vocabulary (never sent itself).

    Subclasses set ``kind`` and declare their fields; ``to_wire`` and
    ``from_wire`` round-trip exactly (unknown body keys are rejected, so
    a typo'd knob fails loudly instead of silently running defaults).
    """

    kind = ""  # overridden per subclass

    def to_wire(self) -> Envelope:
        body = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            body[spec.name] = value
        return Envelope(kind=self.kind, body=body)

    @classmethod
    def from_wire(cls, envelope: Envelope) -> "Request":
        if envelope.kind != cls.kind:
            raise SchemaError(f"expected kind {cls.kind!r}, got {envelope.kind!r}")
        known = {spec.name for spec in fields(cls)}
        unknown = set(envelope.body) - known
        if unknown:
            raise SchemaError(
                f"{cls.kind} request does not accept {sorted(unknown)} "
                f"(knobs: {sorted(known)})"
            )
        return cls(**envelope.body)

    def _as_tuple(self, *names: str) -> None:
        # Wire JSON has no tuples; normalize list-valued fields back so
        # from_wire(to_wire(req)) == req holds (the round-trip contract).
        for name in names:
            value = getattr(self, name)
            if isinstance(value, list):
                setattr(self, name, tuple(value))


@dataclass
class HelloRequest(Request):
    """Names the connection's tenant; first message on a connection."""

    kind = "hello"
    tenant: str = "anon"


@dataclass
class SimulateRequest(Request):
    """One (workload, config) cell through the timing model."""

    kind = "simulate"
    workload: str = "stream"
    config: str = "aise+bmt"
    events: int = 60_000
    overlap: float = 0.7
    warmup: float = 0.25
    metrics: bool = False
    label: str | None = None


@dataclass
class SweepRequest(Request):
    """A (benchmark x configuration) grid; body mirrors :func:`repro.api.sweep`."""

    kind = "sweep"
    configs: tuple | None = None
    benchmarks: tuple | None = None
    events: int = 60_000
    mac_bits: tuple = (None,)
    workers: int = 1
    metrics: bool = False
    overlap: float = 0.7
    warmup: float = 0.25

    def __post_init__(self):
        self._as_tuple("configs", "benchmarks", "mac_bits")


@dataclass
class TraceRequest(Request):
    """One workload under full observability."""

    kind = "trace"
    workload: str = "stream"
    config: str = "aise+bmt"
    events: int = 60_000
    interval: int = 1024
    warmup: float = 0.25


@dataclass
class PrecompileRequest(Request):
    """Lower a workload's trace ahead of time (shared across sessions)."""

    kind = "precompile"
    workload: str = "stream"
    config: str = "aise+bmt"
    events: int = 60_000


@dataclass
class PresetsRequest(Request):
    """Discover configuration labels; ``full`` includes registry-valid extras."""

    kind = "presets"
    full: bool = False


@dataclass
class StatusRequest(Request):
    """Server statistics (cache tiers, warm pool, jobs served)."""

    kind = "status"


@dataclass
class SubscribeRequest(Request):
    """Stream fleet progress events for subsequent jobs on this connection."""

    kind = "subscribe"
    progress: bool = True


@dataclass
class ShutdownRequest(Request):
    """Ask the server to drain and stop (load-generator teardown)."""

    kind = "shutdown"


REQUEST_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        HelloRequest,
        SimulateRequest,
        SweepRequest,
        TraceRequest,
        PrecompileRequest,
        PresetsRequest,
        StatusRequest,
        SubscribeRequest,
        ShutdownRequest,
    )
}


def request_from_wire(envelope: Envelope) -> Request:
    """Dispatch an envelope to its typed request class."""
    cls = REQUEST_TYPES.get(envelope.kind)
    if cls is None:
        raise SchemaError(
            f"unknown request kind {envelope.kind!r} "
            f"(known: {', '.join(sorted(REQUEST_TYPES))})"
        )
    return cls.from_wire(envelope)


# -- response envelopes -------------------------------------------------------
#
# Builders rather than classes: response bodies ARE the legacy payloads
# (SimResult.to_dict(), SweepRun.to_payload(), ...), enveloped verbatim.


def result_envelope(result: dict, **meta) -> Envelope:
    """A single :class:`~repro.sim.results.SimResult` dict, plus metadata.

    ``meta`` (e.g. ``served_from="lru"``, ``job=3``) rides next to the
    result under reserved keys the result dict never uses.
    """
    body = {"result": result}
    overlap = set(meta) & set(body)
    if overlap:
        raise SchemaError(f"meta keys {sorted(overlap)} collide with the body")
    body.update(meta)
    return Envelope(kind="result", body=body)


def sweep_envelope(payload: dict, **meta) -> Envelope:
    """A ``SweepRun.to_payload()`` body — the golden byte-identity surface."""
    body = dict(payload)
    for key, value in meta.items():
        if key in payload:
            raise SchemaError(f"meta key {key!r} collides with the sweep payload")
        body[key] = value
    return Envelope(kind="sweep", body=body)


def trace_envelope(payload: dict) -> Envelope:
    """A ``TraceRun.to_payload()`` body."""
    return Envelope(kind="trace", body=payload)


def fleet_envelope(payload: dict) -> Envelope:
    """A ``FleetReport.to_payload()`` body."""
    return Envelope(kind="fleet", body=payload)


def presets_envelope(labels) -> Envelope:
    return Envelope(kind="presets", body={"presets": list(labels)})


def status_envelope(stats: dict) -> Envelope:
    return Envelope(kind="status", body=dict(stats))


def event_envelope(record: dict, *, job: int, tenant: str) -> Envelope:
    """One fleet progress record, tagged with its job and tenant."""
    return Envelope(kind="event", body={"job": job, "tenant": tenant, "record": record})


def ok_envelope(**body) -> Envelope:
    return Envelope(kind="ok", body=body)


def error_envelope(message: str, **detail) -> Envelope:
    return Envelope(kind="error", body={"error": message, **detail})


# -- the one-release deprecation shim -----------------------------------------


def read_payload(doc: dict) -> Envelope:
    """Read an enveloped *or* legacy bare payload as an :class:`Envelope`.

    Enveloped documents pass through :meth:`Envelope.from_wire`. Bare
    pre-envelope shapes are recognized by their signature top-level key
    (``cells`` -> sweep, ``aggregate`` -> fleet, ``cycles`` -> result)
    and wrapped, with a :class:`DeprecationWarning`: readable for one
    release, then envelopes only.
    """
    if not isinstance(doc, dict):
        raise SchemaError(f"payload must be an object, got {type(doc).__name__}")
    if {"payload_version", "kind", "body"} <= doc.keys():
        return Envelope.from_wire(doc)
    for kind, marker in _LEGACY_MARKERS:
        if marker in doc:
            warnings.warn(
                f"bare {kind} payloads are deprecated; emitters now wrap them in "
                f"the versioned envelope (repro.api.schema, payload_version "
                f"{PAYLOAD_VERSION}) and bare-shape reading will be removed "
                "next release",
                DeprecationWarning,
                stacklevel=2,
            )
            return Envelope(kind=kind, body=doc)
    raise SchemaError(
        "not an envelope (missing payload_version/kind/body) and not a "
        "recognized legacy payload shape"
    )
