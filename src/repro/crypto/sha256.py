"""SHA-256 hash function, implemented from scratch per FIPS-180-2.

The paper's section 7.3 motivates its MAC-size sensitivity study with
security consortia (NIST, NESSIE, CRYPTREC) recommending longer MACs
such as SHA-256. This implementation backs the native 256-bit MAC
variant (:class:`repro.crypto.mac.HmacSha256Mac`) so the 256-bit rows of
Table 2 / Figure 11 can run on a full-width hash rather than a
counter-expanded SHA-1. Validated against FIPS-180-2 vectors in
``tests/crypto/test_sha256.py``.
"""

from __future__ import annotations

DIGEST_SIZE = 32
BLOCK_SIZE = 64

_MASK = 0xFFFFFFFF

# First 32 bits of the fractional parts of the cube roots of the first 64
# primes (FIPS-180-2 section 4.2.2) — derived, not pasted.


def _fractional_root_constants() -> tuple[list[int], list[int]]:
    primes = []
    candidate = 2
    while len(primes) < 64:
        if all(candidate % p for p in primes):
            primes.append(candidate)
        candidate += 1
    k = [int((p ** (1 / 3) % 1) * (1 << 32)) & _MASK for p in primes]
    h = [int((p ** 0.5 % 1) * (1 << 32)) & _MASK for p in primes[:8]]
    return k, h


_K, _H0 = _fractional_root_constants()


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (32 - amount))) & _MASK


def _compress(state: tuple, chunk: bytes) -> tuple:
    w = [int.from_bytes(chunk[i : i + 4], "big") for i in range(0, 64, 4)]
    for t in range(16, 64):
        s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK)
    a, b, c, d, e, f, g, h = state
    for t in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + big_s1 + ch + _K[t] + w[t]) & _MASK
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (big_s0 + maj) & _MASK
        h, g, f, e, d, c, b, a = g, f, e, (d + temp1) & _MASK, c, b, a, (temp1 + temp2) & _MASK
    return tuple((x + y) & _MASK for x, y in zip(state, (a, b, c, d, e, f, g, h)))


class SHA256:
    """Incremental SHA-256 with the usual ``update``/``digest`` interface."""

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, data: bytes = b""):
        self._state = tuple(_H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA256":
        self._length += len(data)
        buf = self._buffer + bytes(data)
        offset = 0
        while offset + BLOCK_SIZE <= len(buf):
            self._state = _compress(self._state, buf[offset : offset + BLOCK_SIZE])
            offset += BLOCK_SIZE
        self._buffer = buf[offset:]
        return self

    def copy(self) -> "SHA256":
        clone = SHA256()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64) + bit_length.to_bytes(8, "big")
        state = self._state
        buf = self._buffer + padding
        for offset in range(0, len(buf), BLOCK_SIZE):
            state = _compress(state, buf[offset : offset + BLOCK_SIZE])
        return b"".join(word.to_bytes(4, "big") for word in state)

    def hexdigest(self) -> str:
        return self.digest().hex()


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest of ``data``."""
    return SHA256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC (RFC 2104) over SHA-256."""
    key = bytes(key)
    if len(key) > BLOCK_SIZE:
        key = sha256(key)
    key = key.ljust(BLOCK_SIZE, b"\x00")
    inner = sha256(bytes(b ^ 0x36 for b in key) + data)
    return sha256(bytes(b ^ 0x5C for b in key) + inner)
