"""Models of the on-chip cryptographic engines (paper section 6).

Two kinds of engine model live here:

* :class:`PipelinedEngine` — the *latency* model: a 128-bit AES engine
  with a 16-stage pipeline and 80-cycle total latency, and an HMAC-SHA1
  unit with 80-cycle latency. For a request issued at a given cycle it
  exposes the cycle at which the result is available, accounting for
  pipelining (a new chunk can enter the AES pipeline every
  ``latency/stages`` cycles). The timing simulator uses these to decide
  how much decryption latency is exposed on the critical path of a miss.
* :class:`PadCache` — the *functional* fast path: a bounded LRU memo of
  counter-mode keystream pads keyed by ``(key, seed)``. A pad is a pure
  function of its key and seed, so memoizing is semantically invisible —
  ciphertext is byte-identical with the cache on or off — and it models
  exactly the pad *precomputation* the literature identifies as the
  lever for hiding counter-mode encryption cost (Sealer, and the paper's
  own section 4.1 pad-generation overlap). Hit/miss counts are plain
  fields so :func:`repro.obs.adapters.register_pad_cache` can bind
  pull-model gauges over a live cache for free.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class PipelinedEngine:
    """A fully pipelined fixed-latency functional unit.

    ``latency`` is the cycles from issue to completion for one operation;
    ``stages`` the pipeline depth, so the initiation interval is
    ``latency / stages`` cycles.
    """

    latency: int
    stages: int = 1
    _next_issue: int = field(default=0, repr=False)
    operations: int = field(default=0, repr=False)

    @property
    def initiation_interval(self) -> int:
        return max(1, self.latency // self.stages)

    def issue(self, cycle: int) -> int:
        """Issue an operation at ``cycle`` (or later if the pipe is busy).

        Returns the completion cycle.
        """
        start = max(cycle, self._next_issue)
        self._next_issue = start + self.initiation_interval
        self.operations += 1
        return start + self.latency

    def reset(self) -> None:
        self._next_issue = 0
        self.operations = 0


class PadCache:
    """A bounded LRU memo of keystream pads keyed by ``(key, seed)``.

    Keying on the key as well as the seed keeps the memo correct across
    re-keying events (the global-counter baseline's whole-memory
    re-encryption swaps keys mid-life) without requiring a flush.
    ``hits``/``misses`` are exposed for the observability gauges; the
    capacity bound keeps a long-running functional simulation from
    holding every pad it ever generated.
    """

    __slots__ = ("capacity", "hits", "misses", "_pads")

    DEFAULT_CAPACITY = 8192

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("PadCache capacity must be at least 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._pads: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._pads)

    def lookup(self, key: bytes, seed: int) -> bytes | None:
        """The cached pad for ``(key, seed)``, refreshed as MRU; None on miss."""
        pads = self._pads
        pad = pads.get((key, seed))
        if pad is None:
            self.misses += 1
            return None
        pads.move_to_end((key, seed))
        self.hits += 1
        return pad

    def insert(self, key: bytes, seed: int, pad: bytes) -> None:
        """Memoize a freshly generated pad, evicting LRU past capacity.

        Re-inserting a resident ``(key, seed)`` refreshes its recency:
        assigning into an existing ``OrderedDict`` slot keeps the stale
        LRU position, so without the ``move_to_end`` a just-regenerated
        pad could be evicted as if cold.
        """
        pads = self._pads
        pads[(key, seed)] = pad
        pads.move_to_end((key, seed))
        if len(pads) > self.capacity:
            pads.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached pad, keeping the hit/miss statistics."""
        self._pads.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def aes_engine(latency: int = 80, stages: int = 16) -> PipelinedEngine:
    """The paper's AES engine: 16-stage pipeline, 80-cycle latency."""
    return PipelinedEngine(latency=latency, stages=stages)


def mac_engine(latency: int = 80, stages: int = 16) -> PipelinedEngine:
    """The paper's HMAC-SHA1 engine: 80-cycle latency."""
    return PipelinedEngine(latency=latency, stages=stages)
