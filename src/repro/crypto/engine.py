"""Latency models of the on-chip cryptographic engines (paper section 6).

The simulated hardware is a 128-bit AES engine with a 16-stage pipeline and
80-cycle total latency, and an HMAC-SHA1 unit with 80-cycle latency. These
models expose, for a request issued at a given cycle, the cycle at which
its result is available — accounting for pipelining (a new chunk can enter
the AES pipeline every ``latency/stages`` cycles).

The timing simulator uses these to decide how much decryption latency is
exposed on the critical path of a cache miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PipelinedEngine:
    """A fully pipelined fixed-latency functional unit.

    ``latency`` is the cycles from issue to completion for one operation;
    ``stages`` the pipeline depth, so the initiation interval is
    ``latency / stages`` cycles.
    """

    latency: int
    stages: int = 1
    _next_issue: int = field(default=0, repr=False)
    operations: int = field(default=0, repr=False)

    @property
    def initiation_interval(self) -> int:
        return max(1, self.latency // self.stages)

    def issue(self, cycle: int) -> int:
        """Issue an operation at ``cycle`` (or later if the pipe is busy).

        Returns the completion cycle.
        """
        start = max(cycle, self._next_issue)
        self._next_issue = start + self.initiation_interval
        self.operations += 1
        return start + self.latency

    def reset(self) -> None:
        self._next_issue = 0
        self.operations = 0


def aes_engine(latency: int = 80, stages: int = 16) -> PipelinedEngine:
    """The paper's AES engine: 16-stage pipeline, 80-cycle latency."""
    return PipelinedEngine(latency=latency, stages=stages)


def mac_engine(latency: int = 80, stages: int = 16) -> PipelinedEngine:
    """The paper's HMAC-SHA1 engine: 80-cycle latency."""
    return PipelinedEngine(latency=latency, stages=stages)
