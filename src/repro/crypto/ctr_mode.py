"""Counter-mode pad generation and block encryption (paper section 4.1).

A 64-byte memory block is four 16-byte *chunks*. Each chunk is encrypted
by XOR with a cryptographic pad ``E_K(seed)`` where the seed embeds the
chunk id, so pads are unique per chunk (paper footnote 1). The seed for
chunk ``i`` of a block is supplied by a seed scheme (``repro.core.seeds``);
this module only turns seeds into pads and applies them.

Like the hardware it models, the same routine performs encryption and
decryption (XOR with the same pad).
"""

from __future__ import annotations

import hashlib

from .aes import AES, BLOCK_SIZE as CHUNK_SIZE

MEMORY_BLOCK_SIZE = 64  # bytes, one cache line
CHUNKS_PER_BLOCK = MEMORY_BLOCK_SIZE // CHUNK_SIZE  # 4


class PadGenerator:
    """Generates cryptographic pads from 128-bit seeds with a secret key."""

    def __init__(self, key: bytes, fast: bool = False):
        self.key = bytes(key)
        self._fast = fast
        self._aes = None if fast else AES(self.key)

    def pad(self, seed: int) -> bytes:
        """Return the 16-byte pad E_K(seed)."""
        seed_bytes = (seed & ((1 << 128) - 1)).to_bytes(CHUNK_SIZE, "big")
        if self._fast:
            # Keyed BLAKE2s as a fast PRF stand-in for AES; same interface,
            # same uniqueness properties for simulation purposes.
            return hashlib.blake2s(seed_bytes, key=self.key[:32], digest_size=CHUNK_SIZE).digest()
        return self._aes.encrypt_block(seed_bytes)


class CounterModeCipher:
    """Encrypts/decrypts 64-byte memory blocks chunk-by-chunk.

    ``seeds`` is the list of per-chunk seeds (one 128-bit int per chunk)
    produced by the active seed scheme for this block and counter value.
    """

    def __init__(self, key: bytes, fast: bool = False):
        self._pads = PadGenerator(key, fast=fast)

    def apply(self, block: bytes, seeds: list[int]) -> bytes:
        if len(block) != MEMORY_BLOCK_SIZE:
            raise ValueError(f"memory block must be {MEMORY_BLOCK_SIZE} bytes, got {len(block)}")
        if len(seeds) != CHUNKS_PER_BLOCK:
            raise ValueError(f"expected {CHUNKS_PER_BLOCK} seeds, got {len(seeds)}")
        out = bytearray(MEMORY_BLOCK_SIZE)
        for chunk_id, seed in enumerate(seeds):
            pad = self._pads.pad(seed)
            base = chunk_id * CHUNK_SIZE
            for i in range(CHUNK_SIZE):
                out[base + i] = block[base + i] ^ pad[i]
        return bytes(out)

    # Encryption and decryption are the same XOR operation; aliases keep
    # call sites readable.
    encrypt = apply
    decrypt = apply
