"""Counter-mode pad generation and block encryption (paper section 4.1).

A 64-byte memory block is four 16-byte *chunks*. Each chunk is encrypted
by XOR with a cryptographic pad ``E_K(seed)`` where the seed embeds the
chunk id, so pads are unique per chunk (paper footnote 1). The seed for
chunk ``i`` of a block is supplied by a seed scheme (``repro.core.seeds``);
this module only turns seeds into pads and applies them.

Like the hardware it models, the same routine performs encryption and
decryption (XOR with the same pad).

Fast path (:mod:`repro.fastpath`): pads memoize in a bounded
:class:`~repro.crypto.engine.PadCache` keyed by ``(key, seed)`` — a pad
is a pure function of both, so the memo cannot change a single output
byte — and the per-block XOR applies as one 512-bit integer operation
instead of a byte-at-a-time Python loop. With the gate off, the
reference implementations below run instead; the equivalence tests and
``tests/crypto/test_pad_cache.py`` assert both sides agree byte for
byte.
"""

from __future__ import annotations

import hashlib

from .. import fastpath
from .aes import AES, BLOCK_SIZE as CHUNK_SIZE
from .engine import PadCache

MEMORY_BLOCK_SIZE = 64  # bytes, one cache line
CHUNKS_PER_BLOCK = MEMORY_BLOCK_SIZE // CHUNK_SIZE  # 4

_SEED_MASK = (1 << 128) - 1


class PadGenerator:
    """Generates cryptographic pads from 128-bit seeds with a secret key.

    ``cache`` is a :class:`~repro.crypto.engine.PadCache` memoizing
    ``(key, seed) -> pad``; pass None for the uncached reference
    behaviour (the default follows the :mod:`repro.fastpath` gate at
    construction time).
    """

    def __init__(self, key: bytes, fast: bool = False, cache: PadCache | None = None):
        self.key = bytes(key)
        self._fast = fast
        self._aes = None if fast else AES(self.key)
        if cache is None and fastpath.enabled():
            cache = PadCache()
        self.cache = cache

    def _generate(self, seed: int) -> bytes:
        seed_bytes = (seed & _SEED_MASK).to_bytes(CHUNK_SIZE, "big")
        if self._fast:
            # Keyed BLAKE2s as a fast PRF stand-in for AES; same interface,
            # same uniqueness properties for simulation purposes.
            return hashlib.blake2s(seed_bytes, key=self.key[:32], digest_size=CHUNK_SIZE).digest()
        return self._aes.encrypt_block(seed_bytes)

    def pad(self, seed: int) -> bytes:
        """Return the 16-byte pad E_K(seed)."""
        cache = self.cache
        if cache is None:
            return self._generate(seed)
        pad = cache.lookup(self.key, seed)
        if pad is None:
            pad = self._generate(seed)
            cache.insert(self.key, seed, pad)
        return pad

    def block_pad_int(self, seeds) -> int:
        """The whole-block pad for ``seeds`` as one 512-bit integer.

        One memo probe per block instead of four per-seed probes: the
        cache key is the seed *tuple* (tuples and ints never collide as
        keys, so both granularities share one :class:`PadCache`). The
        value is pre-converted to an int because the sole caller XORs it
        into an int immediately.
        """
        if type(seeds) is not tuple:
            seeds = tuple(seeds)
        cache = self.cache
        if cache is None:
            return int.from_bytes(b"".join(map(self._generate, seeds)), "big")
        pad = cache.lookup(self.key, seeds)
        if pad is None:
            pad = int.from_bytes(b"".join(map(self._generate, seeds)), "big")
            cache.insert(self.key, seeds, pad)
        return pad


class CounterModeCipher:
    """Encrypts/decrypts 64-byte memory blocks chunk-by-chunk.

    ``seeds`` is the sequence of per-chunk seeds (one 128-bit int per
    chunk) produced by the active seed scheme for this block and counter
    value.
    """

    def __init__(self, key: bytes, fast: bool = False, cache: PadCache | None = None):
        self._pads = PadGenerator(key, fast=fast, cache=cache)
        self._int_xor = fastpath.enabled()

    @property
    def pad_cache(self) -> PadCache | None:
        """The pad memo serving this cipher (None in reference mode)."""
        return self._pads.cache

    def apply(self, block: bytes, seeds) -> bytes:
        if len(block) != MEMORY_BLOCK_SIZE:
            raise ValueError(f"memory block must be {MEMORY_BLOCK_SIZE} bytes, got {len(block)}")
        if len(seeds) != CHUNKS_PER_BLOCK:
            raise ValueError(f"expected {CHUNKS_PER_BLOCK} seeds, got {len(seeds)}")
        if not self._int_xor:
            return self._apply_reference(block, seeds)
        whole = int.from_bytes(block, "big") ^ self._pads.block_pad_int(seeds)
        return whole.to_bytes(MEMORY_BLOCK_SIZE, "big")

    def pad_int(self, seeds) -> int:
        """The whole-block pad for ``seeds`` as one 512-bit integer."""
        return self._pads.block_pad_int(seeds)

    def apply_pad_int(self, block: bytes, pad: int) -> bytes:
        """XOR ``block`` with a pad previously obtained from :meth:`pad_int`."""
        if len(block) != MEMORY_BLOCK_SIZE:
            raise ValueError(f"memory block must be {MEMORY_BLOCK_SIZE} bytes, got {len(block)}")
        whole = int.from_bytes(block, "big") ^ pad
        return whole.to_bytes(MEMORY_BLOCK_SIZE, "big")

    def _apply_reference(self, block: bytes, seeds) -> bytes:
        """Byte-at-a-time XOR: the pre-fastpath implementation, kept as
        the reference side of the throughput benchmark and the
        equivalence tests."""
        out = bytearray(MEMORY_BLOCK_SIZE)
        for chunk_id, seed in enumerate(seeds):
            pad = self._pads.pad(seed)
            base = chunk_id * CHUNK_SIZE
            for i in range(CHUNK_SIZE):
                out[base + i] = block[base + i] ^ pad[i]
        return bytes(out)

    # Encryption and decryption are the same XOR operation; aliases keep
    # call sites readable.
    encrypt = apply
    decrypt = apply
