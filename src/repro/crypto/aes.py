"""AES-128 block cipher, implemented from scratch per FIPS-197.

The secure processor's counter-mode encryption unit applies a 128-bit
block cipher to a seed to produce a cryptographic pad (paper section 4.1).
This module provides that cipher. The implementation is a straightforward
table-driven AES: S-box / inverse S-box, key expansion, and the four round
transformations. It is validated against the FIPS-197 appendix vectors in
``tests/crypto/test_aes.py``.

Only AES-128 is needed by the paper (128-bit chunks, 128-bit seeds), but
the key schedule supports 128/192/256-bit keys for completeness.
"""

from __future__ import annotations

BLOCK_SIZE = 16  # bytes; one AES block == one encryption "chunk" in the paper

# ---------------------------------------------------------------------------
# S-box construction.  Rather than pasting a 256-entry magic table, derive the
# S-box from its definition: multiplicative inverse in GF(2^8) followed by the
# affine transformation (FIPS-197 section 5.1.1).
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via exhaustive search (runs once at import).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = bytearray(256)
    for x in range(256):
        b = inverse[x]
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        value = 0x63
        for shift in range(5):
            rotated = ((b << shift) | (b >> (8 - shift))) & 0xFF
            value ^= rotated
        sbox[x] = value & 0xFF
    inv_sbox = bytearray(256)
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

# Round constants for the key schedule (powers of x in GF(2^8)).
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Precomputed xtime tables used by (Inv)MixColumns.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))


def expand_key(key: bytes) -> list[list[int]]:
    """Expand a 16/24/32-byte key into per-round 16-byte round keys.

    Returns a list of round keys, each a flat list of 16 ints in
    column-major (state) order, ready for AddRoundKey.
    """
    if len(key) not in (16, 24, 32):
        raise ValueError(f"AES key must be 16, 24, or 32 bytes, got {len(key)}")
    nk = len(key) // 4
    rounds = {4: 10, 6: 12, 8: 14}[nk]
    words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [SBOX[b] for b in temp]  # SubWord
            temp[0] ^= _RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            temp = [SBOX[b] for b in temp]
        words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
    round_keys = []
    for r in range(rounds + 1):
        rk = []
        for c in range(4):
            rk.extend(words[4 * r + c])
        round_keys.append(rk)
    return round_keys


def _add_round_key(state: list[int], rk: list[int]) -> None:
    for i in range(16):
        state[i] ^= rk[i]


def _sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


# State layout: state[4*c + r] is row r, column c (FIPS column-major bytes).

_SHIFT_ROWS_MAP = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT_ROWS_MAP = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]


def _shift_rows(state: list[int]) -> list[int]:
    return [state[i] for i in _SHIFT_ROWS_MAP]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[i] for i in _INV_SHIFT_ROWS_MAP]


def _mix_columns(state: list[int]) -> None:
    for c in range(4):
        i = 4 * c
        a0, a1, a2, a3 = state[i : i + 4]
        state[i] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        state[i + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        state[i + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        state[i + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(4):
        i = 4 * c
        a0, a1, a2, a3 = state[i : i + 4]
        state[i] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
        state[i + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
        state[i + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
        state[i + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]


class AES:
    """AES block cipher bound to a single key.

    >>> cipher = AES(bytes(range(16)))
    >>> pt = bytes(16)
    >>> cipher.decrypt_block(cipher.encrypt_block(pt)) == pt
    True
    """

    def __init__(self, key: bytes):
        self._round_keys = expand_key(bytes(key))
        self._rounds = len(self._round_keys) - 1
        self.key_size = len(key)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError(f"AES block must be {BLOCK_SIZE} bytes, got {len(plaintext)}")
        state = list(plaintext)
        _add_round_key(state, self._round_keys[0])
        for r in range(1, self._rounds):
            _sub_bytes(state)
            state = _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[r])
        _sub_bytes(state)
        state = _shift_rows(state)
        _add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != BLOCK_SIZE:
            raise ValueError(f"AES block must be {BLOCK_SIZE} bytes, got {len(ciphertext)}")
        state = list(ciphertext)
        _add_round_key(state, self._round_keys[self._rounds])
        for r in range(self._rounds - 1, 0, -1):
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[r])
            _inv_mix_columns(state)
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
