"""Message Authentication Codes of configurable size.

The paper studies MAC sizes from 32 to 256 bits (section 7.3). A MAC
function here is a keyed object producing ``mac_bytes`` of output from an
arbitrary message. Two implementations are provided:

* :class:`HmacSha1Mac` — the paper's construction (HMAC-SHA1, built on the
  from-scratch primitives). Digests longer than SHA-1's 20 bytes are
  produced by counter-suffixed expansion.
* :class:`Blake2Mac` — a drop-in fast keyed MAC from ``hashlib`` (stdlib,
  no third-party dependency) for large functional simulations where the
  pure-Python SHA-1 would dominate runtime. Cryptographically sound, but
  not what the paper's hardware models; tests exercise both.
"""

from __future__ import annotations

import hashlib

from .hmac_sha1 import hmac_sha1
from .sha256 import hmac_sha256

DEFAULT_MAC_BITS = 128
SUPPORTED_MAC_BITS = (32, 64, 128, 256)


class MacFunction:
    """A keyed MAC truncated/expanded to a fixed output size."""

    def __init__(self, key: bytes, mac_bits: int = DEFAULT_MAC_BITS):
        if mac_bits % 8 != 0 or mac_bits <= 0:
            raise ValueError(f"MAC size must be a positive multiple of 8 bits, got {mac_bits}")
        self.key = bytes(key)
        self.mac_bits = mac_bits
        self.mac_bytes = mac_bits // 8

    def compute(self, message: bytes) -> bytes:
        raise NotImplementedError

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-length comparison of a stored tag against a recomputation."""
        expected = self.compute(message)
        if len(tag) != len(expected):
            return False
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        return diff == 0


class HmacSha1Mac(MacFunction):
    """HMAC-SHA1 truncated (or expanded with a counter suffix) to mac_bytes."""

    def compute(self, message: bytes) -> bytes:
        out = b""
        counter = 0
        while len(out) < self.mac_bytes:
            out += hmac_sha1(self.key, message + counter.to_bytes(4, "big"))
            counter += 1
        return out[: self.mac_bytes]


class HmacSha256Mac(MacFunction):
    """HMAC-SHA256: native 32-byte digests for the longest MAC sizes the
    paper studies (section 7.3 cites NIST's move to SHA-256)."""

    def compute(self, message: bytes) -> bytes:
        out = b""
        counter = 0
        while len(out) < self.mac_bytes:
            out += hmac_sha256(self.key, message + counter.to_bytes(4, "big"))
            counter += 1
        return out[: self.mac_bytes]


class Blake2Mac(MacFunction):
    """Keyed BLAKE2s/BLAKE2b MAC — fast stand-in with identical interface."""

    def compute(self, message: bytes) -> bytes:
        if self.mac_bytes <= 32:
            return hashlib.blake2s(message, key=self.key[:32], digest_size=self.mac_bytes).digest()
        return hashlib.blake2b(message, key=self.key[:64], digest_size=self.mac_bytes).digest()


def make_mac(key: bytes, mac_bits: int = DEFAULT_MAC_BITS, fast: bool = True) -> MacFunction:
    """Construct the configured MAC function.

    ``fast=True`` (default for simulations) selects :class:`Blake2Mac`;
    ``fast=False`` selects the reference construction the paper's
    hardware would use — HMAC-SHA1 up to 160-bit MACs, HMAC-SHA256 for
    anything wider (matching the NIST guidance the paper cites).
    """
    if fast:
        return Blake2Mac(key, mac_bits)
    if mac_bits > 160:
        return HmacSha256Mac(key, mac_bits)
    return HmacSha1Mac(key, mac_bits)
