"""SHA-1 hash function, implemented from scratch per FIPS-180-1.

The paper's integrity MACs are HMACs based on SHA-1 (section 6). This is a
clean-room implementation of the compression function and Merkle-Damgard
padding, validated against the FIPS-180-1 test vectors in
``tests/crypto/test_sha1.py``.
"""

from __future__ import annotations

DIGEST_SIZE = 20  # bytes
BLOCK_SIZE = 64  # bytes (input block of the compression function)

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _compress(state: tuple[int, int, int, int, int], chunk: bytes) -> tuple[int, int, int, int, int]:
    w = [int.from_bytes(chunk[i : i + 4], "big") for i in range(0, 64, 4)]
    for t in range(16, 80):
        w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
    a, b, c, d, e = state
    for t in range(80):
        if t < 20:
            f = (b & c) | (~b & d)
            k = 0x5A827999
        elif t < 40:
            f = b ^ c ^ d
            k = 0x6ED9EBA1
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
            k = 0x8F1BBCDC
        else:
            f = b ^ c ^ d
            k = 0xCA62C1D6
        temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK
        e, d, c, b, a = d, c, _rotl(b, 30), a, temp
    return (
        (state[0] + a) & _MASK,
        (state[1] + b) & _MASK,
        (state[2] + c) & _MASK,
        (state[3] + d) & _MASK,
        (state[4] + e) & _MASK,
    )


class SHA1:
    """Incremental SHA-1 with the usual ``update``/``digest`` interface."""

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, data: bytes = b""):
        self._state = _H0
        self._buffer = b""
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA1":
        self._length += len(data)
        buf = self._buffer + bytes(data)
        offset = 0
        while offset + BLOCK_SIZE <= len(buf):
            self._state = _compress(self._state, buf[offset : offset + BLOCK_SIZE])
            offset += BLOCK_SIZE
        self._buffer = buf[offset:]
        return self

    def copy(self) -> "SHA1":
        clone = SHA1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        # Pad a copy so the object remains usable for further updates.
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64) + bit_length.to_bytes(8, "big")
        state = self._state
        buf = self._buffer + padding
        for offset in range(0, len(buf), BLOCK_SIZE):
            state = _compress(state, buf[offset : offset + BLOCK_SIZE])
        return b"".join(word.to_bytes(4, "big") for word in state)

    def hexdigest(self) -> str:
        return self.digest().hex()


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of ``data``."""
    return SHA1(data).digest()
