"""Cryptographic primitives and engine models for the secure processor.

Everything here is implemented from scratch (AES per FIPS-197, SHA-1 per
FIPS-180-1, HMAC per RFC 2104) and validated against published test
vectors. ``hashlib``-backed fast variants are provided for large
simulations; they share interfaces with the reference implementations.
"""

from .aes import AES
from .ctr_mode import CHUNKS_PER_BLOCK, CounterModeCipher, MEMORY_BLOCK_SIZE, PadGenerator
from .engine import PipelinedEngine, aes_engine, mac_engine
from .hmac_sha1 import HMACSHA1, hmac_sha1
from .mac import (
    DEFAULT_MAC_BITS,
    SUPPORTED_MAC_BITS,
    Blake2Mac,
    HmacSha1Mac,
    HmacSha256Mac,
    MacFunction,
    make_mac,
)
from .sha1 import SHA1, sha1
from .sha256 import SHA256, hmac_sha256, sha256

__all__ = [
    "AES",
    "SHA1",
    "sha1",
    "SHA256",
    "sha256",
    "hmac_sha256",
    "HmacSha256Mac",
    "HMACSHA1",
    "hmac_sha1",
    "MacFunction",
    "HmacSha1Mac",
    "Blake2Mac",
    "make_mac",
    "DEFAULT_MAC_BITS",
    "SUPPORTED_MAC_BITS",
    "CounterModeCipher",
    "PadGenerator",
    "MEMORY_BLOCK_SIZE",
    "CHUNKS_PER_BLOCK",
    "PipelinedEngine",
    "aes_engine",
    "mac_engine",
]
