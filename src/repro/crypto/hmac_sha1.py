"""HMAC (RFC 2104) over the from-scratch SHA-1 implementation.

The paper computes per-block MACs with "HMAC based on SHA-1" (section 6),
truncated to the configured MAC size (32..256 bits in the sensitivity
study; 128 bits by default). Validated against RFC 2202 vectors in
``tests/crypto/test_hmac.py``.
"""

from __future__ import annotations

from .sha1 import BLOCK_SIZE, DIGEST_SIZE, SHA1, sha1

_IPAD = 0x36
_OPAD = 0x5C


class HMACSHA1:
    """Incremental HMAC-SHA1 keyed at construction time."""

    digest_size = DIGEST_SIZE

    def __init__(self, key: bytes, data: bytes = b""):
        key = bytes(key)
        if len(key) > BLOCK_SIZE:
            key = sha1(key)
        key = key.ljust(BLOCK_SIZE, b"\x00")
        self._inner = SHA1(bytes(b ^ _IPAD for b in key))
        self._outer_key = bytes(b ^ _OPAD for b in key)
        if data:
            self.update(data)

    def update(self, data: bytes) -> "HMACSHA1":
        self._inner.update(data)
        return self

    def digest(self) -> bytes:
        return SHA1(self._outer_key).update(self._inner.digest()).digest()

    def hexdigest(self) -> str:
        return self.digest().hex()


def hmac_sha1(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA1 of ``data`` under ``key``."""
    return HMACSHA1(key, data).digest()
