"""Physical-attack primitives against the functional secure memory.

The paper's attack model (section 3): everything off-chip — DRAM contents,
the memory bus, and the swap disk — can be observed and modified by a
man-in-the-middle. These helpers perform the three canonical active
attacks on any region of physical memory:

* **spoofing** — overwrite a block with attacker-chosen bytes;
* **splicing** — swap the contents of two blocks (both individually
  valid ciphertexts, relocated);
* **replay** — capture a block (and optionally its co-located metadata)
  and restore the stale version later.

Each returns an :class:`AttackRecord` so scenarios can assert what was
touched and verify that the processor detects the manipulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.machine import SecureMemorySystem
from ..mem.layout import block_address


@dataclass
class AttackRecord:
    """What an attack touched: kind, addresses, and prior contents."""

    kind: str
    addresses: list = field(default_factory=list)
    snapshots: dict = field(default_factory=dict)  # address -> old bytes


class MemoryTamperer:
    """An adversary with read/write access to all off-chip memory."""

    def __init__(self, machine: SecureMemorySystem):
        self.machine = machine
        self.memory = machine.memory
        self.log: list[AttackRecord] = []

    # -- observation -----------------------------------------------------------

    def observe(self, address: int) -> bytes:
        """Passive attack: read raw bus/DRAM contents (always possible)."""
        return self.memory.raw_read(block_address(address))

    def ciphertext_leaks_plaintext(self, address: int, plaintext: bytes) -> bool:
        """Does the stored block visibly equal the plaintext? (It must not,
        for any encrypting configuration.)"""
        return self.observe(address) == plaintext

    # -- active attacks ----------------------------------------------------------

    def spoof(self, address: int, payload: bytes | None = None) -> AttackRecord:
        aligned = block_address(address)
        old = self.memory.corrupt(aligned, payload)
        record = AttackRecord(kind="spoof", addresses=[aligned], snapshots={aligned: old})
        self.log.append(record)
        return record

    def splice(self, address_a: int, address_b: int) -> AttackRecord:
        a, b = block_address(address_a), block_address(address_b)
        block_a = self.memory.raw_read(a)
        block_b = self.memory.raw_read(b)
        self.memory.raw_write(a, block_b)
        self.memory.raw_write(b, block_a)
        record = AttackRecord(kind="splice", addresses=[a, b], snapshots={a: block_a, b: block_b})
        self.log.append(record)
        return record

    def snapshot(self, *addresses: int) -> AttackRecord:
        """Capture blocks for a later replay."""
        record = AttackRecord(kind="snapshot")
        for address in addresses:
            aligned = block_address(address)
            record.addresses.append(aligned)
            record.snapshots[aligned] = self.memory.raw_read(aligned)
        self.log.append(record)
        return record

    def replay(self, snapshot: AttackRecord) -> AttackRecord:
        """Restore previously captured blocks (rollback attack)."""
        for address, old in snapshot.snapshots.items():
            self.memory.raw_write(address, old)
        record = AttackRecord(
            kind="replay", addresses=list(snapshot.addresses), snapshots=dict(snapshot.snapshots)
        )
        self.log.append(record)
        return record

    # -- metadata-targeted helpers --------------------------------------------------

    def data_mac_block(self, address: int) -> int:
        """Address of the MAC block guarding a data block (BMT/MAC schemes)."""
        store = getattr(self.machine.integrity, "store", None)
        if store is None:
            raise ValueError("this configuration keeps no per-block MACs")
        return store.mac_block_address(address)

    def counter_block(self, address: int) -> int:
        cb = self.machine.encryption.counter_block_address(address)
        if cb is None:
            raise ValueError("this configuration keeps no counters")
        return cb

    def snapshot_with_metadata(self, address: int) -> AttackRecord:
        """Capture a data block together with every co-stored credential an
        attacker could roll back with it (MAC block, counter block)."""
        targets = [block_address(address)]
        try:
            targets.append(self.data_mac_block(address))
        except ValueError:
            pass
        try:
            targets.append(self.counter_block(address))
        except ValueError:
            pass
        return self.snapshot(*targets)
