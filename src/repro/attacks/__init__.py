"""Physical attack simulation: spoofing, splicing, replay, swap tampering."""

from .scenarios import (
    ScenarioResult,
    counter_tamper_attack,
    replay_attack,
    run_all,
    splicing_attack,
    spoofing_attack,
)
from .tamper import AttackRecord, MemoryTamperer

__all__ = [
    "MemoryTamperer",
    "AttackRecord",
    "ScenarioResult",
    "spoofing_attack",
    "splicing_attack",
    "replay_attack",
    "counter_tamper_attack",
    "run_all",
]
