"""End-to-end attack scenarios with expected outcomes per scheme.

Each scenario runs a concrete attack against a live
:class:`~repro.core.machine.SecureMemorySystem` and reports whether the
processor detected it. The expected-outcome matrix is the paper's
security argument in executable form:

=================  =========  =========  ==========  ==========
attack             mac_only   merkle     bonsai      none
=================  =========  =========  ==========  ==========
spoof data         detected   detected   detected    missed
splice data        detected   detected   detected    missed
replay data+MAC    MISSED     detected   detected    missed
tamper counter     n/a        detected   detected    missed
tamper swap page   n/a        detected*  detected*   missed
=================  =========  =========  ==========  ==========

(*) via the page-root directory, section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import IntegrityError
from ..core.machine import SecureMemorySystem
from ..mem.layout import block_address
from .tamper import MemoryTamperer


@dataclass
class ScenarioResult:
    """Outcome of one attack scenario: detected or silently missed."""

    scenario: str
    detected: bool
    detail: str = ""


def _read_expecting(machine: SecureMemorySystem, address: int, scenario: str) -> ScenarioResult:
    try:
        machine.read_block(block_address(address))
    except IntegrityError as err:
        return ScenarioResult(scenario, detected=True, detail=str(err))
    return ScenarioResult(scenario, detected=False)


def spoofing_attack(machine: SecureMemorySystem, address: int = 0) -> ScenarioResult:
    """Overwrite ciphertext in DRAM; the next load must fail verification."""
    machine.write_block(address, b"\x11" * 64)
    MemoryTamperer(machine).spoof(address)
    return _read_expecting(machine, address, "spoofing")


def splicing_attack(machine: SecureMemorySystem, address_a: int = 0, address_b: int = 4096) -> ScenarioResult:
    """Exchange two valid ciphertext blocks; loads of either must fail."""
    machine.write_block(address_a, b"\x22" * 64)
    machine.write_block(address_b, b"\x33" * 64)
    MemoryTamperer(machine).splice(address_a, address_b)
    result = _read_expecting(machine, address_a, "splicing")
    if result.detected:
        return result
    return _read_expecting(machine, address_b, "splicing")


def replay_attack(machine: SecureMemorySystem, address: int = 64) -> ScenarioResult:
    """Roll a block back to an older (value, MAC, counter-credential) set.

    This is the attack that separates Merkle-based schemes from MAC-only
    protection: the stale pair is internally consistent, so only freshness
    anchoring (the tree) can reject it.
    """
    tamperer = MemoryTamperer(machine)
    machine.write_block(address, b"OLD-" * 16)
    stale = tamperer.snapshot_with_metadata(address)
    machine.write_block(address, b"NEW!" * 16)
    tamperer.replay(stale)
    return _read_expecting(machine, address, "replay")


def counter_tamper_attack(machine: SecureMemorySystem, address: int = 128) -> ScenarioResult:
    """Corrupt a block's counter storage in DRAM.

    Under BMT, counters are the freshness root of the whole scheme; the
    bonsai tree must catch any modification when the counter block is
    (re)loaded on-chip.
    """
    machine.write_block(address, b"\x44" * 64)
    cb = machine.encryption.counter_block_address(address)
    if cb is None:
        return ScenarioResult("counter-tamper", detected=False, detail="scheme has no counters")
    tamperer = MemoryTamperer(machine)
    tamperer.spoof(cb)
    # Force the on-chip counter copy out so the poisoned block is refetched.
    machine.invalidate_page(address // 4096)
    drop = getattr(machine.encryption, "drop_cached_counters", None)
    if drop is not None:
        drop(address // 4096)
    try:
        machine.read_block(block_address(address))
    except IntegrityError as err:
        return ScenarioResult("counter-tamper", detected=True, detail=str(err))
    return ScenarioResult("counter-tamper", detected=False)


def run_all(machine: SecureMemorySystem) -> list[ScenarioResult]:
    """Run every scenario applicable to the machine's configuration."""
    results = [
        spoofing_attack(machine),
        splicing_attack(machine),
        replay_attack(machine),
    ]
    if machine.encryption.uses_counters:
        results.append(counter_tamper_attack(machine))
    return results
