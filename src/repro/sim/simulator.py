"""Trace-driven timing model of the secure processor's memory system.

Reproduces the performance methodology of the paper's section 6:

* timely but **non-precise** integrity verification — Merkle/MAC fetches
  consume bus bandwidth and L2 space but never stall retirement;
* counter-mode decryption is off the critical path **iff** the block's
  counter is found in the counter cache at miss time; otherwise the pad
  cannot be generated until the counter block arrives, exposing AES
  latency;
* Merkle-tree nodes are cached in the **shared L2** (the pollution effect
  of Figure 9); BMT caches only tree nodes — per-block data MACs are
  fetched but never cached (section 5.2);
* every off-chip transfer serializes over one memory bus whose occupancy
  gives Figure 10b's utilization.

The core is deliberately simple — an out-of-order core is abstracted to
an issue width plus a stall-overlap factor — because every effect the
paper reports is a *memory-system* effect.
"""

from __future__ import annotations

from ..core.config import MachineConfig
from .. import fastpath, obs
from ..core.machine import plan_layout
from ..mem.bus import MemoryBus
from ..mem.cache import COUNTER, DATA, MAC, MERKLE, SetAssociativeCache
from ..mem.layout import BLOCK_SIZE
from ..obs.adapters import SimHooks, register_simulator, sim_result_fields
from ..schemes import encryption_scheme, integrity_scheme
from ..obs.registry import MetricsRegistry
from .results import SimResult
from .trace import Trace

_OCCUPANCY_SAMPLE_PERIOD = 64  # events between L2 occupancy samples

# Version tag of the timing model, keyed into the evaluation's on-disk
# result cache (repro.evalx.parallel). Bump on any change that can alter
# a SimResult for an unchanged (trace, MachineConfig) pair — the cache
# also fingerprints the source of the timing-critical modules, so this
# tag mainly documents intentional model revisions.
MODEL_VERSION = "2"


class TimingSimulator:
    """Runs traces against one machine configuration.

    ``run()`` has three interchangeable execution engines: the compiled
    trace replay (:mod:`repro.fastpath.compiled` — a memoized lowering
    of the trace replayed per configuration; the default for cold-start
    runs), the batched per-event loop (:mod:`repro.fastpath.engine` —
    warm reuse, or ``REPRO_COMPILED=0``), and the instrumented reference
    loop in :meth:`_run_reference`, required whenever a
    :mod:`repro.obs` session is active or the sanitizer is armed. All
    three compute the identical arithmetic in the identical order, so
    results — including the committed figure-6 golden sweep — are
    byte-identical whichever runs.
    """

    __slots__ = (
        "config",
        "overlap",
        "layout",
        "enc",
        "uses_counter_cache",
        "_serial_decrypt",
        "_cb_span",
        "_ctr_base",
        "integ",
        "_walks_tree",
        "_tree_covers_data",
        "_uses_data_macs",
        "_walk_bases",
        "_arity",
        "_covered_start",
        "_mac_base",
        "_mac_bytes",
        "_cache_data_macs",
        "_deferred_updates",
        "_update_batch",
        "_update_coalesce",
        "_pending_walks",
        "tree_deferred",
        "tree_drains",
        "tree_coalesced",
        "l2",
        "counter_cache",
        "node_cache",
        "bus",
        "mem_latency",
        "l2_hit_latency",
        "aes_latency",
        "mac_latency",
        "issue_width",
        "precise",
        "_verify_on_path",
        "demand_accesses",
        "demand_misses",
        "exposed_cycles",
        "counter_accesses",
        "counter_misses",
        "registry",
        "engine_telemetry",
        "_hooks",
    )

    def __init__(self, config: MachineConfig, overlap: float = 0.7):
        self.config = config
        self.overlap = overlap  # fraction of raw miss latency exposed as stall
        layout, geometry = plan_layout(config)
        self.layout = layout

        # Encryption model parameters, from the scheme descriptor: whether
        # a counter cache exists, how many data bytes one counter block
        # covers, and whether decryption serializes after the fetch.
        enc_scheme = encryption_scheme(config.encryption)
        self.enc = config.encryption
        self.uses_counter_cache = enc_scheme.uses_counter_cache
        self._serial_decrypt = enc_scheme.serialized_decrypt
        if self.uses_counter_cache:
            self._cb_span = enc_scheme.counter_block_span
            self._ctr_base = layout.counter_base

        # Integrity model parameters, from the scheme descriptor: whether
        # metadata walks a tree, whether that tree covers data blocks, and
        # whether per-block data MACs travel on misses and writebacks.
        integ_scheme = integrity_scheme(config.integrity)
        self.integ = config.integrity
        self._walks_tree = integ_scheme.uses_tree
        self._tree_covers_data = integ_scheme.tree_covers_data
        self._uses_data_macs = integ_scheme.uses_data_macs
        self._walk_bases: list[int] = []
        self._arity = 1
        self._covered_start = 0
        if geometry is not None:
            self._walk_bases = list(geometry.level_bases)
            self._arity = geometry.arity
            self._covered_start = geometry.covered_start
        self._mac_base = layout.mac_base
        self._mac_bytes = config.mac_bytes
        self._cache_data_macs = config.caches_data_macs

        # Deferred tree maintenance, from the descriptor's update policy:
        # counter writebacks queue their tree walks; the queue drains once
        # it reaches the batch size (and at end of run), with overlapping
        # walks to the same counter block coalesced into one.
        policy = integ_scheme.update_policy
        self._deferred_updates = policy.deferred and self._walks_tree
        self._update_batch = policy.batch
        self._update_coalesce = policy.coalesce
        self._pending_walks: list[int] = []
        self.tree_deferred = 0
        self.tree_drains = 0
        self.tree_coalesced = 0

        # Hardware structures.
        l2cfg = config.l2
        l2_bytes = l2cfg.size_bytes
        tag_bytes = enc_scheme.l2_tag_overhead_bytes
        if tag_bytes:
            # Table 1's "VA storage in L2": the virtual-address scheme must
            # keep each line's virtual address alongside its physical tag
            # (virtual addresses are gone past the L1). Model the SRAM cost
            # as capacity lost to the per-line field.
            overhead = config.block_size / (config.block_size + tag_bytes)
            l2_bytes = int(l2_bytes * overhead) // (l2cfg.assoc * config.block_size)
            l2_bytes *= l2cfg.assoc * config.block_size
        self.l2 = SetAssociativeCache(l2_bytes, l2cfg.assoc, config.block_size, "L2")
        cccfg = config.counter_cache
        self.counter_cache = SetAssociativeCache(
            cccfg.size_bytes, cccfg.assoc, config.block_size, "counter"
        )
        self.node_cache = None
        if config.node_cache is not None:
            ncfg = config.node_cache
            self.node_cache = SetAssociativeCache(
                ncfg.size_bytes, ncfg.assoc, config.block_size, "nodes"
            )
        self.bus = MemoryBus(config.bus_cycles_per_block)
        self.mem_latency = config.memory_latency
        self.l2_hit_latency = l2cfg.hit_latency
        self.aes_latency = config.aes_latency
        self.mac_latency = config.mac_latency
        self.issue_width = config.issue_width
        self.precise = config.precise_verification
        self._verify_on_path = self.precise and integ_scheme.verifies

        # Demand-stream statistics (the paper's local L2 miss rate counts
        # only demand data accesses, not metadata lookups).
        self.demand_accesses = 0
        self.demand_misses = 0
        self.exposed_cycles = 0.0
        self.counter_accesses = 0
        self.counter_misses = 0

        # Observability. The registry always exists: its gauges are
        # pull-model bindings over the stats above, read only when a
        # snapshot is taken, so registration costs nothing per event.
        # ``engine_telemetry`` attributes each run() to the engine that
        # executed it (one attribute bump per run, never per event);
        # ``_hooks`` (live event tracing) is non-None only inside the
        # measured interval of a run under an active obs session.
        self.engine_telemetry = fastpath.EngineTelemetry()
        self.registry = MetricsRegistry()
        register_simulator(self.registry, self)
        self._hooks = None

    # -- metadata address helpers -------------------------------------------------

    def _counter_block_addr(self, addr: int) -> int:
        return self._ctr_base + (addr // self._cb_span) * BLOCK_SIZE

    def _mac_block_addr(self, addr: int) -> int:
        return self._mac_base + (addr // BLOCK_SIZE * self._mac_bytes // BLOCK_SIZE) * BLOCK_SIZE

    # -- integrity traffic ---------------------------------------------------------

    def _tree_walk(self, covered_addr: int, now: float, make_dirty: bool) -> int:
        """Fetch Merkle nodes up to the first one cached in L2.

        Under non-precise verification (the paper's default, section 6)
        this costs bandwidth and L2 occupancy only; the precise mode uses
        the returned count of fetched nodes to stall the pipeline.
        """
        index = (covered_addr - self._covered_start) // BLOCK_SIZE
        arity = self._arity
        l2 = self.node_cache if self.node_cache is not None else self.l2
        hooks = self._hooks
        fetched = 0
        for base in self._walk_bases:
            index //= arity
            node_addr = base + index * BLOCK_SIZE
            if l2.lookup(node_addr, write=make_dirty):
                return fetched
            self.bus.request(now, "merkle")
            if hooks is not None:
                hooks.emit("merkle_fetch", ts=now, level=fetched, addr=node_addr,
                           dirty=make_dirty)
            fetched += 1
            victim = l2.insert(node_addr, MERKLE, dirty=make_dirty)
            if victim is not None and victim.dirty:
                self._writeback(victim, now)
        # Fell off the top: the root register verifies/absorbs the update.
        return fetched

    def _data_mac_traffic(self, addr: int, now: float, write: bool) -> int:
        """Per-block MAC fetch/update for BMT and MAC-only schemes.

        Returns the number of off-chip fetches it issued (0 when the MAC
        was found cached) for the precise-verification mode.
        """
        mac_addr = self._mac_block_addr(addr)
        if self._cache_data_macs:
            if self.l2.lookup(mac_addr, write=write):
                return 0
            self.bus.request(now, "mac")
            victim = self.l2.insert(mac_addr, MAC, dirty=write)
            if victim is not None and victim.dirty:
                self._writeback(victim, now)
            return 1
        # Uncached MACs: every miss fetches, every writeback read-modify-
        # writes — but only the MAC itself crosses the bus, not a full line.
        self.bus.request(now, "mac_wb" if write else "mac",
                         fraction=self._mac_bytes / BLOCK_SIZE)
        return 0 if write else 1

    # -- counter path -----------------------------------------------------------------

    def _counter_access(self, addr: int, now: float, write: bool, data_ready: float) -> float:
        """Look up the block's counter; returns extra critical-path stall.

        A counter-cache hit lets pad generation overlap the data fetch
        (AES latency < memory latency: fully hidden). A miss must fetch —
        and, under a tree scheme, verify — the counter block first.
        """
        cb_addr = self._counter_block_addr(addr)
        self.counter_accesses += 1
        if self.counter_cache.lookup(cb_addr, write=write):
            return 0.0
        self.counter_misses += 1
        if self._hooks is not None:
            self._hooks.emit("counter_miss", ts=now, addr=cb_addr, write=write)
        start, _ = self.bus.request(now, "counter")
        counter_ready = start + self.mem_latency
        victim = self.counter_cache.insert(cb_addr, COUNTER, dirty=write)
        if victim is not None and victim.dirty:
            self._writeback_counter_block(victim.block * BLOCK_SIZE, now)
        if self._walks_tree:
            self._tree_walk(cb_addr, now, make_dirty=False)
        if write:
            return 0.0  # writebacks are off the critical path
        pad_ready = counter_ready + self.aes_latency
        return max(0.0, pad_ready - data_ready)

    def _writeback_counter_block(self, cb_addr: int, now: float) -> None:
        self.bus.request(now, "counter_wb")
        if not self._walks_tree:
            return
        if self._deferred_updates:
            self._defer_walk(cb_addr, now)
        else:
            self._tree_walk(cb_addr, now, make_dirty=True)

    def _defer_walk(self, cb_addr: int, now: float) -> None:
        """Queue a dirty-path walk instead of performing it (bmt_lazy)."""
        self._pending_walks.append(cb_addr)
        self.tree_deferred += 1
        if len(self._pending_walks) >= self._update_batch:
            self._drain_pending_walks(now)

    def _drain_pending_walks(self, now: float) -> None:
        """Drain the pending-update queue onto the bus.

        Writeback walks are off the critical path, so draining costs
        bandwidth (and node-cache churn), never stall — the deferral
        moves and merges that traffic rather than hiding it. Coalescing
        collapses queued walks that share a counter block into one.
        """
        pending = self._pending_walks
        if not pending:
            return
        self._pending_walks = []
        self.tree_drains += 1
        if self._update_coalesce:
            seen = set()
            for cb_addr in pending:
                if cb_addr in seen:
                    self.tree_coalesced += 1
                    continue
                seen.add(cb_addr)
                self._tree_walk(cb_addr, now, make_dirty=True)
        else:
            for cb_addr in pending:
                self._tree_walk(cb_addr, now, make_dirty=True)

    # -- writebacks ---------------------------------------------------------------------

    def _writeback(self, victim, now: float) -> None:
        addr = victim.block * BLOCK_SIZE
        if victim.line_class == MERKLE or victim.line_class == MAC:
            self.bus.request(now, "merkle_wb")
            return
        # Dirty data leaving the chip: encrypt (bump counter) + re-MAC.
        self.bus.request(now, "data_wb")
        if self.uses_counter_cache:
            self._counter_access(addr, now, write=True, data_ready=now)
        if self._tree_covers_data:
            self._tree_walk(addr, now, make_dirty=True)
        elif self._uses_data_macs:
            self._data_mac_traffic(addr, now, write=True)

    # -- the demand miss path --------------------------------------------------------------

    def _miss(self, addr: int, is_write: bool, now: float) -> float:
        """Handle an L2 demand miss; returns the raw critical-path latency."""
        start, _ = self.bus.request(now, "data")
        data_ready = start + self.mem_latency
        extra = 0.0
        if self.uses_counter_cache:
            extra = self._counter_access(addr, now, write=False, data_ready=data_ready)
            self.exposed_cycles += extra
        elif self._serial_decrypt:
            extra = self.aes_latency  # decryption serialized after the fetch
            self.exposed_cycles += extra
        if extra and self._hooks is not None:
            self._hooks.emit("decrypt_exposed", ts=now, addr=addr, dur=extra)
        integrity_fetches = 0
        if self._tree_covers_data:
            integrity_fetches = self._tree_walk(addr, now, make_dirty=False)
        elif self._uses_data_macs:
            integrity_fetches = self._data_mac_traffic(addr, now, write=False)
        if self._verify_on_path:
            # Precise verification: the load cannot retire until the MAC
            # chain checks out — the hash latency always shows, plus a
            # serialized memory round-trip when metadata had to be fetched.
            extra += self.mac_latency
            if integrity_fetches:
                extra += self.mem_latency
        victim = self.l2.insert(addr, DATA, dirty=is_write)
        if victim is not None and victim.dirty:
            self._writeback(victim, now)
        return (data_ready - now) + extra

    # -- main loop ------------------------------------------------------------------------------

    def _reset_stats(self) -> None:
        """Zero statistics while keeping all warm state (caches, bus clock).

        Also rebases the metrics registry: push-model metrics (the miss
        latency histogram) zero out, and the bound gauges track the fresh
        stats objects automatically because they close over the owning
        caches/bus, not the stats instances being replaced.
        """
        self.l2.reset_stats()
        self.counter_cache.reset_stats()
        if self.node_cache is not None:
            self.node_cache.reset_stats()
        self.bus.reset_stats()
        self.demand_accesses = 0
        self.demand_misses = 0
        self.exposed_cycles = 0.0
        self.counter_accesses = 0
        self.counter_misses = 0
        # Counters zero; the pending-walk queue survives — it is model
        # *state* (walks still owed to the bus), not a statistic.
        self.tree_deferred = 0
        self.tree_drains = 0
        self.tree_coalesced = 0
        self.registry.reset()

    def reset_cold(self) -> None:
        """Return the simulator to its just-constructed (cold) state.

        The sanctioned warm-reuse entry point (:mod:`repro.service`
        keeps a pool of constructed simulators and calls this between
        tenants): caches empty with no writebacks charged, bus clock and
        statistics at zero, the integrity scheme's timing state
        discarded through its :meth:`~repro.schemes.base.IntegrityScheme.
        reset_timing_state` hook. After this call ``run()`` behaves
        byte-identically to a fresh ``TimingSimulator(config)`` — in
        particular the compiled trace replay re-engages (it bows out of
        warm caches), and any compiled lowerings memoized on Trace
        objects are still valid because they never depend on machine
        state. Warm reuse *without* this call is intentionally
        unsupported for result-serving: warm caches change miss counts
        (see tests/sim/test_warm_reuse.py).

        Engine telemetry is cumulative across resets — which engine ran
        is execution-mode metadata, not model state, and pool operators
        want the totals.
        """
        scheme = integrity_scheme(self.integ)
        if not scheme.warm_reuse_sound:
            raise RuntimeError(
                f"integrity scheme {self.integ!r} declares warm reuse unsound; "
                "build a fresh TimingSimulator instead of resetting this one"
            )
        self.l2.clear()
        self.counter_cache.clear()
        if self.node_cache is not None:
            self.node_cache.clear()
        self.bus.reset()
        scheme.reset_timing_state(self)
        self._hooks = None
        self._reset_stats()

    def run(self, trace: Trace, label: str | None = None, warmup: float = 0.25,
            collect_metrics: bool = False) -> SimResult:
        """Simulate the trace; the first ``warmup`` fraction of events warms
        the caches (the paper fast-forwards 5B instructions) and is excluded
        from every reported statistic, including cycle counts.

        A simulator can ``run()`` several traces back to back to model warm
        reuse (e.g. context switches): caches stay warm across runs, but
        the clock restarts at 0.0 — so bus time is rebased to match, lest
        every early transfer queue behind the previous trace's phantom
        traffic, and all statistics restart from zero.

        ``collect_metrics=True`` attaches the end-of-run registry snapshot
        to ``SimResult.metrics``. When a :mod:`repro.obs` session is
        active, live hooks (event tracing, interval samples, phase
        attribution) are armed at the warmup boundary — the tracer clock
        is rebased there, so warmup activity never appears in the measured
        timeline. With no session active and :mod:`repro.fastpath`
        enabled (the default), the fast engines run instead of the
        instrumented loop — the compiled trace replay when this run
        starts cold, the batched per-event loop otherwise; every engine
        produces bit-identical results.
        """
        self.bus.rebase(0.0)
        self._hooks = None
        self._reset_stats()
        session = obs.session()
        if session is None and fastpath.enabled():
            now, measured_from, measured_instructions = fastpath.execute(
                self, trace, warmup, _OCCUPANCY_SAMPLE_PERIOD
            )
        else:
            self.engine_telemetry.record(
                fastpath.ENGINE_REFERENCE,
                "obs_session" if session is not None else "fastpath_gate_off",
            )
            now, measured_from, measured_instructions = self._run_reference(
                trace, warmup, session
            )

        # End-of-run drain: a deferred tree owes the bus its queued walks
        # before the run's traffic accounting closes. Shared by every
        # engine — all three fall through to the reference helpers for
        # deferred schemes, so results stay byte-identical.
        if self._deferred_updates:
            self._drain_pending_walks(now)

        measured_cycles = now - measured_from
        snapshot = self.registry.snapshot()
        # SimResult.metrics is the *model* metric snapshot: identical for
        # the same (trace, config) no matter which engine executed the
        # run or how a sweep distributed cells over workers. The engine.*
        # telemetry gauges are execution-mode metadata (which engine ran,
        # memo hit rates) and so are excluded here; fleet capture
        # (repro.obs.fleet.capture_cell) reads the full snapshot instead.
        metrics = {}
        if collect_metrics:
            metrics = {name: value for name, value in snapshot.items()
                       if not name.startswith("engine.")}
        return SimResult(
            name=trace.name,
            config_label=label or f"{self.config.encryption}+{self.config.integrity}",
            cycles=measured_cycles,
            instructions=measured_instructions,
            metrics=metrics,
            **sim_result_fields(snapshot, measured_cycles),
        )

    def _run_reference(self, trace: Trace, warmup: float, session) -> tuple[float, float, int]:
        """The instrumented per-event loop: the pre-fastpath implementation.

        Required whenever a :mod:`repro.obs` session is active (live
        hooks need per-event callback sites), selected by
        ``REPRO_FASTPATH=0`` otherwise, and kept as the reference side of
        ``benchmarks/bench_throughput.py``'s speedup measurement.
        """
        gaps = trace.gaps.tolist()
        ops = trace.ops.tolist()
        addresses = ((trace.addresses // BLOCK_SIZE) * BLOCK_SIZE).tolist()

        l2 = self.l2
        issue = self.issue_width
        hit_latency = self.l2_hit_latency
        overlap = self.overlap
        now = 0.0
        pending_hooks = SimHooks(self, session) if session is not None else None
        hooks = None
        sample_countdown = _OCCUPANCY_SAMPLE_PERIOD
        warm_events = int(len(addresses) * warmup)
        measured_from = 0.0
        measured_instructions = 0
        event_index = 0

        for gap, op, addr in zip(gaps, ops, addresses):
            if event_index == warm_events:
                self._reset_stats()
                measured_from = now
                if pending_hooks is not None:
                    hooks = self._hooks = pending_hooks
                    hooks.begin(now)
            event_index += 1
            now += gap / issue
            self.demand_accesses += 1
            if l2.lookup(addr, write=op == 1):
                now += hit_latency
                if hooks is not None:
                    hooks.account("l2_hit", hit_latency)
            else:
                self.demand_misses += 1
                raw = self._miss(addr, op == 1, now)
                now += hit_latency + raw * overlap
                if hooks is not None:
                    hooks.miss_latency.observe(raw)
                    hooks.emit("l2_miss", ts=now, addr=addr, write=op == 1,
                               latency=raw)
                    hooks.account("l2_miss", hit_latency + raw * overlap)
            if event_index > warm_events:
                measured_instructions += gap + 1
                if hooks is not None:
                    hooks.event_tick(now)
            sample_countdown -= 1
            if sample_countdown == 0:
                l2.tick_occupancy()
                sample_countdown = _OCCUPANCY_SAMPLE_PERIOD

        if addresses and warm_events >= len(addresses):
            # Degenerate warmup covering the whole trace: nothing measured.
            self._reset_stats()
            measured_from = now
            measured_instructions = 0

        if hooks is not None:
            hooks.finish(now)
            self._hooks = None

        return now, measured_from, measured_instructions


def simulate(trace: Trace, config: MachineConfig, overlap: float = 0.7, label: str | None = None) -> SimResult:
    """One-shot convenience: fresh simulator, one trace."""
    return TimingSimulator(config, overlap=overlap).run(trace, label=label)
