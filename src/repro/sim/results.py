"""Result containers for timing simulations."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields


@dataclass
class SimResult:
    """Everything a figure needs from one (workload, configuration) run."""

    name: str
    config_label: str
    cycles: float
    instructions: int

    # L2 (demand data accesses only, i.e. the paper's local miss rate).
    l2_accesses: int = 0
    l2_misses: int = 0
    l2_data_fraction: float = 1.0  # Figure 9: avg fraction of L2 holding data
    l2_merkle_fraction: float = 0.0

    # Counter cache.
    counter_accesses: int = 0
    counter_misses: int = 0

    # Bus.
    bus_utilization: float = 0.0
    bus_transfers_by_kind: dict = field(default_factory=dict)

    # Crypto exposure.
    exposed_decrypt_cycles: float = 0.0

    # Optional end-of-run metrics-registry snapshot (repro.obs): flat
    # ``{dotted.name: value}``, values are numbers, str->number dicts, or
    # histogram dicts. Empty unless the run collected metrics.
    metrics: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def counter_miss_rate(self) -> float:
        return self.counter_misses / self.counter_accesses if self.counter_accesses else 0.0

    def overhead_vs(self, base: "SimResult") -> float:
        """Normalized execution-time overhead: cycles/base - 1."""
        if base.cycles <= 0:
            return 0.0
        return self.cycles / base.cycles - 1.0

    # -- JSON round-trip (disk result cache + process-pool IPC) -------------

    def to_dict(self) -> dict:
        """Plain-data form; ``from_dict(to_dict(r)) == r`` exactly.

        Every field is an int, float, str, or JSON-shaped dict, so the
        round-trip is lossless (Python serializes floats via repr). The
        ``metrics`` key is omitted when empty, keeping serialized results
        from metric-free runs byte-identical to earlier versions.
        """
        data = asdict(self)
        if not data["metrics"]:
            del data["metrics"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimResult fields: {sorted(unknown)}")
        return cls(**data)
