"""Record functional workloads as timing traces.

Bridges the library's two worlds: run any workload on the functional
:class:`~repro.core.machine.SecureMemorySystem` (directly or through the
OS kernel), capture the stream of data-region block accesses it makes,
and replay that stream on the :class:`~repro.sim.TimingSimulator` under
any protection configuration.

Only *data-region* accesses are recorded — metadata traffic (counters,
MACs, tree nodes) is the timing model's job to regenerate for whichever
scheme it simulates; recording it would double-count and would bake one
scheme's metadata into another scheme's run.
"""

from __future__ import annotations

import numpy as np

from ..core.machine import SecureMemorySystem
from .trace import OP_READ, OP_WRITE, Trace


class AccessRecorder:
    """Context manager capturing a machine's data-block access stream.

    >>> with AccessRecorder(machine) as recorder:
    ...     kernel.write(pid, 0x10000, b"...")
    >>> trace = recorder.to_trace("my-workload")
    """

    def __init__(self, machine: SecureMemorySystem, mean_gap: int = 10):
        self.machine = machine
        self.mean_gap = mean_gap
        self._log: list | None = None

    def __enter__(self) -> "AccessRecorder":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        if self.machine.memory.access_log is not None:
            raise RuntimeError("another recorder is already attached to this machine")
        self._log = []
        self.machine.memory.access_log = self._log

    def stop(self) -> None:
        if self.machine.memory.access_log is self._log:
            self.machine.memory.access_log = None

    @property
    def raw_events(self) -> list:
        """All recorded (op, address) pairs, including metadata accesses."""
        if self._log is None:
            raise RuntimeError("recorder was never started")
        return list(self._log)

    def to_trace(self, name: str = "recorded") -> Trace:
        """The data-region access stream as a simulator-ready trace."""
        data_limit = self.machine.layout.data_bytes
        ops = []
        addresses = []
        for op, address in self.raw_events:
            if address >= data_limit:
                continue  # metadata region: the timing model regenerates it
            ops.append(OP_WRITE if op == "w" else OP_READ)
            addresses.append(address)
        count = len(ops)
        return Trace(
            gaps=np.full(count, self.mean_gap, dtype=np.uint32),
            ops=np.asarray(ops, dtype=np.uint8),
            addresses=np.asarray(addresses, dtype=np.uint64),
            name=name,
        )
