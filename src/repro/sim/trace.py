"""Memory-access traces for the timing simulator.

A trace is the stream of *L2 accesses* (L1 misses) of a program: for each
event, the number of instructions executed since the previous event, the
operation (read/write), and the physical block address. Driving the model
with L1-filtered streams keeps a pure-Python simulator fast while leaving
every effect the paper measures (L2 behaviour, bus traffic, metadata
caching) fully modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem.layout import BLOCK_SIZE

OP_READ = 0
OP_WRITE = 1


@dataclass
class Trace:
    """Column-oriented access trace."""

    gaps: np.ndarray  # instructions since previous event (uint32)
    ops: np.ndarray  # OP_READ / OP_WRITE (uint8)
    addresses: np.ndarray  # byte addresses (uint64), block-aligned
    name: str = "trace"

    def __post_init__(self):
        n = len(self.addresses)
        if len(self.gaps) != n or len(self.ops) != n:
            raise ValueError("trace columns must have equal length")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def instructions(self) -> int:
        return int(self.gaps.sum()) + len(self)

    @property
    def write_fraction(self) -> float:
        return float(self.ops.mean()) if len(self) else 0.0

    @property
    def footprint_bytes(self) -> int:
        if not len(self):
            return 0
        unique_blocks = np.unique(self.addresses // BLOCK_SIZE)
        return int(len(unique_blocks)) * BLOCK_SIZE

    def aligned(self) -> "Trace":
        """Return a copy with block-aligned addresses."""
        return Trace(
            gaps=self.gaps,
            ops=self.ops,
            addresses=(self.addresses // BLOCK_SIZE) * BLOCK_SIZE,
            name=self.name,
        )

    @classmethod
    def from_lists(cls, events: list[tuple[int, int, int]], name: str = "trace") -> "Trace":
        """Build from [(gap, op, address), ...] tuples (tests, examples)."""
        if events:
            gaps, ops, addresses = zip(*events)
        else:
            gaps, ops, addresses = (), (), ()
        return cls(
            gaps=np.asarray(gaps, dtype=np.uint32),
            ops=np.asarray(ops, dtype=np.uint8),
            addresses=np.asarray(addresses, dtype=np.uint64),
            name=name,
        )

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            gaps=np.concatenate([self.gaps, other.gaps]),
            ops=np.concatenate([self.ops, other.ops]),
            addresses=np.concatenate([self.addresses, other.addresses]),
            name=f"{self.name}+{other.name}",
        )
