"""Memory-access traces for the timing simulator.

A trace is the stream of *L2 accesses* (L1 misses) of a program: for each
event, the number of instructions executed since the previous event, the
operation (read/write), and the physical block address. Driving the model
with L1-filtered streams keeps a pure-Python simulator fast while leaving
every effect the paper measures (L2 behaviour, bus traffic, metadata
caching) fully modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem.layout import BLOCK_SIZE

OP_READ = 0
OP_WRITE = 1


class DecodedTrace:
    """A trace pre-decoded for the :mod:`repro.fastpath` timing loop.

    Plain Python lists (gaps, ops, block-aligned addresses): iterating
    numpy arrays yields a fresh scalar object per element, so the hot
    loop runs over native ints instead. Addresses are aligned with the
    exact expression the reference loop uses, keeping results
    byte-identical.
    """

    __slots__ = ("gaps", "ops", "addresses")

    def __init__(self, gaps: list, ops: list, addresses: list):
        self.gaps = gaps
        self.ops = ops
        self.addresses = addresses

    def __len__(self) -> int:
        return len(self.addresses)


@dataclass
class Trace:
    """Column-oriented access trace."""

    gaps: np.ndarray  # instructions since previous event (uint32)
    ops: np.ndarray  # OP_READ / OP_WRITE (uint8)
    addresses: np.ndarray  # byte addresses (uint64), block-aligned
    name: str = "trace"

    def __post_init__(self):
        n = len(self.addresses)
        if len(self.gaps) != n or len(self.ops) != n:
            raise ValueError("trace columns must have equal length")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def instructions(self) -> int:
        return int(self.gaps.sum()) + len(self)

    @property
    def write_fraction(self) -> float:
        return float(self.ops.mean()) if len(self) else 0.0

    @property
    def footprint_bytes(self) -> int:
        if not len(self):
            return 0
        unique_blocks = np.unique(self.addresses // BLOCK_SIZE)
        return int(len(unique_blocks)) * BLOCK_SIZE

    def digest(self) -> str:
        """Content digest of the trace (hex), for result-cache keying.

        Covers the three event columns (as little-endian fixed-width
        bytes, so the digest is platform-independent) and the name; two
        traces with the same digest produce identical simulations.
        """
        import hashlib

        # Cache keying, not an integrity guarantee — unkeyed is fine here.
        h = hashlib.sha256()  # repro: allow(SEC002)
        h.update(self.name.encode())
        h.update(len(self).to_bytes(8, "little"))
        h.update(np.ascontiguousarray(self.gaps, dtype="<u4").tobytes())
        h.update(np.ascontiguousarray(self.ops, dtype="<u1").tobytes())
        h.update(np.ascontiguousarray(self.addresses, dtype="<u8").tobytes())
        return h.hexdigest()

    def decoded(self) -> DecodedTrace:
        """The pre-decoded form of this trace, computed once and memoized.

        The numpy→list conversion was previously redone on every
        ``TimingSimulator.run``; a trace is immutable in practice, so the
        decoded columns are cached on the instance. The memo is dropped
        on pickling (:meth:`__getstate__`) — process-pool workers rebuild
        it locally rather than paying to ship three redundant lists.
        """
        cached = self.__dict__.get("_decoded")
        if cached is None:
            cached = DecodedTrace(
                gaps=self.gaps.tolist(),
                ops=self.ops.tolist(),
                addresses=((self.addresses // BLOCK_SIZE) * BLOCK_SIZE).tolist(),
            )
            self.__dict__["_decoded"] = cached
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_decoded", None)
        state.pop("_compiled", None)  # lowerings rebuild cheaply in-process
        return state

    def aligned(self) -> "Trace":
        """Return a copy with block-aligned addresses."""
        return Trace(
            gaps=self.gaps,
            ops=self.ops,
            addresses=(self.addresses // BLOCK_SIZE) * BLOCK_SIZE,
            name=self.name,
        )

    @classmethod
    def from_lists(cls, events: list[tuple[int, int, int]], name: str = "trace") -> "Trace":
        """Build from [(gap, op, address), ...] tuples (tests, examples)."""
        if events:
            gaps, ops, addresses = zip(*events)
        else:
            gaps, ops, addresses = (), (), ()
        return cls(
            gaps=np.asarray(gaps, dtype=np.uint32),
            ops=np.asarray(ops, dtype=np.uint8),
            addresses=np.asarray(addresses, dtype=np.uint64),
            name=name,
        )

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            gaps=np.concatenate([self.gaps, other.gaps]),
            ops=np.concatenate([self.ops, other.ops]),
            addresses=np.concatenate([self.addresses, other.addresses]),
            name=f"{self.name}+{other.name}",
        )
