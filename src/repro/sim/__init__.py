"""Trace-driven timing simulation of the secure memory system."""

from .l1filter import filter_through_l1, l1_hit_rate
from .recorder import AccessRecorder
from .results import SimResult
from .simulator import TimingSimulator, simulate
from .trace import OP_READ, OP_WRITE, Trace
from .traceio import dinero_from_text, dump_dinero, load_dinero, load_trace, save_trace

__all__ = [
    "TimingSimulator",
    "simulate",
    "SimResult",
    "Trace",
    "OP_READ",
    "OP_WRITE",
    "save_trace",
    "load_trace",
    "load_dinero",
    "dump_dinero",
    "dinero_from_text",
    "filter_through_l1",
    "l1_hit_rate",
    "AccessRecorder",
]
