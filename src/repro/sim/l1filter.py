"""L1 front-end: turn raw access traces into the L2-access traces the
timing simulator consumes.

The simulator models from the L2 down (DESIGN.md section 5); generated
workloads are already L1-filtered by construction. Real traces (e.g.
Dinero captures, see :mod:`repro.sim.traceio`) are raw loads/stores, so
this utility runs them through the paper's L1D (32KB, 2-way, 64B blocks,
write-back write-allocate) and emits:

* one read event per L1 miss (the fill request seen by the L2), carrying
  the instructions accumulated since the previous L2 access, and
* one write event per dirty L1 eviction (the writeback into the L2).
"""

from __future__ import annotations

import numpy as np

from ..core.config import CacheConfig, MachineConfig
from ..mem.cache import DATA, SetAssociativeCache
from .trace import OP_READ, OP_WRITE, Trace


def filter_through_l1(
    trace: Trace,
    l1: CacheConfig | None = None,
    block_size: int = 64,
) -> Trace:
    """Simulate the L1D over ``trace`` and return the L2-access stream."""
    if l1 is None:
        l1 = MachineConfig().l1d
    cache = SetAssociativeCache(l1.size_bytes, l1.assoc, block_size, "L1D")

    out_gaps: list[int] = []
    out_ops: list[int] = []
    out_addresses: list[int] = []
    pending_gap = 0

    gaps = trace.gaps.tolist()
    ops = trace.ops.tolist()
    addresses = ((trace.addresses // block_size) * block_size).tolist()

    for gap, op, address in zip(gaps, ops, addresses):
        pending_gap += gap
        if cache.lookup(address, write=op == OP_WRITE):
            pending_gap += 1  # the memory instruction itself retired in L1
            continue
        # L1 miss: the fill is the L2 access.
        out_gaps.append(pending_gap)
        out_ops.append(OP_READ)
        out_addresses.append(address)
        pending_gap = 0
        victim = cache.insert(address, DATA, dirty=op == OP_WRITE)
        if victim is not None and victim.dirty:
            # Dirty L1 eviction: a store into the L2.
            out_gaps.append(0)
            out_ops.append(OP_WRITE)
            out_addresses.append(victim.block * block_size)

    filtered = Trace(
        gaps=np.asarray(out_gaps, dtype=np.uint32),
        ops=np.asarray(out_ops, dtype=np.uint8),
        addresses=np.asarray(out_addresses, dtype=np.uint64),
        name=f"{trace.name}@L2",
    )
    return filtered


def l1_hit_rate(trace: Trace, l1: CacheConfig | None = None, block_size: int = 64) -> float:
    """Convenience: the L1D hit rate of a raw trace."""
    if l1 is None:
        l1 = MachineConfig().l1d
    cache = SetAssociativeCache(l1.size_bytes, l1.assoc, block_size, "L1D")
    hits = 0
    addresses = ((trace.addresses // block_size) * block_size).tolist()
    ops = trace.ops.tolist()
    for op, address in zip(ops, addresses):
        if cache.lookup(address, write=op == OP_WRITE):
            hits += 1
        else:
            cache.insert(address, DATA, dirty=op == OP_WRITE)
    return hits / len(addresses) if addresses else 0.0
