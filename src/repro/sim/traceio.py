"""Trace persistence and interchange.

Two formats:

* the library's own ``.npz`` (compressed numpy columns + metadata) for
  fast round-trips of generated traces, and
* the classic **Dinero** text format (``<op> <hex-address>`` per line,
  op 0 = read, 1 = write, 2 = ifetch) so real traces captured by other
  tools (Pin, Valgrind's lackey, dineroIV workloads) can drive the
  timing simulator. Dinero traces carry no timing, so instruction gaps
  are synthesized with a fixed ``mean_gap``.
"""

from __future__ import annotations

import io
import os

import numpy as np

from .trace import OP_READ, OP_WRITE, Trace

_NPZ_VERSION = 1


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace as compressed ``.npz``."""
    np.savez_compressed(
        path,
        version=np.asarray([_NPZ_VERSION]),
        name=np.asarray([trace.name]),
        gaps=trace.gaps,
        ops=trace.ops,
        addresses=trace.addresses,
    )


def load_trace(path: str) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _NPZ_VERSION:
            raise ValueError(f"unsupported trace version {version}")
        return Trace(
            gaps=data["gaps"].astype(np.uint32),
            ops=data["ops"].astype(np.uint8),
            addresses=data["addresses"].astype(np.uint64),
            name=str(data["name"][0]),
        )


def load_dinero(source, mean_gap: int = 10, name: str | None = None) -> Trace:
    """Parse a Dinero-format text trace.

    ``source`` is a path or a file-like object. Lines are
    ``<label> <hex address>`` where label 0 = data read, 1 = data write,
    2 = instruction fetch (treated as a read). Blank lines and lines
    starting with ``#`` are ignored.
    """
    close = False
    if isinstance(source, (str, os.PathLike)):
        handle = open(source, "r")
        close = True
        if name is None:
            name = os.path.basename(str(source))
    else:
        handle = source
        if name is None:
            name = "dinero"
    ops = []
    addresses = []
    try:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"line {line_number}: expected '<op> <address>', got {line!r}")
            label, address_text = parts[0], parts[1]
            if label not in ("0", "1", "2"):
                raise ValueError(f"line {line_number}: unknown access label {label!r}")
            ops.append(OP_WRITE if label == "1" else OP_READ)
            addresses.append(int(address_text, 16))
    finally:
        if close:
            handle.close()
    count = len(ops)
    return Trace(
        gaps=np.full(count, mean_gap, dtype=np.uint32),
        ops=np.asarray(ops, dtype=np.uint8),
        addresses=np.asarray(addresses, dtype=np.uint64),
        name=name,
    )


def dump_dinero(trace: Trace, path_or_handle) -> None:
    """Write a trace in Dinero text format (gaps are not representable)."""
    close = False
    if isinstance(path_or_handle, (str, os.PathLike)):
        handle = open(path_or_handle, "w")
        close = True
    else:
        handle = path_or_handle
    try:
        for op, address in zip(trace.ops.tolist(), trace.addresses.tolist()):
            handle.write(f"{int(op)} {int(address):x}\n")
    finally:
        if close:
            handle.close()


def dinero_from_text(text: str, mean_gap: int = 10, name: str = "dinero") -> Trace:
    """Convenience: parse Dinero format from an in-memory string."""
    return load_dinero(io.StringIO(text), mean_gap=mean_gap, name=name)
