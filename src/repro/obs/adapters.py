"""Registry adapters: bind existing stats objects into a MetricsRegistry.

The hot paths keep mutating their own cheap dataclass counters
(:class:`~repro.mem.cache.CacheStats`, :class:`~repro.mem.bus.BusStats`,
:class:`~repro.osmodel.kernel.KernelStats`, ...) exactly as before —
these adapters register *pull-model* gauges over them, so registration
costs nothing per simulated event and a snapshot reads the live values.
This is the one sanctioned route from a ``*Stats`` object into reported
numbers; the OBS001 lint rule flags direct stats mutation anywhere else.

``sim_result_fields`` derives every statistics field of a
:class:`~repro.sim.results.SimResult` from a registry snapshot — the
simulator builds its results *through* the registry, so the aggregate a
figure plots and the interval samples a timeline plots can never
disagree.
"""

from __future__ import annotations

from ..mem.cache import CODE, COUNTER, DATA, MAC, MERKLE

# Fixed bucket edges (cycles) for the demand-miss latency histogram:
# deterministic across runs and machines by construction.
MISS_LATENCY_EDGES = (50, 100, 150, 200, 300, 400, 600, 800, 1200, 1600)

_LINE_CLASSES = (DATA, CODE, COUNTER, MERKLE, MAC)


def register_cache(registry, cache, prefix: str):
    """Bind a :class:`SetAssociativeCache`'s stats and occupancy."""
    scope = registry.scoped(prefix)
    scope.bind("hits", lambda: cache.stats.hits)
    scope.bind("misses", lambda: cache.stats.misses)
    scope.bind("writebacks", lambda: cache.stats.writebacks)
    scope.bind("miss_rate", lambda: cache.stats.miss_rate)
    for cls in _LINE_CLASSES:
        scope.bind(f"occupancy.{cls}",
                   lambda c=cls: cache.stats.occupancy_fraction(c))
        scope.bind(f"lines.{cls}", lambda c=cls: cache.lines_of_class(c))
    scope.bind("lines.free", lambda: cache.num_lines - cache.occupied_lines)
    return scope


def register_bus(registry, bus, prefix: str = "bus"):
    """Bind a :class:`MemoryBus`'s transfer and occupancy statistics."""
    scope = registry.scoped(prefix)
    scope.bind("transfers", lambda: bus.stats.transfers)
    scope.bind("busy_cycles", lambda: bus.stats.busy_cycles)
    scope.bind("queue_cycles", lambda: bus.stats.queue_cycles)
    scope.bind("transfers_by_kind", lambda: bus.stats.transfers_by_kind)
    return scope


def register_simulator(registry, sim):
    """Wire a :class:`TimingSimulator`'s structures into its registry.

    Gauges close over the *owning objects* (cache, bus, simulator), not
    their stats instances — ``reset_stats`` swaps the stats objects out
    and the bindings must follow.
    """
    scope = registry.scoped("sim")
    scope.bind("demand_accesses", lambda: sim.demand_accesses)
    scope.bind("demand_misses", lambda: sim.demand_misses)
    scope.bind("exposed_decrypt_cycles", lambda: sim.exposed_cycles)
    scope.bind("counter_accesses", lambda: sim.counter_accesses)
    scope.bind("counter_misses", lambda: sim.counter_misses)
    if sim._deferred_updates:
        # Deferred-maintenance gauges only when the scheme's policy
        # actually defers — eager schemes keep their snapshot shape.
        scope.bind("tree_deferred_walks", lambda: sim.tree_deferred)
        scope.bind("tree_drains", lambda: sim.tree_drains)
        scope.bind("tree_coalesced_walks", lambda: sim.tree_coalesced)
        scope.bind("tree_pending_walks", lambda: len(sim._pending_walks))
    registry.histogram("sim.miss_latency", MISS_LATENCY_EDGES)
    register_cache(registry, sim.l2, "l2")
    register_cache(registry, sim.counter_cache, "counter_cache")
    if sim.node_cache is not None:
        register_cache(registry, sim.node_cache, "node_cache")
    register_bus(registry, sim.bus)
    register_engine_telemetry(registry, sim)
    return registry


def register_engine_telemetry(registry, sim, prefix: str = "engine"):
    """Bind a simulator's engine-selection telemetry.

    The engine code (:mod:`repro.fastpath`, :meth:`TimingSimulator.run`)
    mutates the :class:`~repro.fastpath.EngineTelemetry` it owns — one
    attribute bump per run — and this adapter is the one sanctioned
    route from those counts into the registry (and thus into fleet
    snapshots, the Prometheus exposition, and progress records); the
    OBS002 lint rule flags registry writes from engine code directly.
    Gauges resolve the telemetry through the simulator on every read,
    matching the owning-object discipline above.
    """
    scope = registry.scoped(prefix)
    scope.bind("runs.compiled", lambda: sim.engine_telemetry.compiled)
    scope.bind("runs.per_event", lambda: sim.engine_telemetry.per_event)
    scope.bind("runs.reference", lambda: sim.engine_telemetry.reference)
    scope.bind("fallback_reasons", lambda: dict(sim.engine_telemetry.fallbacks))
    memo = scope.scoped("lowering_memo")
    memo.bind("hits", lambda: sim.engine_telemetry.lowering_hits)
    memo.bind("misses", lambda: sim.engine_telemetry.lowering_misses)
    memo.bind("hit_rate", lambda: sim.engine_telemetry.lowering_hit_rate)
    return scope


def register_kernel(registry, kernel, prefix: str = "kernel"):
    """Bind an :class:`~repro.osmodel.kernel.Kernel`'s paging stats."""
    scope = registry.scoped(prefix)
    for name in ("page_faults", "demand_zero_fills", "swap_ins", "swap_outs",
                 "cow_breaks", "forks", "swap_reencrypted_blocks"):
        scope.bind(name, lambda n=name: getattr(kernel.stats, n))
    return scope


def register_pad_cache(registry, owner, prefix: str = "pad_cache"):
    """Bind the keystream pad memo's hit/miss gauges.

    ``owner`` is anything exposing a ``pad_cache`` attribute — an
    :class:`~repro.core.encryption.EncryptionEngine` or a
    :class:`~repro.crypto.ctr_mode.CounterModeCipher`. Gauges resolve
    the cache through the owner on every read, so a re-keying event
    (which swaps the cipher and its memo) cannot leave them reading a
    retired cache; a vanished cache reads as zeros.
    """
    scope = registry.scoped(prefix)

    def read(attr, default=0):
        cache = owner.pad_cache
        return getattr(cache, attr) if cache is not None else default

    scope.bind("hits", lambda: read("hits"))
    scope.bind("misses", lambda: read("misses"))
    scope.bind("hit_rate", lambda: read("hit_rate", 0.0))
    scope.bind("entries", lambda: len(owner.pad_cache or ()))
    return scope


def register_engine(registry, engine, prefix: str):
    """Bind a :class:`~repro.crypto.engine.PipelinedEngine`'s op count."""
    scope = registry.scoped(prefix)
    scope.bind("operations", lambda: engine.operations)
    return scope


def register_integrity(registry, integrity, prefix: str = "integrity"):
    """Bind an integrity verifier's verification count."""
    scope = registry.scoped(prefix)
    scope.bind("verifications", lambda: integrity.verifications)
    return scope


def register_machine(registry, machine, prefix: str = "machine"):
    """Bind a :class:`~repro.core.machine.SecureMemorySystem`'s counters.

    Access counts come from the machine itself; engine-specific gauges
    (pads generated, re-encryptions, ...) come from the machine's scheme
    descriptor via :meth:`~repro.schemes.base.EncryptionScheme.engine_stats`,
    so a registered third-party scheme publishes its own metrics without
    this module knowing its engine type.
    """
    scope = registry.scoped(prefix)
    scope.bind("reads", lambda: machine.reads)
    scope.bind("writes", lambda: machine.writes)
    if hasattr(machine.integrity, "verifications"):
        scope.bind("verifications", lambda: machine.integrity.verifications)
    for name, getter in machine.enc_scheme.engine_stats(machine.encryption).items():
        scope.bind(name, getter)
    for name, getter in machine.integ_scheme.engine_stats(machine.integrity).items():
        scope.bind(name, getter)
    if getattr(machine.encryption, "pad_cache", None) is not None:
        register_pad_cache(registry, machine.encryption, f"{prefix}.pad_cache")
    return scope


def register_predictor(registry, predictor, prefix: str = "prediction"):
    """Bind a :class:`~repro.core.prediction.CounterPredictor`'s stats."""
    scope = registry.scoped(prefix)
    for name in ("attempts", "hits", "candidate_trials", "fallbacks"):
        scope.bind(name, lambda n=name: getattr(predictor.stats, n))
    scope.bind("hit_rate", lambda: predictor.stats.hit_rate)
    return scope


# -- SimResult derivation -----------------------------------------------------


def bus_utilization_from(snapshot: dict, total_cycles: float) -> float:
    """Utilization from a snapshot, bit-for-bit matching
    :meth:`~repro.mem.bus.BusStats.utilization`."""
    if total_cycles <= 0:
        return 0.0
    return min(1.0, snapshot["bus.busy_cycles"] / total_cycles)


def sim_result_fields(snapshot: dict, measured_cycles: float) -> dict:
    """The statistics fields of a SimResult, derived from a registry
    snapshot (identical values to the stats objects the gauges wrap)."""
    return {
        "l2_accesses": snapshot["sim.demand_accesses"],
        "l2_misses": snapshot["sim.demand_misses"],
        "l2_data_fraction": snapshot["l2.occupancy.data"],
        "l2_merkle_fraction": snapshot["l2.occupancy.merkle"] + snapshot["l2.occupancy.mac"],
        "counter_accesses": snapshot["sim.counter_accesses"],
        "counter_misses": snapshot["sim.counter_misses"],
        "bus_utilization": bus_utilization_from(snapshot, measured_cycles),
        "bus_transfers_by_kind": dict(snapshot["bus.transfers_by_kind"]),
        "exposed_decrypt_cycles": snapshot["sim.exposed_decrypt_cycles"],
    }


# -- live tracing hooks (installed by TimingSimulator.run) --------------------


class SimHooks:
    """The per-run bridge between a simulator and an ambient obs session.

    Created at ``run()`` entry when observability is enabled, armed only
    at the warmup boundary — so warmup events can never leak into the
    measured event stream or interval samples. When disabled, none of
    this exists and the simulator's hot path sees only ``None`` checks.
    """

    def __init__(self, sim, session):
        self.sim = sim
        self.tracer = session.tracer
        self.profiler = session.profiler
        self.samples = session.samples
        self.interval = max(1, int(session.interval))
        self.miss_latency = sim.registry.get("sim.miss_latency")
        self._countdown = self.interval
        self._events = 0

    def begin(self, now: float) -> None:
        """Arm at the warmup boundary: rebase trace time to the start of
        the measured interval and take the t=0 sample."""
        self.tracer.rebase(now)
        self.sim.bus.tracer = self.tracer
        self._countdown = self.interval
        self._events = 0
        self.sample(now)

    def emit(self, event: str, ts: float, **fields) -> None:
        self.tracer.emit(event, ts=ts, **fields)

    def account(self, phase: str, cycles: float) -> None:
        self.profiler.add(phase, cycles)

    def event_tick(self, now: float) -> None:
        """Once per measured demand access: drive interval sampling."""
        self._events += 1
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.interval
            self.sample(now)

    def sample(self, now: float) -> None:
        snap = self.sim.registry.snapshot()
        snap["ts"] = self.tracer.to_trace_time(now)
        snap["events"] = self._events
        self.samples.append(snap)

    def finish(self, now: float) -> None:
        """End of run: final sample (so cumulative reconstruction is
        exact) and detach from the bus."""
        self.sample(now)
        self.sim.bus.tracer = None
