"""Prometheus text-format exposition for registry snapshots.

Renders any :meth:`MetricsRegistry.snapshot` dict — a single run's, or
a fleet report's ``aggregate`` — in the Prometheus text exposition
format (version 0.0.4), without importing any Prometheus client:

* scalar metrics become ``gauge`` samples (``repro_bus_transfers 42``),
* dict-valued gauges become one labeled sample per key
  (``repro_bus_transfers_by_kind{kind="data"} 17``),
* fixed-edge histograms become the canonical cumulative
  ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``.

Metric names are sanitized to ``[a-zA-Z_][a-zA-Z0-9_]*`` (dots and any
other separators collapse to underscores) and prefixed (default
``repro_``). ``validate_prometheus_text`` is a self-contained checker
for tests and the CI fleet job; ``python -m repro metrics`` is the CLI
front-end for both directions.
"""

from __future__ import annotations

import re

_NAME_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_]+")
_SAMPLE = re.compile(
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\Z"
)
_LABEL = re.compile(r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"\s*(?:,|\Z)')


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a registry metric name for Prometheus exposition."""
    flat = _SANITIZE.sub("_", f"{prefix}_{name}" if prefix else name).strip("_")
    if not flat or flat[0].isdigit():
        flat = "_" + flat
    return flat


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(pairs.items()))
    return "{" + body + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _is_histogram(value: dict) -> bool:
    return set(value) == {"edges", "counts", "sum", "count"}


def prometheus_exposition(snapshot: dict, prefix: str = "repro",
                          labels: dict | None = None) -> str:
    """Render a snapshot dict as Prometheus text format.

    ``labels`` (e.g. ``{"bench": "gcc", "config": "aise+bmt"}``) are
    attached to every sample. Non-numeric scalars are skipped —
    exposition is lossy by design; the JSON snapshot stays the complete
    record.
    """
    base = dict(labels or {})
    lines: list[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        flat = metric_name(name, prefix)
        if isinstance(value, dict):
            if _is_histogram(value):
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                for edge, count in zip(value["edges"], value["counts"]):
                    cumulative += count
                    lines.append(
                        f"{flat}_bucket"
                        f"{_labels({**base, 'le': _format_value(edge)})}"
                        f" {cumulative}"
                    )
                cumulative += value["counts"][len(value["edges"])]
                lines.append(
                    f"{flat}_bucket{_labels({**base, 'le': '+Inf'})} {cumulative}"
                )
                lines.append(f"{flat}_sum{_labels(base)} {_format_value(value['sum'])}")
                lines.append(f"{flat}_count{_labels(base)} {value['count']}")
            else:
                lines.append(f"# TYPE {flat} gauge")
                for key in sorted(value):
                    entry = value[key]
                    if not isinstance(entry, (int, float)) or isinstance(entry, bool):
                        continue
                    lines.append(
                        f"{flat}{_labels({**base, 'kind': key})} "
                        f"{_format_value(entry)}"
                    )
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat}{_labels(base)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> list[str]:
    """Check a text-format exposition; returns problems, [] = valid.

    Validates line shape (comments, ``name{labels} value``), metric and
    label name charsets, parseable sample values, and — for histograms
    — that ``le`` bucket values are cumulative (non-decreasing) and end
    with ``+Inf``.
    """
    problems: list[str] = []
    buckets: dict[str, list[tuple[float, float]]] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        m = _SAMPLE.match(line.strip())
        if m is None:
            problems.append(f"line {i}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        if not _NAME_OK.match(name):
            problems.append(f"line {i}: invalid metric name {name!r}")
        raw_labels = m.group("labels")
        le = None
        if raw_labels:
            consumed = 0
            for lm in _LABEL.finditer(raw_labels):
                consumed = lm.end()
                if lm.group("key") == "le":
                    le = lm.group("val")
            if consumed != len(raw_labels):
                problems.append(f"line {i}: malformed labels {{{raw_labels}}}")
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(f"line {i}: unparseable value {m.group('value')!r}")
            continue
        if name.endswith("_bucket") and le is not None:
            edge = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(name, []).append((edge, value))
    for name, series in buckets.items():
        edges = [edge for edge, _ in series]
        counts = [count for _, count in series]
        if edges != sorted(edges):
            problems.append(f"{name}: bucket le values not sorted")
        if counts != sorted(counts):
            problems.append(f"{name}: bucket counts not cumulative")
        if not edges or edges[-1] != float("inf"):
            problems.append(f"{name}: missing +Inf bucket")
    return problems
