"""repro.obs — unified observability for the AISE/BMT stack.

Three layers, one ambient switch:

* :mod:`repro.obs.registry` — hierarchical metrics (counters, pull-model
  gauges, fixed-edge histograms) that every component registers into;
* :mod:`repro.obs.tracer` — structured, model-time event tracing with
  ring/list/JSONL sinks, spans, and per-phase cycle attribution;
* :mod:`repro.obs.chrome` — Chrome trace-event (Perfetto) export and
  schema validation;
* :mod:`repro.obs.log` — the project logging hierarchy.

The ambient API mirrors :mod:`repro.core.sanitizer`: a module-level
session that instrumented code consults through ``obs.enabled()``,
``obs.emit(...)``, and ``obs.span(...)``. When no session is active
(the default) every hook is a near-free early return — results are
bit-identical to an uninstrumented build. Enable per-process with
``REPRO_OBS=1`` in the environment, or per-block with::

    with obs.observed(interval=512) as session:
        sim.run(trace)
    doc = chrome.chrome_trace(session.tracer.events(), session.samples,
                              session.profiler.snapshot())
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .registry import Counter, Gauge, Histogram, MetricsRegistry, Scope
from .tracer import (
    NULL_SPAN,
    Event,
    EventTracer,
    JsonlSink,
    ListSink,
    NullSpan,
    PhaseProfiler,
    RingSink,
    SpanHandle,
    TeeSink,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Scope",
    "Event",
    "EventTracer",
    "RingSink",
    "ListSink",
    "JsonlSink",
    "TeeSink",
    "PhaseProfiler",
    "SpanHandle",
    "NullSpan",
    "NULL_SPAN",
    "ObsSession",
    "enabled",
    "session",
    "enable",
    "disable",
    "observed",
    "emit",
    "span",
]


class ObsSession:
    """Everything one observed run collects: tracer, registry for
    ambient (non-simulator) metrics, phase profiler, and the interval
    snapshots the simulator's hooks append."""

    def __init__(self, tracer: EventTracer | None = None,
                 registry: MetricsRegistry | None = None,
                 interval: int = 1024,
                 ring_capacity: int = 65536):
        if tracer is None:
            tracer = EventTracer(RingSink(ring_capacity))
        self.tracer = tracer
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiler = PhaseProfiler()
        self.interval = interval
        self.samples: list[dict] = []


_session: ObsSession | None = None


def enabled() -> bool:
    """Whether an observability session is active in this process."""
    return _session is not None


def session() -> ObsSession | None:
    """The active session, or ``None``."""
    return _session


def enable(active: ObsSession | None = None) -> ObsSession:
    """Activate observability (idempotent if passed the current session)."""
    global _session
    _session = active if active is not None else ObsSession()
    return _session


def disable() -> None:
    """Deactivate observability; hooks return to their no-op path."""
    global _session
    _session = None


@contextmanager
def observed(tracer: EventTracer | None = None,
             registry: MetricsRegistry | None = None,
             interval: int = 1024,
             ring_capacity: int = 65536):
    """Scoped enablement: build a session, activate it for the block,
    restore the previous state after."""
    previous = _session
    active = ObsSession(tracer=tracer, registry=registry, interval=interval,
                        ring_capacity=ring_capacity)
    enable(active)
    try:
        yield active
    finally:
        if previous is None:
            disable()
        else:
            enable(previous)


def emit(event: str, ts: float | None = None, **fields) -> None:
    """Record one trace event if observability is on; no-op otherwise.

    This is the hook functional-model code (the kernel, integrity
    verifiers) calls directly — timing code goes through
    :class:`~repro.obs.adapters.SimHooks` instead.
    """
    if _session is not None:
        _session.tracer.emit(event, ts=ts, **fields)


def span(name: str):
    """A phase-span context manager; the shared ``NULL_SPAN`` when off."""
    if _session is None:
        return NULL_SPAN
    return SpanHandle(_session.tracer, _session.profiler, name)


if os.environ.get("REPRO_OBS", "") not in ("", "0"):
    enable()
