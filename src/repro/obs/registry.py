"""Hierarchical metrics registry: counters, gauges, histograms.

One registry holds every metric a simulated machine exposes, under
dotted hierarchical names (``l2.hits``, ``bus.busy_cycles``,
``kernel.swap_outs``). Three metric kinds:

* :class:`Counter` — a push-model monotone count (``inc``);
* :class:`Gauge` — either *bound* to a zero-argument callable (the pull
  model the hot-path components use: registration costs nothing per
  event, the value is read only at snapshot time) or *settable*;
* :class:`Histogram` — push-model with **fixed bucket edges**, so two
  identical runs produce byte-identical snapshots (no adaptive bucketing
  nondeterminism).

``snapshot()`` returns a plain sorted ``{name: value}`` dict that
round-trips through JSON losslessly — the form that rides in
:class:`~repro.sim.results.SimResult.metrics`, the interval samples, and
the on-disk result cache.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable


class Counter:
    """A push-model monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def read(self):
        return self.value

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value: bound to a callable, or set explicitly.

    Bound gauges are the registry's zero-overhead adapter mechanism —
    the component keeps mutating its own cheap stats fields and the
    registry reads them only when a snapshot is taken.
    """

    __slots__ = ("name", "fn", "value")

    def __init__(self, name: str, fn: Callable | None = None):
        self.name = name
        self.fn = fn
        self.value = 0

    def set(self, value) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name!r} is bound to a callable")
        self.value = value

    def read(self):
        return self.fn() if self.fn is not None else self.value

    def reset(self) -> None:
        # Bound gauges reset with their backing stats; settable ones zero.
        if self.fn is None:
            self.value = 0


class Histogram:
    """A push-model histogram over fixed, immutable bucket edges.

    ``edges`` are the upper bounds of the finite buckets; one overflow
    bucket catches everything above the last edge. Snapshot form::

        {"edges": [...], "counts": [...], "sum": total, "count": n}
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges):
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram {name!r} needs sorted non-empty edges")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def read(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """Name-addressed collection of counters, gauges, and histograms."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- registration --------------------------------------------------------

    def _add(self, name: str, metric):
        if not name or " " in name:
            raise ValueError(f"bad metric name {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {name!r} already registered as {type(existing).__name__}"
                )
            return existing
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._add(name, Counter(name))

    def gauge(self, name: str, fn: Callable | None = None) -> Gauge:
        return self._add(name, Gauge(name, fn))

    def bind(self, name: str, fn: Callable) -> Gauge:
        """Register a pull-model gauge backed by ``fn`` (adapter idiom)."""
        return self._add(name, Gauge(name, fn))

    def histogram(self, name: str, edges) -> Histogram:
        return self._add(name, Histogram(name, edges))

    def scoped(self, prefix: str) -> "Scope":
        """A view that prefixes every name with ``prefix.`` (hierarchy)."""
        return Scope(self, prefix)

    # -- interrogation -------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics[name]

    def read(self, name: str):
        return self._metrics[name].read()

    def snapshot(self) -> dict:
        """Sorted, JSON-ready ``{name: value}`` of every metric.

        Dict-valued gauges (e.g. per-kind transfer counts) are shallow-
        copied so callers can keep snapshots while the source mutates.
        """
        out = {}
        for name in sorted(self._metrics):
            value = self._metrics[name].read()
            if isinstance(value, dict):
                value = dict(value)
            out[name] = value
        return out

    def reset(self) -> None:
        """Zero every push-model metric (bound gauges follow their source)."""
        for metric in self._metrics.values():
            metric.reset()


class Scope:
    """Prefixing proxy over a registry: ``scope.counter("hits")`` registers
    ``<prefix>.hits``. Scopes nest (``scope.scoped("sub")``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str, fn: Callable | None = None) -> Gauge:
        return self._registry.gauge(self._name(name), fn)

    def bind(self, name: str, fn: Callable) -> Gauge:
        return self._registry.bind(self._name(name), fn)

    def histogram(self, name: str, edges) -> Histogram:
        return self._registry.histogram(self._name(name), edges)

    def scoped(self, prefix: str) -> "Scope":
        return Scope(self._registry, self._name(prefix))
