"""Structured event tracing: typed events, sinks, spans, phase profiling.

An :class:`Event` is ``(ts, name, fields)`` — the timestamp is *model
time* (simulator cycles, or a logical tick counter in the functional
system, which has no clock), never wall-clock, so traces are
bit-reproducible. Events flow into pluggable sinks:

* :class:`RingSink` — bounded in-memory ring (the default; keeps the
  last N events for post-mortem inspection);
* :class:`ListSink` — unbounded, for full-trace export;
* :class:`JsonlSink` — streams one sorted-key JSON object per line, so
  two identical runs produce byte-identical files;
* :class:`TeeSink` — fans one stream out to several sinks.

The tracer's clock can be **rebased** (``rebase(offset)``): the timing
simulator rebases at the warmup boundary so measured-interval events
start at t=0 and warmup never leaks into the measured timeline.

:class:`PhaseProfiler` accumulates per-phase cycle attribution
(``add(name, cycles)`` from the simulator's hot paths, or the ambient
``obs.span("verify_bmt")`` context manager from functional code, where
durations are logical ticks).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """One typed trace event at one model-time instant."""

    ts: float
    name: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"ts": self.ts, "event": self.name, **self.fields}


# -- sinks --------------------------------------------------------------------


class RingSink:
    """Keeps the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 65536):
        self.events: deque[Event] = deque(maxlen=capacity)

    def append(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class ListSink:
    """Unbounded event list — full-trace export (``repro trace``)."""

    def __init__(self):
        self.events: list[Event] = []

    def append(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streams events as JSON Lines to a file object.

    Keys are sorted and floats serialize via ``repr``, so identical
    event streams produce byte-identical files (the CI determinism
    check diffs two runs).
    """

    def __init__(self, stream):
        self.stream = stream
        self.written = 0

    def append(self, event: Event) -> None:
        self.stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.written += 1

    def clear(self) -> None:
        """Refused (with a RuntimeWarning): streamed output cannot be
        unwritten.

        Sink clearing semantics: ``clear()`` discards *retained* events
        so a sink can be reused across runs — RingSink and ListSink drop
        their buffers, TeeSink fans out to its children. A streaming
        sink has no retained events to discard; lines already written
        stay on disk, and silently pretending otherwise let tracer
        reuse bugs (two runs concatenated into one file) pass unnoticed.
        Reuse a fresh JsonlSink (or a fresh file) per run instead. The
        ``written`` counter is part of the permanent record and is
        deliberately not reset.
        """
        import warnings

        warnings.warn(
            "JsonlSink.clear(): streamed output cannot be unwritten; "
            "already-written lines remain in the file. Use a fresh "
            "JsonlSink per run instead of clearing.",
            RuntimeWarning,
            stacklevel=2,
        )

    def __len__(self) -> int:
        return self.written


class TeeSink:
    """Duplicates every event into each of several sinks."""

    def __init__(self, sinks):
        self.sinks = list(sinks)

    def append(self, event: Event) -> None:
        for sink in self.sinks:
            sink.append(event)

    def clear(self) -> None:
        for sink in self.sinks:
            sink.clear()

    def __len__(self) -> int:
        return max((len(s) for s in self.sinks), default=0)


# -- the tracer ---------------------------------------------------------------


class EventTracer:
    """Emits typed events into a sink, with a rebasable model-time clock.

    Timing code passes explicit ``ts`` (simulator cycles); functional
    code omits it and gets a monotone logical tick. ``rebase(offset)``
    shifts subsequent explicit timestamps by ``-offset`` — the
    simulator's warmup boundary calls this so the measured interval
    starts at t=0.
    """

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else RingSink()
        self._offset = 0.0
        self._ticks = 0

    @property
    def offset(self) -> float:
        return self._offset

    def rebase(self, offset: float) -> None:
        """Anchor trace time: subsequent explicit ``ts`` report relative
        to ``offset``; the logical tick counter restarts too."""
        self._offset = float(offset)
        self._ticks = 0

    def to_trace_time(self, ts: float) -> float:
        return ts - self._offset

    def tick(self) -> int:
        """Advance and return the logical clock (functional-model time)."""
        self._ticks += 1
        return self._ticks

    @property
    def ticks(self) -> int:
        return self._ticks

    def emit(self, event: str, ts: float | None = None, **fields) -> Event:
        """Record one event. ``ts`` is model time (rebased); omitted ts
        uses the logical tick counter."""
        stamped = self.tick() if ts is None else ts - self._offset
        record = Event(ts=stamped, name=event, fields=fields)
        self.sink.append(record)
        return record

    def events(self) -> list[Event]:
        """The sink's retained events (empty for pure streaming sinks)."""
        return list(getattr(self.sink, "events", ()))

    def clear(self) -> None:
        self.sink.clear()


# -- phase / span profiling ---------------------------------------------------


class PhaseProfiler:
    """Per-phase attribution: how many times each phase ran, and how many
    cycles (or logical ticks) it accounts for."""

    def __init__(self):
        self.counts: dict[str, int] = {}
        self.totals: dict[str, float] = {}

    def add(self, name: str, amount: float = 0.0) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        self.totals[name] = self.totals.get(name, 0.0) + amount

    def snapshot(self) -> dict:
        """Sorted ``{phase: {"count": n, "total": cycles}}``."""
        return {
            name: {"count": self.counts[name], "total": self.totals[name]}
            for name in sorted(self.counts)
        }

    def reset(self) -> None:
        self.counts.clear()
        self.totals.clear()


class SpanHandle:
    """Context manager timing one phase on a tracer's logical clock.

    Used by ambient ``obs.span(name)`` in functional code (the BMT
    verifier, the kernel): entry and exit read the tracer's tick
    counter, so the duration is the number of traced events that
    happened inside — deterministic logical time. The span is recorded
    as a ``span`` event (with ``dur``) and accumulated in the profiler.
    """

    __slots__ = ("tracer", "profiler", "name", "_start")

    def __init__(self, tracer: EventTracer, profiler: PhaseProfiler, name: str):
        self.tracer = tracer
        self.profiler = profiler
        self.name = name
        self._start = 0

    def __enter__(self) -> "SpanHandle":
        self._start = self.tracer.ticks
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = self.tracer.ticks - self._start
        self.profiler.add(self.name, dur)
        self.tracer.emit("span", span=self.name, dur=dur)


class NullSpan:
    """The disabled-mode span: enter/exit do nothing (hot-path no-op)."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()
