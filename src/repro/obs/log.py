"""Project-wide logging: one configured hierarchy under ``repro``.

Every CLI entry point and library module routes its diagnostics through
here instead of bare ``print()`` — so parallel sweep workers do not
interleave raw stdout, verbosity is controlled in one place
(``--log-level`` / ``-v`` on the ``repro`` CLI, or ``REPRO_LOG_LEVEL``
in the environment), and primary command *output* (report text, JSON
payloads) stays clean on stdout while diagnostics go to stderr.
"""

from __future__ import annotations

import logging
import os
import sys

ROOT = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """The logger for a dotted sub-name under the ``repro`` hierarchy."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def configure(level: str | int | None = None, stream=None) -> logging.Logger:
    """Install (or retune) the single stderr handler on the root logger.

    Idempotent: repeated calls adjust the level and stream in place
    rather than stacking handlers. ``level`` defaults to
    ``REPRO_LOG_LEVEL`` from the environment, then ``info`` — but a
    defaulted (``level=None``) call never *overrides* a level chosen by
    an earlier explicit call, so nested entry points (``repro report``
    invoking the report module's own ``main``) preserve ``--log-level``.
    """
    explicit = level is not None
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "info")
    if isinstance(level, str):
        try:
            level = LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
            ) from None
    root = logging.getLogger(ROOT)
    handler = next(
        (h for h in root.handlers if getattr(h, "_repro_obs", False)), None
    )
    if handler is not None and not explicit:
        level = root.level or level
    root.setLevel(level)
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler._repro_obs = True
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return root


def verbosity_to_level(verbose: int) -> str:
    """Map ``-v`` counts to a level name (0 = info, 1+ = debug)."""
    return "debug" if verbose else "info"
