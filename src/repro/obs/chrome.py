"""Chrome trace-event export and schema validation.

Converts an observability session (events + interval snapshots + phase
totals) into the Chrome trace-event JSON format, loadable in
``chrome://tracing`` or https://ui.perfetto.dev. Mapping:

* events carrying a ``dur`` field (``bus_grant``, ``l2_miss``, spans)
  become *complete* events (``ph: "X"``) with that duration;
* other events become *instant* events (``ph: "i"``);
* interval snapshots become *counter* events (``ph: "C"``) — the L2
  data/Merkle occupancy split as a timeline (Figure 9 over time), the
  cumulative miss counts, and bus busy cycles;
* phase totals are appended as one summarising instant event per phase.

Timestamps are simulator cycles reported in the ``ts`` microsecond
field (1 cycle := 1 us for display purposes — only relative spacing
matters). The emitted document is deterministic: event order follows
emission order and JSON keys are sorted by the writers.

``validate_chrome_trace`` checks a document against the subset of the
trace-event schema this exporter produces (and Perfetto requires);
``python -m repro.obs.chrome trace.json`` runs it from the command line
(the CI traced-sim job does exactly that).
"""

from __future__ import annotations

import json

from .tracer import Event

# Pseudo-threads the exporter lays events out on.
TID_CORE = 0
TID_BUS = 1
TID_PHASES = 2

_PHASES = ("X", "i", "C", "M")

# Counter tracks exported from interval snapshots: (track name, metric
# prefix -> args mapping builder is inline below).
_OCCUPANCY_CLASSES = ("data", "merkle", "mac", "counter", "code")


def _thread_meta(pid: int, tid: int, name: str) -> dict:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _event_record(event: Event, pid: int) -> dict:
    fields = dict(event.fields)
    tid = TID_BUS if event.name == "bus_grant" else TID_CORE
    name = event.name
    if name == "span" and "span" in fields:
        name = str(fields.pop("span"))
    dur = fields.pop("dur", None)
    if dur is None and "latency" in fields:
        dur = fields["latency"]
    record = {
        "name": name,
        "pid": pid,
        "tid": tid,
        "ts": event.ts,
        "args": fields,
    }
    if dur is not None:
        record["ph"] = "X"
        record["dur"] = max(0.0, float(dur))
    else:
        record["ph"] = "i"
        record["s"] = "t"
    return record


def _counter_records(sample: dict, pid: int) -> list[dict]:
    ts = sample.get("ts", 0.0)
    records = []
    occupancy = {
        cls: sample[f"l2.lines.{cls}"]
        for cls in _OCCUPANCY_CLASSES
        if f"l2.lines.{cls}" in sample
    }
    if "l2.lines.free" in sample:
        occupancy["free"] = sample["l2.lines.free"]
    if occupancy:
        records.append({"ph": "C", "name": "l2_occupancy", "pid": pid,
                        "tid": TID_CORE, "ts": ts, "args": occupancy})
    misses = {}
    for key, label in (("sim.demand_misses", "l2_misses"),
                       ("sim.counter_misses", "counter_misses")):
        if key in sample:
            misses[label] = sample[key]
    if misses:
        records.append({"ph": "C", "name": "misses", "pid": pid,
                        "tid": TID_CORE, "ts": ts, "args": misses})
    if "bus.busy_cycles" in sample:
        records.append({"ph": "C", "name": "bus_busy_cycles", "pid": pid,
                        "tid": TID_BUS, "ts": ts,
                        "args": {"busy": sample["bus.busy_cycles"]}})
    return records


def chrome_trace(events, samples=None, phases=None, label: str = "repro",
                 pid: int = 0) -> dict:
    """Build a Chrome trace-event document from a traced run.

    ``events`` is an iterable of :class:`~repro.obs.tracer.Event`;
    ``samples`` the interval snapshots (flat metric dicts with ``ts``);
    ``phases`` a :meth:`PhaseProfiler.snapshot` dict.
    """
    trace_events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": TID_CORE,
         "args": {"name": label}},
        _thread_meta(pid, TID_CORE, "core/memory"),
        _thread_meta(pid, TID_BUS, "memory bus"),
        _thread_meta(pid, TID_PHASES, "phases"),
    ]
    for event in events:
        trace_events.append(_event_record(event, pid))
    for sample in samples or ():
        trace_events.extend(_counter_records(sample, pid))
    end_ts = max((e["ts"] for e in trace_events if "ts" in e), default=0.0)
    for name, data in (phases or {}).items():
        trace_events.append({
            "ph": "i", "s": "t", "name": f"phase:{name}", "pid": pid,
            "tid": TID_PHASES, "ts": end_ts,
            "args": {"count": data["count"], "total": data["total"]},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# -- validation ---------------------------------------------------------------


def validate_chrome_trace(doc) -> list[str]:
    """Check a document against the trace-event schema subset we emit.

    Returns a list of problems (empty = valid). Checked: top-level
    shape, per-event required keys by phase, numeric timestamps and
    non-negative durations, and JSON-representable args.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool):
                problems.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                problems.append(f"{where}: 'X' event needs dur >= 0")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: 'i' event needs scope s in t/p/g")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: 'C' event needs non-empty args")
            elif any(
                not isinstance(v, (int, float)) or isinstance(v, bool)
                for v in args.values()
            ):
                problems.append(f"{where}: 'C' args must be numeric")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def main(argv=None) -> int:
    """Validate chrome-trace files: ``python -m repro.obs.chrome f.json``."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(description="validate Chrome trace-event JSON")
    parser.add_argument("files", nargs="+", help="trace files to validate")
    args = parser.parse_args(argv)
    failed = False
    for path in args.files:
        with open(path) as f:
            try:
                doc = json.load(f)
            except ValueError as exc:
                print(f"{path}: invalid JSON ({exc})", file=sys.stderr)
                failed = True
                continue
        problems = validate_chrome_trace(doc)
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        if problems:
            failed = True
        else:
            count = len(doc["traceEvents"])
            print(f"{path}: valid ({count} trace events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
