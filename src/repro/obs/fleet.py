"""repro.obs.fleet — cross-process observability for the sweep engine.

:mod:`repro.obs` (registry, tracer, Chrome export) is strictly
per-process; the parallel sweep engine (:mod:`repro.evalx.parallel`)
fans a grid out over a :class:`ProcessPoolExecutor`, so until this
module every worker-side metric died with its worker. Three layers fix
that, shaped so the future async sweep server can stream them to
clients unchanged:

* **Per-cell capture** — :func:`capture_cell` packages what one worker
  knows about one simulated cell into a plain JSON-ready dict: the
  serialized :class:`~repro.obs.registry.MetricsRegistry` snapshot,
  engine-selection telemetry (which engine ran, why the faster one was
  passed over, lowering-memo hit rates), the phase profile when an obs
  session was active, and wall/CPU timings the caller measured.
* **Aggregation** — :func:`merge_snapshots` defines the merge semantics
  per metric kind (counters and gauge counts **sum**; rate-like gauges
  — ``*rate``/``*fraction``/``*utilization``/``*.occupancy.*`` —
  **average**; fixed-edge histograms merge their counts element-wise
  and refuse mismatched edges; dict-valued gauges sum key-wise).
  :class:`FleetCollector` applies them across every cell of a sweep and
  produces a :class:`FleetReport`: aggregate snapshot, per-engine cell
  attribution, per-worker utilization, and the merged parent+worker
  disk-cache counts.
* **Progress stream** — :class:`ProgressStream` fans typed progress
  records (``sweep_begin`` / ``cell_start`` / ``cell_done`` /
  ``sweep_end``, schema in :data:`PROGRESS_SCHEMA`) into sinks with a
  two-method protocol (``emit(record)`` / ``close()``):
  :class:`JsonlProgressSink` (one sorted-key JSON object per line),
  :class:`TtyProgressSink` (the ``repro sweep --live`` renderer), and
  :class:`MemoryProgressSink` (tests, and the in-process shape a sweep
  server would wrap a client connection in).

Exposition: :mod:`repro.obs.prom` renders any snapshot (including a
report's ``aggregate``) in Prometheus text format, and
:func:`fleet_chrome_trace` lays a whole sweep out as a Chrome trace
with one lane per worker process. ``python -m repro.obs.fleet``
validates report payloads and progress JSONL files (the CI fleet job
runs exactly that).

Everything here is strictly additive on the simulation side: capture
reads snapshots and telemetry that already exist, attaches nothing to
:class:`~repro.sim.results.SimResult`, and never touches cache keys —
a sweep with fleet capture or a live stream enabled produces
byte-identical result JSON to one without.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

# Engine attribution values a cell record may carry: the three execution
# engines (see repro.fastpath) plus "cached" for cells served from the
# disk result cache without simulating. Kept as plain data — obs must
# not import the engine layer it observes.
CELL_ENGINES = ("compiled", "per_event", "reference", "cached")

# Sources a cell result can come from.
SOURCE_POOL = "pool"            # simulated in a worker process
SOURCE_SERIAL = "serial"        # simulated in the parent
SOURCE_RETRY = "serial_retry"   # worker crashed; re-simulated in parent
SOURCE_CACHE = "cache"          # served from the disk result cache
CELL_SOURCES = (SOURCE_POOL, SOURCE_SERIAL, SOURCE_RETRY, SOURCE_CACHE)

_NUMBER = (int, float)


def _is_number(value) -> bool:
    return isinstance(value, _NUMBER) and not isinstance(value, bool)


# -- per-cell capture ---------------------------------------------------------


def capture_cell(sim, phases: dict | None = None) -> dict:
    """Package one simulated cell's observability payload (JSON-ready).

    ``sim`` is the :class:`~repro.sim.simulator.TimingSimulator` that
    just ran the cell — its registry snapshot carries every registered
    metric including the ``engine.*`` telemetry gauges, and its
    :class:`~repro.fastpath.EngineTelemetry` names the engine the run
    used. ``phases`` is a :meth:`PhaseProfiler.snapshot` dict when the
    cell ran under an obs session (empty otherwise — the light capture
    deliberately arms no session, so engine selection stays free).
    Wall/CPU timings are the *caller's* to measure and attach (clock
    reads live in :mod:`repro.evalx`, the determinism rule's exempt
    zone).
    """
    telemetry = getattr(sim, "engine_telemetry", None)
    return {
        "engine": telemetry.last_engine if telemetry is not None else None,
        "fallback_reason": telemetry.last_reason if telemetry is not None else None,
        "metrics": sim.registry.snapshot(),
        "phases": dict(phases) if phases else {},
        "worker": os.getpid(),
    }


# -- merge semantics ----------------------------------------------------------

# Name shapes aggregated as means rather than sums: terminal components
# that are ratios of other metrics (re-summing them would be nonsense).
_MEAN_SUFFIXES = ("rate", "fraction", "utilization")


def _is_histogram(value: dict) -> bool:
    return set(value) == {"edges", "counts", "sum", "count"}


def merge_rule(name: str, value) -> str:
    """The merge semantic for one metric: ``sum``, ``mean``,
    ``histogram``, ``sum_by_key``, or ``skip`` (non-numeric).

    Counters and count-valued gauges sum across cells; rate-like gauges
    (``*rate``, ``*fraction``, ``*utilization``, occupancy fractions)
    average — an unweighted mean over cells, matching how the paper
    averages per-benchmark ratios; histograms merge element-wise;
    dict-valued gauges (e.g. ``bus.transfers_by_kind``) sum key-wise.
    """
    if isinstance(value, dict):
        return "histogram" if _is_histogram(value) else "sum_by_key"
    if not _is_number(value):
        return "skip"
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith(_MEAN_SUFFIXES) or ".occupancy." in name:
        return "mean"
    return "sum"


def merge_snapshots(snapshots) -> dict:
    """Aggregate registry snapshots under :func:`merge_rule`.

    Raises ``ValueError`` when two snapshots disagree on a histogram's
    bucket edges — fixed-edge histograms are the determinism contract,
    so a mismatch means the snapshots come from incompatible models.
    """
    sums: dict[str, float] = {}
    means: dict[str, list] = {}
    hists: dict[str, dict] = {}
    dicts: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.items():
            kind = merge_rule(name, value)
            if kind == "sum":
                sums[name] = sums.get(name, 0) + value
            elif kind == "mean":
                means.setdefault(name, []).append(value)
            elif kind == "sum_by_key":
                into = dicts.setdefault(name, {})
                for key, count in value.items():
                    into[key] = into.get(key, 0) + count
            elif kind == "histogram":
                merged = hists.get(name)
                if merged is None:
                    hists[name] = {
                        "edges": list(value["edges"]),
                        "counts": list(value["counts"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                elif list(value["edges"]) != merged["edges"]:
                    raise ValueError(
                        f"histogram {name!r}: bucket edges differ across "
                        f"snapshots ({merged['edges']} vs {list(value['edges'])})"
                    )
                else:
                    merged["counts"] = [
                        a + b for a, b in zip(merged["counts"], value["counts"])
                    ]
                    merged["sum"] += value["sum"]
                    merged["count"] += value["count"]
    out: dict = {}
    out.update(sums)
    for name, values in means.items():
        out[name] = sum(values) / len(values)
    out.update(hists)
    out.update(dicts)
    return {name: out[name] for name in sorted(out)}


# -- the sweep-level report ---------------------------------------------------


@dataclass
class FleetReport:
    """One sweep's fleet observability: attribution, aggregate, workers.

    ``cells`` holds one record per grid cell (bench/label/mac_bits,
    source, engine + fallback reason, timings, worker pid, and — for
    simulated cells — the full metrics snapshot and phase profile);
    ``aggregate`` is their :func:`merge_snapshots` merge; ``engines`` /
    ``fallback_reasons`` account for every cell; ``workers`` maps pid →
    cells/busy seconds/utilization; ``cache`` is the parent+worker
    merged :class:`~repro.evalx.parallel.ResultCache` accounting.
    """

    total: int
    simulated: int
    cached: int
    wall_s: float
    workers_requested: int
    events: int
    cells: list = field(default_factory=list)
    aggregate: dict = field(default_factory=dict)
    engines: dict = field(default_factory=dict)
    fallback_reasons: dict = field(default_factory=dict)
    workers: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        """Deterministically ordered JSON payload (modulo timings)."""
        return {
            "total": self.total,
            "simulated": self.simulated,
            "cached": self.cached,
            "wall_s": self.wall_s,
            "workers_requested": self.workers_requested,
            "events": self.events,
            "engines": dict(sorted(self.engines.items())),
            "fallback_reasons": dict(sorted(self.fallback_reasons.items())),
            "workers": {str(pid): stats for pid, stats in sorted(self.workers.items())},
            "cache": dict(sorted(self.cache.items())),
            "aggregate": self.aggregate,
            "cells": sorted(
                self.cells,
                key=lambda c: (c["bench"], c["label"], str(c.get("mac_bits"))),
            ),
        }


class FleetCollector:
    """Accumulates per-cell records during one ``run_cells`` sweep.

    Driven by :mod:`repro.evalx.parallel`: ``begin`` once, ``add_cell``
    per resolved cell, ``absorb_cache`` for each process's disk-cache
    count delta, ``finish`` with the sweep's wall time. The finished
    :class:`FleetReport` is returned and kept as ``.report``.
    """

    def __init__(self):
        self.cells: list[dict] = []
        self.cache: dict[str, int] = {}
        self.report: FleetReport | None = None
        self._total = 0
        self._workers = 0
        self._events = 0

    def begin(self, total: int, workers: int, events: int) -> None:
        self._total = total
        self._workers = workers
        self._events = events

    def add_cell(self, record: dict) -> None:
        """One resolved cell. Required keys: bench, label, mac_bits,
        source, engine; simulated cells also carry fallback_reason,
        metrics, phases, wall_s, cpu_s, t_start, t_end, worker."""
        self.cells.append(record)

    def absorb_cache(self, counts: dict) -> None:
        """Key-wise merge of one process's ResultCache count delta."""
        for key, value in counts.items():
            self.cache[key] = self.cache.get(key, 0) + value

    def finish(self, wall_s: float) -> FleetReport:
        engines: dict[str, int] = {}
        reasons: dict[str, int] = {}
        workers: dict[int, dict] = {}
        snapshots = []
        simulated = cached = 0
        for record in self.cells:
            engine = record.get("engine") or "unknown"
            engines[engine] = engines.get(engine, 0) + 1
            reason = record.get("fallback_reason")
            if reason:
                reasons[reason] = reasons.get(reason, 0) + 1
            if record.get("source") == SOURCE_CACHE:
                cached += 1
                continue
            simulated += 1
            if record.get("metrics"):
                snapshots.append(record["metrics"])
            pid = record.get("worker")
            if pid is not None:
                stats = workers.setdefault(pid, {"cells": 0, "busy_s": 0.0})
                stats["cells"] += 1
                stats["busy_s"] += record.get("wall_s") or 0.0
        for stats in workers.values():
            stats["utilization"] = (
                min(1.0, stats["busy_s"] / wall_s) if wall_s > 0 else 0.0
            )
        self.report = FleetReport(
            total=len(self.cells),
            simulated=simulated,
            cached=cached,
            wall_s=wall_s,
            workers_requested=self._workers,
            events=self._events,
            cells=self.cells,
            aggregate=merge_snapshots(snapshots),
            engines=engines,
            fallback_reasons=reasons,
            workers=workers,
            cache=dict(self.cache),
        )
        return self.report


def validate_fleet_payload(doc) -> list[str]:
    """Check a :meth:`FleetReport.to_payload` document; [] = valid.

    Enforces the acceptance invariants: every cell attributed to
    exactly one known engine, a fallback reason present on every
    non-compiled simulated cell, engine counts covering 100% of cells,
    and the counts block consistent with the cell list.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    for key in ("total", "simulated", "cached", "engines", "cells", "aggregate"):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    cells = doc["cells"]
    if not isinstance(cells, list):
        return ["'cells' is not a list"]
    engines: dict[str, int] = {}
    simulated = cached = 0
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where}: not an object")
            continue
        engine = cell.get("engine")
        if engine not in CELL_ENGINES:
            problems.append(f"{where}: engine {engine!r} not in {CELL_ENGINES}")
            continue
        engines[engine] = engines.get(engine, 0) + 1
        source = cell.get("source")
        if source not in CELL_SOURCES:
            problems.append(f"{where}: source {source!r} not in {CELL_SOURCES}")
        if source == SOURCE_CACHE:
            cached += 1
        else:
            simulated += 1
        if engine in ("per_event", "reference") and not cell.get("fallback_reason"):
            problems.append(f"{where}: {engine} cell lacks a fallback_reason")
        if engine == "compiled" and cell.get("fallback_reason"):
            problems.append(f"{where}: compiled cell carries a fallback_reason")
    if len(cells) != doc["total"]:
        problems.append(f"total={doc['total']} but {len(cells)} cell records")
    if sum(engines.values()) != len(cells):
        problems.append("engine attribution does not cover 100% of cells")
    if engines != doc["engines"]:
        problems.append(
            f"engines block {doc['engines']} disagrees with cells {engines}"
        )
    if simulated != doc["simulated"] or cached != doc["cached"]:
        problems.append(
            f"simulated/cached counts ({doc['simulated']}/{doc['cached']}) "
            f"disagree with cells ({simulated}/{cached})"
        )
    return problems


# -- the progress stream ------------------------------------------------------

# Record schema: required field name -> accepted type(s). Every record
# additionally carries "seq" (contiguous from 0) and "event". float
# fields accept ints. Optional fields (fallback_reason, mac_bits,
# cpu_s, cache, workers) are not listed. This is the wire format the
# future sweep server streams to clients — sinks see exactly these
# dicts, in order.
PROGRESS_SCHEMA: dict[str, dict[str, tuple]] = {
    "sweep_begin": {"total": (int,), "workers": (int,), "events": (int,)},
    "cell_start": {"bench": (str,), "label": (str,), "worker": (int,)},
    "cell_done": {
        "bench": (str,),
        "label": (str,),
        "done": (int,),
        "total": (int,),
        "source": (str,),
        "engine": (str,),
        "wall_s": (int, float),
        "cells_per_sec": (int, float),
        "eta_s": (int, float),
        "cache_hit_ratio": (int, float),
        "worker": (int,),
    },
    "sweep_end": {
        "total": (int,),
        "simulated": (int,),
        "cached": (int,),
        "wall_s": (int, float),
    },
}


class ProgressStream:
    """Fans sweep progress records into sinks, stamping sequence numbers.

    Thread-safe: the parallel engine emits from the parent thread and
    from the worker-queue drain thread concurrently. A sink is anything
    with ``emit(record: dict)`` and ``close()`` — the same protocol a
    sweep server would hand a client connection.
    """

    def __init__(self, sinks=()):
        import threading

        self.sinks = list(sinks)
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, event: str, **fields) -> dict:
        with self._lock:
            record = {"seq": self._seq, "event": event, **fields}
            self._seq += 1
            for sink in self.sinks:
                sink.emit(record)
        return record

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class MemoryProgressSink:
    """Retains every record (tests; the in-process server shape)."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlProgressSink:
    """Streams records as sorted-key JSON lines, flushed per record so
    ``tail -f`` (or a reconnecting client) sees cells as they land."""

    def __init__(self, target):
        if isinstance(target, (str, os.PathLike)):
            self.stream = open(target, "w")
            self._owned = True
        else:
            self.stream = target
            self._owned = False
        self.written = 0

    def emit(self, record: dict) -> None:
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.stream.flush()
        self.written += 1

    def close(self) -> None:
        if self._owned:
            self.stream.close()


class CallbackProgressSink:
    """Invokes one callable per record — the adapter a server wraps
    around its event loop (:mod:`repro.service` hands it a
    ``call_soon_threadsafe`` bridge, so records emitted from sweep
    worker threads land on subscriber queues without the stream ever
    knowing about asyncio)."""

    def __init__(self, fn):
        self.fn = fn

    def emit(self, record: dict) -> None:
        self.fn(record)

    def close(self) -> None:
        pass


class TtyProgressSink:
    """Single-line live renderer for ``repro sweep --live`` (stderr).

    Redraws one status line per ``cell_done`` (carriage return, no
    scrollback spam) and finishes with a newline-terminated summary on
    ``sweep_end``.
    """

    def __init__(self, stream=None):
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self._width = 0

    def _line(self, text: str) -> None:
        pad = max(0, self._width - len(text))
        self.stream.write("\r" + text + " " * pad)
        self.stream.flush()
        self._width = len(text)

    def emit(self, record: dict) -> None:
        event = record.get("event")
        if event == "cell_done":
            eta = record["eta_s"]
            self._line(
                f"[{record['done']}/{record['total']}] "
                f"{record['bench']}/{record['label']} ({record['engine']}) "
                f"{record['cells_per_sec']:.2f} cells/s "
                f"eta {eta:.0f}s cache {record['cache_hit_ratio']:.0%}"
            )
        elif event == "sweep_end":
            self._line(
                f"[{record['total']}/{record['total']}] done: "
                f"{record['simulated']} simulated, {record['cached']} cached "
                f"in {record['wall_s']:.1f}s"
            )
            self.stream.write("\n")
            self.stream.flush()

    def close(self) -> None:
        pass


def validate_progress_records(records) -> list[str]:
    """Check a progress stream against :data:`PROGRESS_SCHEMA`; [] = valid.

    Beyond per-record shape: sequence numbers contiguous from 0, the
    stream opens with ``sweep_begin`` and closes with ``sweep_end``,
    ``cell_done.done`` counts 1..total exactly once each, and every
    done cell is attributed to a known engine.
    """
    problems: list[str] = []
    records = list(records)
    if not records:
        return ["empty stream"]
    done_seen: list[int] = []
    total = None
    for i, record in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        if record.get("seq") != i:
            problems.append(f"{where}: seq {record.get('seq')!r}, expected {i}")
        event = record.get("event")
        spec = PROGRESS_SCHEMA.get(event)
        if spec is None:
            problems.append(f"{where}: unknown event {event!r}")
            continue
        for name, types in spec.items():
            value = record.get(name)
            if not isinstance(value, types) or isinstance(value, bool):
                problems.append(
                    f"{where}: field {name!r} = {value!r} is not "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
        if event == "sweep_begin":
            total = record.get("total")
        elif event == "cell_done":
            done_seen.append(record.get("done"))
            if record.get("engine") not in CELL_ENGINES:
                problems.append(
                    f"{where}: engine {record.get('engine')!r} "
                    f"not in {CELL_ENGINES}"
                )
    if records[0].get("event") != "sweep_begin":
        problems.append("stream does not open with sweep_begin")
    if records[-1].get("event") != "sweep_end":
        problems.append("stream does not close with sweep_end")
    if total is not None and sorted(done_seen) != list(range(1, total + 1)):
        problems.append(
            f"cell_done.done values {sorted(done_seen)} are not 1..{total}"
        )
    return problems


def validate_progress_jsonl(lines) -> list[str]:
    """Parse JSONL lines and validate (:func:`validate_progress_records`)."""
    records = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            return [f"line {i + 1}: invalid JSON ({exc})"]
    return validate_progress_records(records)


# -- whole-sweep Chrome trace -------------------------------------------------


def fleet_chrome_trace(report, label: str = "sweep") -> dict:
    """A Chrome trace-event document with one lane per worker process.

    ``report`` is a :class:`FleetReport` or its payload dict. Each
    simulated cell becomes a complete (``X``) event on its worker's
    lane, spanning the cell's wall time (timestamps are seconds from
    the first cell's start, reported in the microsecond ``ts`` field);
    cache-served cells appear as instant events on a ``cache`` lane.
    Validates against :func:`repro.obs.chrome.validate_chrome_trace`.
    """
    payload = report.to_payload() if isinstance(report, FleetReport) else report
    cells = payload["cells"]
    pids = sorted(
        {c["worker"] for c in cells
         if c.get("worker") is not None and c.get("source") != SOURCE_CACHE}
    )
    lanes = {pid: tid for tid, pid in enumerate(pids)}
    cache_tid = len(pids)
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": label}},
    ]
    for pid in pids:
        events.append({"ph": "M", "name": "thread_name", "pid": 0,
                       "tid": lanes[pid], "args": {"name": f"worker {pid}"}})
    events.append({"ph": "M", "name": "thread_name", "pid": 0,
                   "tid": cache_tid, "args": {"name": "cache"}})
    starts = [c["t_start"] for c in cells if _is_number(c.get("t_start"))]
    t0 = min(starts) if starts else 0.0
    for cell in cells:
        name = f"{cell['bench']}/{cell['label']}"
        ts = (cell["t_start"] - t0) * 1e6 if _is_number(cell.get("t_start")) else 0.0
        if cell.get("source") == SOURCE_CACHE:
            events.append({"ph": "i", "s": "t", "name": name, "pid": 0,
                           "tid": cache_tid, "ts": ts,
                           "args": {"source": SOURCE_CACHE}})
            continue
        args = {"engine": cell.get("engine") or "unknown",
                "source": cell.get("source") or "unknown"}
        if cell.get("fallback_reason"):
            args["fallback_reason"] = cell["fallback_reason"]
        events.append({
            "ph": "X", "name": name, "pid": 0,
            "tid": lanes.get(cell.get("worker"), cache_tid), "ts": ts,
            "dur": max(0.0, float(cell.get("wall_s") or 0.0)) * 1e6,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- snapshot extraction (the `repro metrics` CLI) ----------------------------


def extract_snapshot(doc) -> dict:
    """The metric snapshot inside a JSON document, wherever it lives.

    Accepts a fleet-report payload (``aggregate``), a traced-run
    snapshots file or result dict (``result.metrics`` / ``metrics``),
    or a bare ``{name: value}`` snapshot. Raises ``ValueError`` when no
    snapshot can be found.
    """
    if not isinstance(doc, dict):
        raise ValueError("not a JSON object")
    if isinstance(doc.get("aggregate"), dict):
        return doc["aggregate"]
    result = doc.get("result")
    if isinstance(result, dict) and isinstance(result.get("metrics"), dict):
        return result["metrics"]
    if isinstance(doc.get("metrics"), dict):
        return doc["metrics"]
    if doc and all(not isinstance(v, (list,)) for v in doc.values()):
        return doc
    raise ValueError(
        "no metric snapshot found (expected a fleet report, a traced-run "
        "payload, or a bare snapshot dict)"
    )


# -- CLI validation entry point -----------------------------------------------


def main(argv=None) -> int:
    """Validate fleet artifacts: ``python -m repro.obs.fleet [options]``."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="validate fleet reports and progress JSONL streams"
    )
    parser.add_argument("--report", action="append", default=[],
                        metavar="FILE", help="FleetReport payload JSON")
    parser.add_argument("--progress", action="append", default=[],
                        metavar="FILE", help="progress JSONL stream")
    args = parser.parse_args(argv)
    if not args.report and not args.progress:
        parser.error("nothing to validate (pass --report and/or --progress)")
    failed = False
    for path in args.report:
        with open(path) as f:
            try:
                doc = json.load(f)
            except ValueError as exc:
                print(f"{path}: invalid JSON ({exc})", file=sys.stderr)
                failed = True
                continue
        problems = validate_fleet_payload(doc)
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        if problems:
            failed = True
        else:
            print(f"{path}: valid fleet report ({doc['total']} cells, "
                  f"{len(doc['aggregate'])} aggregated metrics)")
    for path in args.progress:
        with open(path) as f:
            problems = validate_progress_jsonl(f)
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        if problems:
            failed = True
        else:
            print(f"{path}: valid progress stream")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
