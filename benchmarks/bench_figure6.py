"""Figure 6: AISE+BMT vs global64+MT execution-time overhead.

Paper shape: global64+MT averages ~26% (max ~151%); AISE+BMT averages
~1.8% (max ~13%). The reproduction asserts the orderings and magnitude
bands, not the exact percentages.
"""

from repro.evalx.figures import figure6
from repro.evalx.report import render_figure
from repro.workloads.spec2k import MEMORY_BOUND

from conftest import save_artifact


def test_figure6(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure6, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure6.txt", text)
    print("\n" + text)

    proposal = fig.series["aise+bmt"]
    prior = fig.series["global64+mt"]
    # The proposal wins on every benchmark...
    for bench in runner.benchmarks:
        assert proposal[bench] < prior[bench], bench
    # ...by a large factor on average (paper: 1.8% vs 25.9%).
    assert proposal["avg"] < 0.06
    assert prior["avg"] > 4 * proposal["avg"]
    # Worst cases live in the memory-bound subset for both schemes.
    assert max(prior, key=lambda b: prior[b] if b != "avg" else -1) in MEMORY_BOUND
    assert max(proposal[b] for b in runner.benchmarks) < 0.20
