"""Figure 10: L2 miss rate (a) and bus utilization (b) — base vs MT vs BMT.

Paper shape: MT lifts the average miss rate 37.8% -> 47.5% and bus
utilization 14% -> 24%; BMT barely moves either (38.5% / 16%).
"""

from repro.evalx.figures import figure10a, figure10b
from repro.evalx.report import render_figure

from conftest import save_artifact


def test_figure10a_miss_rate(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure10a, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure10a.txt", text)
    print("\n" + text)

    base = fig.series["base"]["avg"]
    mt = fig.series["aise+mt"]["avg"]
    bmt = fig.series["aise+bmt"]["avg"]
    assert mt > base + 0.03  # MT meaningfully raises misses
    assert abs(bmt - base) < 0.01  # BMT does not


def test_figure10b_bus_utilization(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure10b, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure10b.txt", text)
    print("\n" + text)

    base = fig.series["base"]["avg"]
    mt = fig.series["aise+mt"]["avg"]
    bmt = fig.series["aise+bmt"]["avg"]
    assert base < bmt < mt  # paper: 14% < 16% < 24%
    assert mt > base * 1.4
    assert bmt < base * 1.35
