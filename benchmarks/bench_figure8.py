"""Figure 8: AISE / AISE+MT / AISE+BMT — integrity verification dominates.

Paper shape: integrity verification (Merkle maintenance) is the dominant
overhead — 12.1% average for AISE+MT, cut to 1.8% by BMT, with the
memory-intensive trio (art, mcf, swim) above 60%/below 15% respectively
in the paper's run.
"""

from repro.evalx.figures import figure8
from repro.evalx.report import render_figure
from repro.workloads.spec2k import MEMORY_BOUND

from conftest import save_artifact


def test_figure8(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure8, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure8.txt", text)
    print("\n" + text)

    aise = fig.series["aise"]
    mt = fig.series["aise+mt"]
    bmt = fig.series["aise+bmt"]
    # Integrity is the dominant term (paper section 7.2).
    assert mt["avg"] > 3 * aise["avg"]
    # BMT removes almost all of it.
    assert (bmt["avg"] - aise["avg"]) < (mt["avg"] - aise["avg"]) / 5
    # Memory-bound benchmarks stay under control with BMT (paper: <15%).
    for bench in MEMORY_BOUND:
        assert bmt[bench] < 0.20, bench
        assert mt[bench] > bmt[bench], bench
