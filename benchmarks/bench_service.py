#!/usr/bin/env python3
"""Load-generator benchmark for the sweep service: latency tiers.

Prices one cell request at the service's temperatures against the
cold-process floor:

* ``cold_process`` — a fresh ``python -m repro simulate --json``
  subprocess: interpreter boot, imports, trace decode, machine
  construction, simulation. What dispatching a cell costs without a
  resident service.
* ``cold_service`` — the first-ever request on a fresh server: the
  socket round trip plus building the trace and the machine (filling
  every tier on the way out).
* ``warm_service`` — same machine fingerprint, new result key (the
  warmup knob is perturbed per request so no cache tier can answer):
  the pooled cold-reset machine and the shared pre-lowered trace serve
  it, so only the simulation itself is paid.
* ``lru_hit`` — a byte-identical repeat request, served from the
  in-memory LRU tier at memory speed.

The ratios (``cold_process`` over ``warm_service`` / ``lru_hit``) are
the service's reason to exist and the committed regression surface:
``--check`` fails if a ratio regressed more than ``--tolerance``
against the committed ``BENCH_service.json``, or if either ratio falls
below the 5x acceptance floor. Absolute latencies are machine-specific;
the ratios are comparable anywhere.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--events N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import time

from repro.api import schema
from repro.service import serve_background

WORKLOAD = "stream"
CONFIG = "aise+bmt"
ACCEPTANCE_FLOOR = 5.0

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_service.json")


def _median_ms(samples: list[float]) -> float:
    return round(statistics.median(samples) * 1000.0, 3)


def _cold_process_ms(events: int, repeats: int) -> float:
    """One cell via a fresh interpreter — the no-service dispatch cost."""
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src")
    command = [sys.executable, "-m", "repro", "simulate",
               "--benchmark", WORKLOAD, "--events", str(events), "--json"]
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        proc = subprocess.run(command, env=env, cwd=root,
                              capture_output=True, text=True)
        samples.append(time.perf_counter() - start)
        if proc.returncode != 0:
            raise RuntimeError(f"cold-process run failed: {proc.stderr}")
    return _median_ms(samples)


def _request_ms(client, request) -> float:
    start = time.perf_counter()
    client.request(request)
    return time.perf_counter() - start


def run_benchmark(events: int, repeats: int) -> dict:
    cold_process = _cold_process_ms(events, max(2, repeats // 2))

    with serve_background() as handle:
        with handle.client(tenant="loadgen") as client:
            base = dict(workload=WORKLOAD, config=CONFIG, events=events)
            cold_service = _median_ms(
                [_request_ms(client, schema.SimulateRequest(**base))])
            # Perturbed warmup: a fresh result key every time, so the
            # pooled machine + shared trace do real simulation work.
            warm = _median_ms([
                _request_ms(client, schema.SimulateRequest(
                    **base, warmup=0.25 + (i + 1) * 1e-3))
                for i in range(repeats)
            ])
            lru = _median_ms([
                _request_ms(client, schema.SimulateRequest(**base))
                for i in range(repeats)
            ])
            status = client.status()

    assert status["served"]["lru"] >= repeats, \
        "repeat requests were not LRU hits — tier attribution broke"
    return {
        "meta": {
            "events": events,
            "workload": WORKLOAD,
            "config": CONFIG,
            "repeats": repeats,
            "python": platform.python_version(),
            "note": "latencies are machine-specific; the ratios "
                    "(cold-process dispatch vs resident-service tiers) "
                    "are comparable across machines",
        },
        "latency_ms": {
            "cold_process": cold_process,
            "cold_service": cold_service,
            "warm_service": warm,
            "lru_hit": lru,
        },
        "ratios": {
            "cold_process_over_warm": round(cold_process / warm, 2),
            "cold_process_over_lru": round(cold_process / lru, 2),
            "warm_over_lru": round(warm / lru, 2),
        },
    }


def check_regression(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Ratios below the acceptance floor or the committed baseline."""
    failures = []
    for name in ("cold_process_over_warm", "cold_process_over_lru"):
        now = current["ratios"][name]
        if now < ACCEPTANCE_FLOOR:
            failures.append(
                f"{name}: {now:.1f}x is below the {ACCEPTANCE_FLOOR:.0f}x "
                "acceptance floor")
        committed = baseline.get("ratios", {}).get(name)
        if committed is None:
            failures.append(f"{name}: missing from baseline")
            continue
        floor = committed * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{name}: {now:.1f}x < {floor:.1f}x "
                f"({committed:.1f}x committed, -{tolerance:.0%} tolerance)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=4_000,
                        help="trace length per request (default: 4000)")
    parser.add_argument("--repeats", type=int, default=6,
                        help="requests per tier (median is kept)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path (default: BENCH_service.json)")
    parser.add_argument("--check", action="store_true",
                        help="also compare ratios against --baseline; "
                             "exit 1 on regression or below the 5x floor")
    parser.add_argument("--baseline", default=DEFAULT_OUT,
                        help="committed report to --check against "
                             "(default: BENCH_service.json)")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed ratio regression for --check "
                             "(subprocess timing is noisy; default 50%%)")
    args = parser.parse_args(argv)

    report = run_benchmark(args.events, args.repeats)
    for tier, latency in report["latency_ms"].items():
        print(f"{tier:14} {latency:>10.2f} ms")
    for name, ratio in report["ratios"].items():
        print(f"{name:22} {ratio:.1f}x")

    # Never clobber the baseline with a smoke run's numbers.
    if not (args.check and os.path.abspath(args.out) == os.path.abspath(args.baseline)):
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"report written to {args.out}")

    if args.check:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}")
            return 1
        failures = check_regression(report, baseline, args.tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
        print(f"check passed against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
