"""Figure 7: encryption-only overhead — AISE vs global counter schemes.

Paper shape: AISE ~1.6% average, well below global-32 (~4%) and
global-64 (~6%); the global schemes suffer because their counters cache
poorly (256KB/512KB of reach vs AISE's 2MB from the same 32KB cache).
"""

from repro.evalx.figures import figure7
from repro.evalx.report import render_figure

from conftest import save_artifact


def test_figure7(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure7, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure7.txt", text)
    print("\n" + text)

    aise = fig.series["aise"]
    g32 = fig.series["global32"]
    g64 = fig.series["global64"]
    assert aise["avg"] < 0.04  # paper: 1.6%
    assert aise["avg"] < g32["avg"] < g64["avg"]  # paper ordering
    # AISE never loses to global64 on any individual benchmark.
    for bench in runner.benchmarks:
        assert aise[bench] <= g64[bench] + 0.005, bench
