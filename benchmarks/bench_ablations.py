"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one design decision of the paper and shows the
quantity that justifies it:

* **BMT's uncached data MACs** (section 5.2) — caching them re-creates
  L2 pollution without helping misses enough.
* **Counter-cache reach** — AISE's 64-counters-per-line layout vs the
  global schemes' stamps is where the encryption-only gap comes from.
* **Split counters vs AISE** — same storage layout, so AISE's system
  benefits come at zero additional overhead (Table 1's last row).
"""

from dataclasses import replace

from repro.core.config import MachineConfig, aise_bmt_config
from repro.evalx.runner import Runner
from repro.sim.simulator import TimingSimulator
from repro.workloads.spec2k import spec_trace

from conftest import EVENTS, save_artifact

ABLATION_BENCHES = ("art", "mcf", "swim", "gcc")


def _overheads(config, label, events=EVENTS):
    from repro.core.config import baseline_config

    rows = {}
    for bench in ABLATION_BENCHES:
        trace = spec_trace(bench, events)
        base = TimingSimulator(baseline_config()).run(trace, warmup=0.25)
        result = TimingSimulator(config).run(trace, warmup=0.25)
        rows[bench] = result.overhead_vs(base)
    rows["avg"] = sum(rows.values()) / len(rows)
    return rows


def test_ablation_cache_data_macs(benchmark, results_dir):
    """BMT deliberately does NOT cache per-block data MACs."""

    def run():
        default = _overheads(aise_bmt_config(), "bmt")
        cached = _overheads(aise_bmt_config(cache_data_macs=True), "bmt+cached-macs")
        return default, cached

    default, cached = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: caching per-block data MACs in the L2 (BMT)"]
    for bench in list(default):
        lines.append(f"  {bench:6} uncached={default[bench]:6.1%} cached={cached[bench]:6.1%}")
    text = "\n".join(lines)
    save_artifact(results_dir, "ablation_data_mac_caching.txt", text)
    print("\n" + text)
    # Caching the MACs costs more than it saves on memory-bound workloads.
    assert cached["avg"] >= default["avg"] - 0.005


def test_ablation_counter_cache_size(benchmark, results_dir):
    """Halving/doubling the 32KB counter cache moves the global schemes
    far more than AISE (reach is the whole story)."""

    def run():
        out = {}
        for kb in (8, 32, 128):
            for enc in ("aise", "global64"):
                config = MachineConfig(encryption=enc, integrity="none")
                config = replace(config, counter_cache=replace(config.counter_cache,
                                                               size_bytes=kb * 1024))
                out[(enc, kb)] = _overheads(config, f"{enc}/{kb}KB")["avg"]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: counter cache size (avg overhead, 4 benches)"]
    for (enc, kb), value in sorted(out.items()):
        lines.append(f"  {enc:9} {kb:4}KB  {value:6.1%}")
    text = "\n".join(lines)
    save_artifact(results_dir, "ablation_counter_cache.txt", text)
    print("\n" + text)
    # AISE is nearly insensitive; global64 gains a lot from a bigger cache.
    aise_swing = out[("aise", 8)] - out[("aise", 128)]
    g64_swing = out[("global64", 8)] - out[("global64", 128)]
    assert g64_swing > aise_swing


def test_ablation_overlap_factor(benchmark, results_dir):
    """Robustness: the BMT-vs-MT conclusion holds across the OOO-overlap
    modelling knob (the one free parameter of the timing model)."""

    def run():
        out = {}
        trace = spec_trace("art", EVENTS)
        for overlap in (0.5, 0.7, 0.9):
            from repro.core.config import baseline_config

            base = TimingSimulator(baseline_config(), overlap=overlap).run(trace, warmup=0.25)
            mt = TimingSimulator(MachineConfig(encryption="aise", integrity="merkle"),
                                 overlap=overlap).run(trace, warmup=0.25)
            bmt = TimingSimulator(aise_bmt_config(), overlap=overlap).run(trace, warmup=0.25)
            out[overlap] = (mt.overhead_vs(base), bmt.overhead_vs(base))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: OOO overlap factor (art; MT vs BMT overhead)"]
    for overlap, (mt, bmt) in sorted(out.items()):
        lines.append(f"  overlap={overlap:.1f}  mt={mt:6.1%}  bmt={bmt:6.1%}")
    text = "\n".join(lines)
    save_artifact(results_dir, "ablation_overlap.txt", text)
    print("\n" + text)
    for mt, bmt in out.values():
        assert bmt < mt / 3


def test_ablation_dedicated_node_cache(benchmark, results_dir):
    """What would it cost to fix MT's pollution with hardware instead of
    shrinking the tree? A dedicated node cache vs the shared L2 vs BMT."""
    from repro.core.config import CacheConfig

    def run():
        out = {}
        out["mt shared-L2"] = _overheads(
            MachineConfig(encryption="aise", integrity="merkle"), "mt")
        out["mt +256KB node$"] = _overheads(
            MachineConfig(encryption="aise", integrity="merkle",
                          node_cache=CacheConfig(256 * 1024, 8, 10)), "mt+nc")
        out["aise+bmt"] = _overheads(aise_bmt_config(), "bmt")
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: dedicated Merkle-node cache vs shrinking the tree"]
    for label, rows in out.items():
        lines.append(f"  {label:16} avg={rows['avg']:6.1%}")
    text = "\n".join(lines)
    save_artifact(results_dir, "ablation_node_cache.txt", text)
    print("\n" + text)
    # Extra hardware helps MT, but the bonsai organization still wins
    # without spending any dedicated SRAM on nodes.
    assert out["mt +256KB node$"]["avg"] < out["mt shared-L2"]["avg"]
    assert out["aise+bmt"]["avg"] < out["mt +256KB node$"]["avg"] + 0.02


def test_ablation_multiprogramming(benchmark, results_dir):
    """Context-switch pressure: the encryption-only gap per access widens
    when several processes share the counter cache (CMP-era motivation)."""
    from repro.workloads.multiprogram import multiprogrammed_spec
    from repro.workloads.spec2k import spec_trace
    from repro.sim.simulator import TimingSimulator
    from repro.core.config import MachineConfig as MC

    def exposure_gap(trace):
        aise = TimingSimulator(MC(encryption="aise", integrity="none")).run(trace)
        g64 = TimingSimulator(MC(encryption="global64", integrity="none")).run(trace)
        return (g64.exposed_decrypt_cycles - aise.exposed_decrypt_cycles) / len(trace)

    def run():
        solo = exposure_gap(spec_trace("gcc", 30_000))
        mixed = exposure_gap(multiprogrammed_spec(("gcc", "vpr", "twolf"),
                                                  events_each=10_000, quantum=1500))
        return solo, mixed

    solo, mixed = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation: multiprogramming (exposed AES cycles/access, g64 - aise)\n"
            f"  solo gcc          {solo:8.1f} cy/access\n"
            f"  gcc+vpr+twolf     {mixed:8.1f} cy/access")
    save_artifact(results_dir, "ablation_multiprogramming.txt", text)
    print("\n" + text)
    assert mixed > solo
