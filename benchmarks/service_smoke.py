#!/usr/bin/env python3
"""Mixed-tenant smoke run against the sweep service.

Boots a real socket server (or connects to one via ``--port``), then
drives it the way CI wants to see it survive:

* tenant ``alice`` subscribes and sweeps the full canonical grid
  through the server-side process pool, writing the returned body to
  ``--out`` — which must byte-diff clean against the committed
  figure-6 golden (``benchmarks/golden/figure6-events30000.json`` when
  run at ``--events 30000``).
* tenant ``bob`` concurrently sweeps an overlapping subset on the
  warm single-machine path; every one of bob's cells must equal
  alice's copy of the same cell.
* alice's progress stream must validate as a well-formed per-job
  fleet record stream.

Exit 0 only if all three hold.

Run:  PYTHONPATH=src python benchmarks/service_smoke.py \
          --events 30000 --workers 0 --out service-sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading

from repro.obs.fleet import validate_progress_records
from repro.service import ServiceClient, serve_background

SUBSET_CONFIGS = ("base", "aise+bmt", "global64+mt")
SUBSET_BENCHMARKS = ("gzip", "eon", "art")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=30_000)
    parser.add_argument("--workers", type=int, default=0,
                        help="pool width for the full-grid sweep "
                             "(0 = one per core)")
    parser.add_argument("--out", default="service-sweep.json",
                        help="where to write the full-grid sweep body")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="connect to an already-running server "
                             "instead of booting one in-process")
    args = parser.parse_args(argv)

    handle = None
    if args.port is None:
        handle = serve_background()
        host, port = "127.0.0.1", handle.port
    else:
        host, port = args.host, args.port

    try:
        bob_result: dict = {}

        def bob_run():
            with ServiceClient(host, port, tenant="bob") as bob:
                bob_result["body"] = bob.sweep(
                    configs=list(SUBSET_CONFIGS),
                    benchmarks=list(SUBSET_BENCHMARKS),
                    events=args.events)

        bob_thread = threading.Thread(target=bob_run)
        with ServiceClient(host, port, tenant="alice") as alice:
            alice.subscribe()
            bob_thread.start()
            body = alice.sweep(events=args.events, workers=args.workers)
            bob_thread.join()
            status = alice.status()

        with open(args.out, "w") as f:
            f.write(json.dumps(body, indent=2, sort_keys=True) + "\n")
        print(f"alice: {len(body['cells'])} cells written to {args.out}")

        failures = []
        overlap = 0
        for key, cell in bob_result["body"]["cells"].items():
            overlap += 1
            if body["cells"].get(key) != cell:
                failures.append(f"tenant disagreement on cell {key}")
        print(f"bob: {overlap} overlapping cells cross-checked")

        jobs = {event["job"] for event in alice.events}
        for job in sorted(jobs):
            records = [event["record"] for event in alice.events
                       if event["job"] == job]
            for problem in validate_progress_records(records):
                failures.append(f"job {job} progress: {problem}")
        print(f"alice: progress streams for jobs {sorted(jobs)} validated")
        print(f"served: {status['served']}")

        for failure in failures:
            print(f"FAIL: {failure}")
        return 1 if failures else 0
    finally:
        if handle is not None:
            handle.stop()


if __name__ == "__main__":
    sys.exit(main())
