"""Figure 9: L2 cache pollution — fraction of L2 capacity holding data.

Paper shape: under a standard Merkle tree data holds only ~68% of the L2
on average (down to ~50% for art/swim); under BMT ~98%.
"""

from repro.evalx.figures import figure9
from repro.evalx.report import render_figure

from conftest import save_artifact


def test_figure9(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure9, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure9.txt", text)
    print("\n" + text)

    base = fig.series["no-integrity"]
    mt = fig.series["aise+mt"]
    bmt = fig.series["aise+bmt"]
    assert base["avg"] > 0.99  # no metadata at all
    assert mt["avg"] < 0.85  # visible pollution (paper: 68%)
    assert bmt["avg"] > 0.96  # BMT nodes are negligible (paper: 98%)
    # The memory-bound benchmarks are hit hardest.
    assert min(mt[b] for b in runner.benchmarks) < 0.70
