"""Extension sensitivity sweeps (robustness of the paper's conclusion).

Not figures from the paper — these vary the *machine* (L2 size, memory
latency, counter-cache size) to show the BMT/AISE conclusions are not
artifacts of the single design point the paper simulates.
"""

from repro.evalx.parallel import ResultCache
from repro.evalx.report import render_figure
from repro.evalx.sweeps import counter_cache_sweep, l2_size_sweep, memory_latency_sweep

from conftest import CACHE_DIR, WORKERS, save_artifact

BENCHES = ("art", "mcf", "swim", "gcc")
EVENTS = 30_000

# The machine sweeps ride the same engine knobs as the figure grid.
ENGINE = dict(workers=WORKERS,
              cache=ResultCache(CACHE_DIR) if CACHE_DIR is not None else None)


def test_sweep_l2_size(benchmark, results_dir):
    fig = benchmark.pedantic(
        l2_size_sweep, kwargs=dict(benches=BENCHES, events=EVENTS, **ENGINE),
        rounds=1, iterations=1
    )
    text = render_figure(fig)
    save_artifact(results_dir, "sweep_l2_size.txt", text)
    print("\n" + text)
    mt, bmt = fig.series["aise+mt"], fig.series["aise+bmt"]
    # BMT wins at every capacity; MT's penalty shrinks as the L2 grows.
    for key in mt:
        assert bmt[key] < mt[key]
    assert mt["4096KB"] < mt["512KB"]


def test_sweep_memory_latency(benchmark, results_dir):
    fig = benchmark.pedantic(
        memory_latency_sweep, kwargs=dict(benches=BENCHES, events=EVENTS, **ENGINE),
        rounds=1, iterations=1,
    )
    text = render_figure(fig)
    save_artifact(results_dir, "sweep_memory_latency.txt", text)
    print("\n" + text)
    for key in fig.series["aise+mt"]:
        assert fig.series["aise+bmt"][key] < fig.series["aise+mt"][key]


def test_sweep_counter_cache(benchmark, results_dir):
    fig = benchmark.pedantic(
        counter_cache_sweep, kwargs=dict(benches=BENCHES, events=EVENTS, **ENGINE),
        rounds=1, iterations=1,
    )
    text = render_figure(fig)
    save_artifact(results_dir, "sweep_counter_cache.txt", text)
    print("\n" + text)
    # AISE's overhead at the paper's 32KB point is already near-zero;
    # global64 still pays heavily even with 4x the capacity.
    assert fig.series["aise"]["32KB"] < 0.08
    assert fig.series["global64"]["128KB"] > fig.series["aise"]["128KB"]
