"""Table 1: qualitative comparison of counter-mode encryption approaches."""

from repro.evalx.report import render_table
from repro.evalx.tables import table1

from conftest import save_artifact


def test_table1(benchmark, results_dir):
    table = benchmark(table1)
    text = render_table(table)
    save_artifact(results_dir, "table1.txt", text)
    print("\n" + text)

    rows = {row["Encryption Approach"]: row for row in table.rows}
    assert rows["AISE"]["Other Issues"] == "None"
    assert rows["Counter (Virt Addr)"]["IPC Support"] == "No shared-memory IPC"
