"""Figure 11: sensitivity to MAC size (32..256 bits), MT vs BMT.

Paper shape: MT's average overhead grows near-exponentially with MAC size
(3.9% at 32b -> 53.2% at 256b) while BMT stays nearly flat (1.4% -> 2.4%);
L2 data occupancy falls 89.4% -> 36.3% for MT but only 99.5% -> 94.9% for
BMT.
"""

from repro.evalx.figures import MAC_SIZES, figure11a, figure11b
from repro.evalx.report import render_figure

from conftest import save_artifact


def test_figure11a_overhead(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure11a, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure11a.txt", text)
    print("\n" + text)

    mt = fig.series["aise+mt"]
    bmt = fig.series["aise+bmt"]
    # MT overhead grows steeply and monotonically with MAC size.
    values = [mt[f"{bits}b"] for bits in MAC_SIZES]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert mt["256b"] > 3 * mt["32b"]
    # BMT stays nearly flat (paper: +1pp across the whole range).
    assert bmt["256b"] - bmt["32b"] < 0.05
    assert bmt["256b"] < mt["256b"] / 5


def test_figure11b_cache_pollution(benchmark, runner, results_dir):
    fig = benchmark.pedantic(figure11b, args=(runner,), rounds=1, iterations=1)
    text = render_figure(fig)
    save_artifact(results_dir, "figure11b.txt", text)
    print("\n" + text)

    mt = fig.series["aise+mt"]
    bmt = fig.series["aise+bmt"]
    # Larger MACs squeeze data out of the L2 under MT...
    values = [mt[f"{bits}b"] for bits in MAC_SIZES]
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert mt["256b"] < 0.55  # paper: 36.3%
    # ...but hardly at all under BMT (paper: 94.9% at 256b).
    assert bmt["256b"] > 0.85
