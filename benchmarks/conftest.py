"""Shared fixtures for the benchmark harness.

One session-scoped :class:`~repro.evalx.runner.Runner` memoizes the
(21 benchmark x configuration) sweep so every figure bench draws from a
single simulation pass. Each bench also writes its regenerated rows to
``benchmarks/results/`` — the artifacts EXPERIMENTS.md is built from.

The runner rides the parallel engine (:mod:`repro.evalx.parallel`):

* ``REPRO_BENCH_WORKERS`` — process-pool width for the sweep (default 1
  = serial; 0 = one worker per core). The figure benches prefetch the
  whole grid through the pool before the first figure builds.
* ``REPRO_BENCH_CACHE`` — persistent result-cache directory (default
  ``benchmarks/results/cache``; set to ``off`` to disable). Cached cells
  make a re-run after an unrelated edit near-free; the cache keys on the
  timing model's source fingerprint, so simulator changes invalidate it
  automatically.
"""

from __future__ import annotations

import os

import pytest

from repro.evalx.figures import prefetch_figures
from repro.evalx.runner import Runner

# Trace length per benchmark. 60k keeps the full sweep to a few minutes
# while staying in the calibrated regime; raise via REPRO_BENCH_EVENTS for
# a higher-fidelity run (EXPERIMENTS.md used 120k).
EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS", "60000"))

WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_cache_env = os.environ.get("REPRO_BENCH_CACHE", os.path.join(RESULTS_DIR, "cache"))
CACHE_DIR = None if _cache_env.lower() in ("", "off", "0", "none") else _cache_env


@pytest.fixture(scope="session")
def runner() -> Runner:
    runner = Runner(events=EVENTS, workers=WORKERS, cache_dir=CACHE_DIR)
    if WORKERS != 1 or CACHE_DIR is not None:
        # One fan-out serves every figure bench; with a warm cache this
        # costs only the cache reads.
        prefetch_figures(runner)
    return runner


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, name)
    with open(path, "w") as f:
        f.write(text + "\n")
