"""Shared fixtures for the benchmark harness.

One session-scoped :class:`~repro.evalx.runner.Runner` memoizes the
(21 benchmark x configuration) sweep so every figure bench draws from a
single simulation pass. Each bench also writes its regenerated rows to
``benchmarks/results/`` — the artifacts EXPERIMENTS.md is built from.
"""

from __future__ import annotations

import os

import pytest

from repro.evalx.runner import Runner

# Trace length per benchmark. 60k keeps the full sweep to a few minutes
# while staying in the calibrated regime; raise via REPRO_BENCH_EVENTS for
# a higher-fidelity run (EXPERIMENTS.md used 120k).
EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS", "60000"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(events=EVENTS)


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, name)
    with open(path, "w") as f:
        f.write(text + "\n")
