#!/usr/bin/env python3
"""Merkle engine benchmark: eager vs incremental trees, sparse touches.

Two sections, one claim each:

``matched``
    Both engines over the *same* modest covered range (default 4 MB).
    Prices ``build()`` (eager: hash everything; incremental: O(1) zero
    anchor) and a seeded sparse-touch update/verify workload (eager:
    full root walk per update; incremental: one parent patch, coalesced
    drains). The committed numbers are the two *speedup ratios* —
    machine-independent, unlike absolute ops/sec.

``sparse_gb``
    The incremental engine alone over a multi-GB covered range (default
    4 GB) the eager tree cannot even build in reasonable time — the
    :class:`~repro.mem.dram.BlockMemory` is sparse, so only touched
    blocks exist. The committed guard is the *scale ratio*: sparse-touch
    ops/sec at 4 GB over ops/sec at the matched range. With lazy
    subtrees a touch costs only the tree *height* (logarithmic in
    covered size), so the ratio degrades gently with scale; an
    accidental O(covered) scan anywhere in the update path drags it
    toward 0 and fails the check.

Emits ``BENCH_merkle.json`` (committed at the repo root). ``--check``
re-runs and fails if any committed ratio regressed more than
``--tolerance`` (default 40% — these are short timed sections).

Run:  PYTHONPATH=src python benchmarks/bench_merkle.py [--ops N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time

from repro.crypto.mac import Blake2Mac
from repro.integrity.geometry import TreeGeometry
from repro.integrity.incremental import IncrementalMerkleTree
from repro.integrity.merkle import MerkleTree
from repro.mem.dram import BlockMemory

BLOCK = 64
MB = 1 << 20
GB = 1 << 30
MAC_BYTES = 16
KEY = b"bench-merkle-key"
SEED = 20070412  # the paper's MICRO submission year, pinned for determinism

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_merkle.json")


def make_tree(cls, covered_bytes: int, **kw):
    geometry = TreeGeometry(0, covered_bytes, covered_bytes, MAC_BYTES)
    memory = BlockMemory(geometry.nodes_end + 4096)
    return cls(memory, geometry, Blake2Mac(KEY, MAC_BYTES * 8), **kw), memory


def sparse_touch(tree, memory, covered_bytes: int, ops: int,
                 flush_every: int = 64, burst: int = 8) -> float:
    """Seeded bursty sparse update/verify traffic; returns elapsed seconds.

    Touches come in bursts of ``burst`` consecutive blocks at seeded
    random locations — write traffic is bursty in practice (a cache
    writes back a dirty region, a page gets filled), and bursts are
    what the incremental tree's coalescing merges: siblings under one
    parent cost one node write instead of ``burst`` root walks. 90%
    writes, 10% verifies, with a periodic full flush so the queue
    drains like a real machine's (the eager tree's ``flush_pending``
    is a no-op).
    """
    rng = random.Random(SEED)
    blocks = covered_bytes // BLOCK
    addresses = []
    while len(addresses) < ops:
        start_block = rng.randrange(max(1, blocks - burst))
        addresses.extend((start_block + i) * BLOCK for i in range(burst))
    addresses = addresses[:ops]
    start = time.perf_counter()
    for i, addr in enumerate(addresses):
        if i % 10 == 9:
            tree.verify(addr)
        else:
            data = bytes([i & 0xFF]) * BLOCK
            memory.write_block(addr, data)
            tree.update(addr, data)
        if i % flush_every == flush_every - 1:
            tree.flush_pending()
    tree.flush_pending()
    return time.perf_counter() - start


def run_benchmark(matched_bytes: int, sparse_bytes: int, ops: int) -> dict:
    report = {
        "meta": {
            "matched_bytes": matched_bytes,
            "sparse_bytes": sparse_bytes,
            "ops": ops,
            "python": platform.python_version(),
            "note": "ops/sec are machine-specific; the committed guards "
                    "are the speedup and scale ratios",
        },
    }

    # -- matched range: head to head ----------------------------------------
    eager, eager_mem = make_tree(MerkleTree, matched_bytes)
    start = time.perf_counter()
    eager.build()
    eager_build = time.perf_counter() - start

    lazy, lazy_mem = make_tree(IncrementalMerkleTree, matched_bytes)
    start = time.perf_counter()
    lazy.build()
    lazy_build = time.perf_counter() - start

    eager_elapsed = sparse_touch(eager, eager_mem, matched_bytes, ops)
    lazy_elapsed = sparse_touch(lazy, lazy_mem, matched_bytes, ops)
    lazy_matched_ops = ops / lazy_elapsed
    report["matched"] = {
        "eager": {
            "build_s": round(eager_build, 4),
            "ops_per_sec": round(ops / eager_elapsed, 1),
        },
        "incremental": {
            "build_s": round(lazy_build, 6),
            "ops_per_sec": round(lazy_matched_ops, 1),
            "coalesce_ratio": round(lazy.coalesce_ratio(), 4),
            "materialized_fraction": round(lazy.materialized_fraction(), 4),
        },
        "build_speedup": round(eager_build / max(lazy_build, 1e-9), 1),
        "update_speedup": round(eager_elapsed / lazy_elapsed, 3),
    }

    # -- multi-GB sparse: incremental only -----------------------------------
    big, big_mem = make_tree(IncrementalMerkleTree, sparse_bytes)
    start = time.perf_counter()
    big.build()
    big_build = time.perf_counter() - start
    big_elapsed = sparse_touch(big, big_mem, sparse_bytes, ops)
    big_ops = ops / big_elapsed
    report["sparse_gb"] = {
        "build_s": round(big_build, 6),
        "ops_per_sec": round(big_ops, 1),
        "materialized_fraction": round(big.materialized_fraction(), 8),
        "pending_after_flush": big.pending_updates(),
        # Touch cost may grow only with tree *height* (logarithmic: 13
        # levels at 4 GB vs 8 at 4 MB), never with the covered range
        # itself — lazy subtrees make untouched space free. Modest
        # degradation below 1.0 is the extra height; collapse toward 0
        # means an accidental O(covered) scan in the update path.
        "scale_ratio": round(big_ops / lazy_matched_ops, 3),
    }
    return report


def check_regression(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Committed ratios that fell more than ``tolerance`` below baseline."""
    failures = []
    checks = (
        ("matched/update_speedup",
         lambda r: r["matched"]["update_speedup"]),
        ("matched/build_speedup",
         lambda r: r["matched"]["build_speedup"]),
        ("sparse_gb/scale_ratio",
         lambda r: r["sparse_gb"]["scale_ratio"]),
    )
    for name, get in checks:
        try:
            committed = get(baseline)
        except KeyError:
            failures.append(f"{name}: missing from baseline")
            continue
        now = get(current)
        floor = committed * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{name}: {now:.2f} < {floor:.2f} "
                f"({committed:.2f} committed, -{tolerance:.0%} tolerance)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--matched-mb", type=int, default=4,
                        help="head-to-head covered range in MB (default: 4)")
    parser.add_argument("--sparse-gb", type=int, default=4,
                        help="incremental-only covered range in GB (default: 4)")
    parser.add_argument("--ops", type=int, default=4000,
                        help="sparse-touch operations per section")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path (default: BENCH_merkle.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare ratios against --baseline; exit 1 on regression")
    parser.add_argument("--baseline", default=DEFAULT_OUT,
                        help="committed report to --check against")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed ratio regression for --check")
    args = parser.parse_args(argv)

    report = run_benchmark(args.matched_mb * MB, args.sparse_gb * GB, args.ops)
    matched, sparse = report["matched"], report["sparse_gb"]
    print(f"matched {args.matched_mb} MB:")
    print(f"  build   eager {matched['eager']['build_s']:.3f}s   "
          f"incremental {matched['incremental']['build_s']:.6f}s   "
          f"{matched['build_speedup']:,.0f}x")
    print(f"  updates eager {matched['eager']['ops_per_sec']:>10,.0f}/s   "
          f"incremental {matched['incremental']['ops_per_sec']:>10,.0f}/s   "
          f"{matched['update_speedup']:.2f}x")
    print(f"sparse {args.sparse_gb} GB (incremental only):")
    print(f"  build {sparse['build_s']:.6f}s   "
          f"updates {sparse['ops_per_sec']:,.0f}/s   "
          f"materialized {sparse['materialized_fraction']:.2e}   "
          f"scale ratio {sparse['scale_ratio']:.2f}")

    # Never clobber the baseline with a smoke run's numbers.
    if not (args.check and os.path.abspath(args.out) == os.path.abspath(args.baseline)):
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"report written to {args.out}")

    if args.check:
        with open(args.baseline) as f:
            baseline = json.load(f)
        failures = check_regression(report, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no ratio regression beyond {args.tolerance:.0%} vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
