#!/usr/bin/env python3
"""Throughput benchmark: the fastpath engine vs the reference loops.

Measures accesses/sec on both halves of the library — the functional
machine (real crypto, ``read_block``/``write_block``) and the trace-
driven timing model (``TimingSimulator.run``) — once with
``repro.fastpath`` forced off (the pre-fastpath reference loops, kept
in-tree for exactly this comparison) and once forced on. The timing
model is priced under two protocols: ``timing`` (one simulator, warm
repeated runs — the per-event batched engine) and ``timing_compiled``
(fresh simulator per run, cold caches — the sweep-cell protocol, where
the trace pre-compiler (:mod:`repro.fastpath.compiled`) engages and its
memoized lowering is replayed per run, exactly as a grid sweep replays
it per cell). All runs happen in the same process on the same inputs,
so the *speedup ratios* are meaningful on any machine even though
absolute accesses/sec are not.

Emits ``BENCH_throughput.json`` (the repo's perf trajectory; committed
at the repo root). ``--check`` re-runs the benchmark and fails if a
speedup ratio regressed more than ``--tolerance`` (default 20%) against
the committed baseline — the CI smoke job runs exactly that on a small
trace.

Run:  PYTHONPATH=src python benchmarks/bench_throughput.py [--events N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro import fastpath
from repro.api import TimingSimulator, build_machine, load_trace

BLOCK = 64
PAGE = 4096

FUNCTIONAL_PRESETS = ("aise", "aise+bmt")
TIMING_PRESETS = ("base", "aise", "aise+bmt", "global64+mt")

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_throughput.json")


def _functional_accesses_per_sec(
    preset: str, pages: int, rounds: int, repeats: int
) -> float:
    """Accesses/sec for read-heavy traffic on a warm functional machine."""
    machine = build_machine(preset, physical_bytes=pages * PAGE)
    addresses = [page * PAGE + line * BLOCK
                 for page in range(pages) for line in (0, 17, 42)]
    payload = bytes(range(64))
    # Warm every page off the clock: first touch re-encrypts the whole
    # page (counter initialization), which is a boot cost, not steady
    # state throughput.
    for addr in addresses:
        machine.write_block(addr, payload)

    best = 0.0
    for _ in range(repeats):
        accesses = 0
        start = time.perf_counter()
        for round_ in range(rounds):
            for i, addr in enumerate(addresses):
                if (i + round_) % 8 == 0:
                    machine.write_block(addr, payload)
                else:
                    machine.read_block(addr)
                accesses += 1
        elapsed = time.perf_counter() - start
        best = max(best, accesses / elapsed)
    return best


def _timing_accesses_per_sec(preset: str, trace, repeats: int) -> float:
    """Trace events/sec through ``TimingSimulator.run`` for one preset.

    One simulator, repeated runs: after the first, caches are warm, so
    this prices the per-event engines (the compiled replay requires cold
    caches and bows out — the ``timing`` section gates it off explicitly
    to keep its baseline comparable across reports).
    """
    sim = TimingSimulator(build_machine(preset, boot=False).config)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        sim.run(trace)
        elapsed = time.perf_counter() - start
        best = max(best, len(trace) / elapsed)
    return best


def _timing_cold_accesses_per_sec(preset: str, trace, repeats: int) -> float:
    """Trace events/sec with a *fresh* simulator per run (cold caches).

    The sweep-cell protocol — every ``repro.evalx`` grid cell starts
    cold — and the one where the compiled trace replay engages. The
    trace's lowering is memoized across runs, exactly as a sweep
    replays it across cells.
    """
    config = build_machine(preset, boot=False).config
    best = 0.0
    for _ in range(repeats):
        sim = TimingSimulator(config)
        start = time.perf_counter()
        sim.run(trace)
        elapsed = time.perf_counter() - start
        best = max(best, len(trace) / elapsed)
    return best


def run_benchmark(events: int, pages: int, rounds: int, repeats: int) -> dict:
    trace = load_trace("art", events)
    trace.decoded()  # pre-decode off the clock; both paths share it
    report = {
        "meta": {
            "events": events,
            "functional_pages": pages,
            "functional_rounds": rounds,
            "python": platform.python_version(),
            "note": "accesses/sec are machine-specific; speedup ratios "
                    "(fastpath vs in-process reference) are comparable "
                    "across machines",
        },
        "functional": {},
        "timing": {},
        "timing_compiled": {},
    }
    for preset in FUNCTIONAL_PRESETS:
        with fastpath.forced(False):
            reference = _functional_accesses_per_sec(preset, pages, rounds, repeats)
        with fastpath.forced(True):
            fast = _functional_accesses_per_sec(preset, pages, rounds, repeats)
        report["functional"][preset] = {
            "reference_accesses_per_sec": round(reference, 1),
            "fastpath_accesses_per_sec": round(fast, 1),
            "speedup": round(fast / reference, 3),
        }
    for preset in TIMING_PRESETS:
        with fastpath.forced(False):
            reference = _timing_accesses_per_sec(preset, trace, repeats)
        with fastpath.forced(True), fastpath.forced_compiled(False):
            fast = _timing_accesses_per_sec(preset, trace, repeats)
        report["timing"][preset] = {
            "reference_accesses_per_sec": round(reference, 1),
            "fastpath_accesses_per_sec": round(fast, 1),
            "speedup": round(fast / reference, 3),
        }
    for preset in TIMING_PRESETS:
        with fastpath.forced(False):
            reference = _timing_cold_accesses_per_sec(preset, trace, repeats)
        with fastpath.forced(True), fastpath.forced_compiled(False):
            per_event = _timing_cold_accesses_per_sec(preset, trace, repeats)
        with fastpath.forced(True), fastpath.forced_compiled(True):
            # Lower off the clock (a sweep pays it once per trace, then
            # replays it across every cell), then time warm replays.
            _timing_cold_accesses_per_sec(preset, trace, 1)
            compiled = _timing_cold_accesses_per_sec(preset, trace, repeats)
        report["timing_compiled"][preset] = {
            "reference_accesses_per_sec": round(reference, 1),
            "fastpath_accesses_per_sec": round(per_event, 1),
            "compiled_accesses_per_sec": round(compiled, 1),
            "speedup": round(compiled / reference, 3),
        }
    return report


def check_regression(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Speedup ratios that fell more than ``tolerance`` below the baseline."""
    failures = []
    for section in ("functional", "timing", "timing_compiled"):
        for preset, cell in baseline.get(section, {}).items():
            now = current.get(section, {}).get(preset)
            if now is None:
                failures.append(f"{section}/{preset}: missing from current run")
                continue
            floor = cell["speedup"] * (1.0 - tolerance)
            if now["speedup"] < floor:
                failures.append(
                    f"{section}/{preset}: speedup {now['speedup']:.2f}x < "
                    f"{floor:.2f}x ({cell['speedup']:.2f}x committed, "
                    f"-{tolerance:.0%} tolerance)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=30_000,
                        help="timing-path trace length (default: 30000)")
    parser.add_argument("--pages", type=int, default=24,
                        help="functional-path working set in pages")
    parser.add_argument("--rounds", type=int, default=40,
                        help="functional-path passes over the working set")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per preset and mode (best is kept)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path (default: BENCH_throughput.json)")
    parser.add_argument("--check", action="store_true",
                        help="also compare speedups against --baseline; "
                             "exit 1 on regression")
    parser.add_argument("--baseline", default=DEFAULT_OUT,
                        help="committed report to --check against "
                             "(default: BENCH_throughput.json)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed speedup regression for --check")
    args = parser.parse_args(argv)

    report = run_benchmark(args.events, args.pages, args.rounds, args.repeats)
    for section in ("functional", "timing", "timing_compiled"):
        for preset, cell in report[section].items():
            top = cell.get("compiled_accesses_per_sec",
                           cell["fastpath_accesses_per_sec"])
            print(f"{section:15} {preset:12} "
                  f"ref {cell['reference_accesses_per_sec']:>12,.0f}/s   "
                  f"fast {top:>12,.0f}/s   "
                  f"{cell['speedup']:.2f}x")

    # Never clobber the baseline with a smoke run's numbers.
    if not (args.check and os.path.abspath(args.out) == os.path.abspath(args.baseline)):
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"report written to {args.out}")

    if args.check:
        with open(args.baseline) as f:
            baseline = json.load(f)
        failures = check_regression(report, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no speedup regression beyond {args.tolerance:.0%} "
              f"vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
