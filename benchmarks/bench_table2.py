"""Table 2: in-memory storage overheads — must match the paper exactly."""

import pytest

from repro.evalx.report import render_table
from repro.evalx.tables import PAPER_TABLE2, table2

from conftest import save_artifact


def test_table2(benchmark, results_dir):
    table = benchmark(table2)
    text = render_table(table)
    save_artifact(results_dir, "table2.txt", text)
    print("\n" + text)

    for row in table.rows:
        bits = int(row["MAC size"].rstrip("b"))
        paper = PAPER_TABLE2[(bits, row["Scheme"])]
        assert row["MT %"] == pytest.approx(paper[0], abs=0.01)
        assert row["Page Root %"] == pytest.approx(paper[1], abs=0.01)
        assert row["Counters %"] == pytest.approx(paper[2], abs=0.01)
        assert row["Total %"] == pytest.approx(paper[3], abs=0.01)
