"""Microbenchmarks of the library's hot paths.

Not a paper artifact — these track the performance of the substrates
themselves (crypto, caches, trees, the functional datapath, and the
timing simulator's event loop), which bounds how big a sweep the
evaluation harness can afford.
"""

from repro.core import MachineConfig, SecureMemorySystem, aise_bmt_config
from repro.crypto.aes import AES
from repro.crypto.ctr_mode import CounterModeCipher
from repro.crypto.hmac_sha1 import hmac_sha1
from repro.crypto.mac import Blake2Mac
from repro.crypto.sha1 import sha1
from repro.integrity.geometry import TreeGeometry
from repro.integrity.merkle import MerkleTree
from repro.mem.cache import SetAssociativeCache
from repro.mem.dram import BlockMemory
from repro.sim.simulator import TimingSimulator
from repro.workloads.synthetic import streaming_trace


class TestCryptoThroughput:
    def test_aes_encrypt_block(self, benchmark):
        cipher = AES(bytes(16))
        block = bytes(range(16))
        benchmark(cipher.encrypt_block, block)

    def test_sha1_1kb(self, benchmark):
        data = bytes(1024)
        benchmark(sha1, data)

    def test_hmac_sha1_64b(self, benchmark):
        benchmark(hmac_sha1, b"key", bytes(64))

    def test_blake2_mac_64b(self, benchmark):
        mac = Blake2Mac(b"key", 128)
        benchmark(mac.compute, bytes(64))

    def test_counter_mode_block_fast(self, benchmark):
        cipher = CounterModeCipher(b"k" * 16, fast=True)
        seeds = [1, 2, 3, 4]
        benchmark(cipher.encrypt, bytes(64), seeds)

    def test_counter_mode_block_aes(self, benchmark):
        cipher = CounterModeCipher(b"k" * 16, fast=False)
        seeds = [1, 2, 3, 4]
        benchmark(cipher.encrypt, bytes(64), seeds)


class TestStructures:
    def test_l2_lookup_hit(self, benchmark):
        cache = SetAssociativeCache(1 << 20, 8)
        cache.insert(0)
        benchmark(cache.lookup, 0)

    def test_l2_insert_evict(self, benchmark):
        cache = SetAssociativeCache(64 * 1024, 8)
        addresses = iter(range(0, 1 << 30, 64))

        def fill():
            cache.insert(next(addresses))

        benchmark(fill)

    def test_merkle_verify_cached_chain(self, benchmark):
        geometry = TreeGeometry(0, 1 << 20, 1 << 20, 16)
        memory = BlockMemory(geometry.nodes_end + 4096)
        tree = MerkleTree(memory, geometry, Blake2Mac(b"k", 128))
        tree.build()
        tree.verify(0)
        benchmark(tree.verify, 0)

    def test_merkle_update(self, benchmark):
        geometry = TreeGeometry(0, 1 << 20, 1 << 20, 16)
        memory = BlockMemory(geometry.nodes_end + 4096)
        tree = MerkleTree(memory, geometry, Blake2Mac(b"k", 128))
        tree.build()
        data = bytes(64)
        benchmark(tree.update, 0, data)


class TestFunctionalDatapath:
    def test_protected_write(self, benchmark):
        machine = SecureMemorySystem(aise_bmt_config(physical_bytes=64 * 4096))
        machine.boot()
        machine.write_block(0, bytes(64))  # allocate the page once
        benchmark(machine.write_block, 0, bytes(range(64)))

    def test_protected_read(self, benchmark):
        machine = SecureMemorySystem(aise_bmt_config(physical_bytes=64 * 4096))
        machine.boot()
        machine.write_block(0, bytes(range(64)))
        benchmark(machine.read_block, 0)

    def test_unprotected_write_baseline(self, benchmark):
        machine = SecureMemorySystem(
            MachineConfig(physical_bytes=64 * 4096, encryption="none", integrity="none")
        )
        machine.boot()
        benchmark(machine.write_block, 0, bytes(range(64)))


class TestSimulatorThroughput:
    def test_events_per_second_base(self, benchmark):
        trace = streaming_trace(20_000, 4 << 20)
        from repro.core import baseline_config

        benchmark.pedantic(
            lambda: TimingSimulator(baseline_config()).run(trace), rounds=3, iterations=1
        )

    def test_events_per_second_full_protection(self, benchmark):
        trace = streaming_trace(20_000, 4 << 20)
        benchmark.pedantic(
            lambda: TimingSimulator(aise_bmt_config()).run(trace), rounds=3, iterations=1
        )


class TestSha256Throughput:
    def test_sha256_1kb(self, benchmark):
        from repro.crypto.sha256 import sha256

        benchmark(sha256, bytes(1024))

    def test_hmac_sha256_64b(self, benchmark):
        from repro.crypto.sha256 import hmac_sha256

        benchmark(hmac_sha256, b"key", bytes(64))
