"""Every example script must run clean (the examples are the tutorial)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    ("quickstart.py", []),
    ("secure_os_workflow.py", []),
    ("attack_detection.py", []),
    ("performance_study.py", ["5000"]),
    ("mac_size_tradeoff.py", ["4000"]),
    ("counter_prediction.py", []),
    ("hibernation_attack.py", []),
    ("record_and_replay.py", []),
]


@pytest.mark.parametrize("script,args", EXAMPLES)
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    # Examples are held to the facade: any use of a deprecated
    # constructor (or other DeprecationWarning) is a failure.
    result = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", path, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_detection():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "spoofing detected" in result.stdout
    assert "replay detected" in result.stdout
    assert "21.6%" in result.stdout or "21.55" in result.stdout


def test_attack_matrix_output_shape():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "attack_detection.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    lines = [l for l in result.stdout.splitlines() if l.startswith(("none", "MAC-only"))]
    assert any("missed" in l for l in lines)  # the unprotected/MAC-only rows
