"""Address geometry helpers and the Geometry dataclass."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.layout import (
    BLOCK_SIZE,
    BLOCKS_PER_PAGE,
    PAGE_SIZE,
    Geometry,
    block_address,
    block_in_page,
    block_index,
    block_offset,
    chunk_id,
    page_address,
    page_index,
    page_offset,
)


class TestConstants:
    def test_paper_geometry(self):
        assert BLOCK_SIZE == 64
        assert PAGE_SIZE == 4096
        assert BLOCKS_PER_PAGE == 64


class TestHelpers:
    def test_block_helpers(self):
        assert block_index(0) == 0
        assert block_index(64) == 1
        assert block_address(100) == 64
        assert block_offset(100) == 36

    def test_page_helpers(self):
        assert page_index(4095) == 0
        assert page_index(4096) == 1
        assert page_address(5000) == 4096
        assert page_offset(5000) == 904

    def test_block_in_page(self):
        assert block_in_page(0) == 0
        assert block_in_page(63) == 0
        assert block_in_page(64) == 1
        assert block_in_page(4095) == 63
        assert block_in_page(4096) == 0

    def test_chunk_id(self):
        assert chunk_id(0) == 0
        assert chunk_id(16) == 1
        assert chunk_id(48) == 3
        assert chunk_id(63) == 3
        assert chunk_id(64) == 0


class TestGeometry:
    def test_defaults(self):
        g = Geometry()
        assert g.physical_bytes == 1 << 30
        assert g.swap_bytes == 1 << 30  # defaults to physical
        assert g.physical_pages == (1 << 30) // 4096

    def test_explicit_swap(self):
        g = Geometry(physical_bytes=1 << 20, swap_bytes=1 << 21)
        assert g.swap_pages == 2 * g.physical_pages

    def test_rejects_partial_pages(self):
        with pytest.raises(ValueError):
            Geometry(physical_bytes=5000)
        with pytest.raises(ValueError):
            Geometry(physical_bytes=1 << 20, swap_bytes=5000)


@settings(max_examples=50, deadline=None)
@given(addr=st.integers(min_value=0, max_value=2**40))
def test_decomposition_property(addr):
    assert block_address(addr) + block_offset(addr) == addr
    assert page_address(addr) + page_offset(addr) == addr
    assert page_index(addr) * (PAGE_SIZE // BLOCK_SIZE) + block_in_page(addr) == block_index(addr)
