"""Memory bus: serialization, queueing, and utilization accounting."""

import pytest

from repro.mem.bus import MemoryBus


class TestScheduling:
    def test_idle_bus_starts_immediately(self):
        bus = MemoryBus(cycles_per_block=16)
        start, end = bus.request(100)
        assert (start, end) == (100, 116)

    def test_busy_bus_queues(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(100)
        start, end = bus.request(105)
        assert (start, end) == (116, 132)

    def test_gap_leaves_bus_idle(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        start, _ = bus.request(1000)
        assert start == 1000

    def test_back_to_back_saturation(self):
        bus = MemoryBus(cycles_per_block=10)
        for i in range(10):
            bus.request(0)
        assert bus.free_at == 100


class TestStats:
    def test_busy_cycles_accumulate(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        bus.request(0)
        assert bus.stats.busy_cycles == 32
        assert bus.stats.transfers == 2

    def test_queue_cycles(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        bus.request(0)  # waits 16
        assert bus.stats.queue_cycles == 16

    def test_utilization(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        assert bus.stats.utilization(64) == pytest.approx(0.25)
        assert bus.stats.utilization(0) == 0.0

    def test_utilization_clamped_to_one(self):
        bus = MemoryBus(cycles_per_block=100)
        bus.request(0)
        assert bus.stats.utilization(10) == 1.0

    def test_transfer_kinds(self):
        bus = MemoryBus()
        bus.request(0, "data")
        bus.request(0, "merkle")
        bus.request(0, "merkle")
        assert bus.stats.transfers_by_kind == {"data": 1, "merkle": 2}

    def test_reset(self):
        bus = MemoryBus()
        bus.request(0)
        bus.reset()
        assert bus.free_at == 0
        assert bus.stats.transfers == 0
