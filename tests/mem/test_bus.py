"""Memory bus: serialization, queueing, and utilization accounting."""

import pytest

from repro.mem.bus import MemoryBus


class TestScheduling:
    def test_idle_bus_starts_immediately(self):
        bus = MemoryBus(cycles_per_block=16)
        start, end = bus.request(100)
        assert (start, end) == (100, 116)

    def test_busy_bus_queues(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(100)
        start, end = bus.request(105)
        assert (start, end) == (116, 132)

    def test_gap_leaves_bus_idle(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        start, _ = bus.request(1000)
        assert start == 1000

    def test_back_to_back_saturation(self):
        bus = MemoryBus(cycles_per_block=10)
        for i in range(10):
            bus.request(0)
        assert bus.free_at == 100


class TestStats:
    def test_busy_cycles_accumulate(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        bus.request(0)
        assert bus.stats.busy_cycles == 32
        assert bus.stats.transfers == 2

    def test_queue_cycles(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        bus.request(0)  # waits 16
        assert bus.stats.queue_cycles == 16

    def test_utilization(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0)
        assert bus.stats.utilization(64) == pytest.approx(0.25)
        assert bus.stats.utilization(0) == 0.0

    def test_utilization_clamped_to_one(self):
        bus = MemoryBus(cycles_per_block=100)
        bus.request(0)
        assert bus.stats.utilization(10) == 1.0

    def test_transfer_kinds(self):
        bus = MemoryBus()
        bus.request(0, "data")
        bus.request(0, "merkle")
        bus.request(0, "merkle")
        assert bus.stats.transfers_by_kind == {"data": 1, "merkle": 2}

    def test_reset(self):
        bus = MemoryBus()
        bus.request(0)
        bus.reset()
        assert bus.free_at == 0
        assert bus.stats.transfers == 0


class TestCredit:
    def test_credit_settles_batched_tallies(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.credit(3, 48.0, 5.0, {"data": 2, "merkle": 1}, 90.0)
        assert bus.stats.transfers == 3
        assert bus.stats.busy_cycles == 48.0
        assert bus.stats.queue_cycles == 5.0
        assert bus.stats.transfers_by_kind == {"data": 2, "merkle": 1}
        assert bus.free_at == 90.0

    def test_credit_never_moves_bus_time_backwards(self):
        """Regression: settling a batch out of order must clamp, not

        overwrite — ``_free_at = free_at`` unconditionally let a stale
        batch rewind bus time behind already-settled traffic, making the
        next request start inside a block the bus already shipped.
        """
        bus = MemoryBus(cycles_per_block=16)
        bus.request(100)  # bus busy until 116
        bus.credit(1, 16.0, 0.0, {"data": 1}, 50.0)  # stale batch
        assert bus.free_at == 116
        start, _ = bus.request(100)
        assert start == 116  # still queues behind the live transfer

    def test_interleaved_credit_and_request(self):
        bus = MemoryBus(cycles_per_block=10)
        bus.request(0)  # busy until 10
        bus.credit(2, 20.0, 0.0, {"data": 2}, 40.0)  # later batch wins
        start, end = bus.request(5)
        assert (start, end) == (40, 50)
        bus.credit(1, 10.0, 0.0, {"data": 1}, 45.0)  # stale again
        start, _ = bus.request(5)
        assert start == 50
        assert bus.stats.transfers == 6  # three live + three credited
