"""BlockMemory (functional DRAM/disk) and the DRAM timing model."""

import pytest

from repro.mem.dram import BlockMemory, DramTiming


class TestBlockMemory:
    def test_unwritten_reads_as_zero(self):
        memory = BlockMemory(4096)
        assert memory.read_block(0) == bytes(64)

    def test_write_read_roundtrip(self):
        memory = BlockMemory(4096)
        memory.write_block(128, b"\xab" * 64)
        assert memory.read_block(128) == b"\xab" * 64

    def test_rejects_unaligned(self):
        memory = BlockMemory(4096)
        with pytest.raises(ValueError):
            memory.read_block(1)
        with pytest.raises(ValueError):
            memory.write_block(63, bytes(64))

    def test_rejects_out_of_range(self):
        memory = BlockMemory(4096)
        with pytest.raises(IndexError):
            memory.read_block(4096)
        with pytest.raises(IndexError):
            memory.read_block(-64)

    def test_rejects_wrong_write_size(self):
        memory = BlockMemory(4096)
        with pytest.raises(ValueError):
            memory.write_block(0, b"short")

    def test_rejects_non_block_size(self):
        with pytest.raises(ValueError):
            BlockMemory(100)

    def test_corrupt_flips_content(self):
        memory = BlockMemory(4096)
        memory.write_block(0, b"\x0f" * 64)
        old = memory.corrupt(0)
        assert old == b"\x0f" * 64
        assert memory.read_block(0) == b"\xf0" * 64

    def test_corrupt_with_payload(self):
        memory = BlockMemory(4096)
        memory.corrupt(0, b"\x99" * 64)
        assert memory.read_block(0) == b"\x99" * 64

    def test_corrupt_aligns_address(self):
        memory = BlockMemory(4096)
        memory.write_block(64, b"\x01" * 64)
        memory.corrupt(100)  # inside block 1
        assert memory.read_block(64) != b"\x01" * 64

    def test_populated_blocks(self):
        memory = BlockMemory(4096)
        memory.write_block(0, bytes(64))
        memory.write_block(64, bytes(64))
        assert memory.populated_blocks() == 2


class TestDramTiming:
    def test_paper_latency(self):
        dram = DramTiming()
        assert dram.read() == 200
        assert dram.write() == 200

    def test_counters(self):
        dram = DramTiming(access_latency=100)
        dram.read()
        dram.read()
        dram.write()
        assert (dram.reads, dram.writes) == (2, 1)
