"""Set-associative cache: LRU, eviction, classes, occupancy accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import DATA, MERKLE, SetAssociativeCache


def direct_mapped(sets: int = 4) -> SetAssociativeCache:
    return SetAssociativeCache(sets * 64, assoc=1)


def two_way(sets: int = 4) -> SetAssociativeCache:
    return SetAssociativeCache(sets * 2 * 64, assoc=2)


class TestGeometry:
    def test_paper_l2_dimensions(self):
        l2 = SetAssociativeCache(1024 * 1024, 8, 64)
        assert l2.num_sets == 2048
        assert l2.num_lines == 16384

    def test_counter_cache_dimensions(self):
        cc = SetAssociativeCache(32 * 1024, 16, 64)
        assert cc.num_sets == 32
        assert cc.num_lines == 512

    def test_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 64)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = two_way()
        assert not cache.lookup(0)
        cache.insert(0)
        assert cache.lookup(0)

    def test_same_block_different_offsets(self):
        cache = two_way()
        cache.insert(0)
        assert cache.lookup(63)
        assert not cache.lookup(64)

    def test_lookup_does_not_allocate(self):
        cache = two_way()
        cache.lookup(0)
        assert not cache.contains(0)

    def test_stats(self):
        cache = two_way()
        cache.lookup(0)
        cache.insert(0)
        cache.lookup(0)
        cache.lookup(0)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.miss_rate == pytest.approx(1 / 3)


class TestLru:
    def test_evicts_least_recent(self):
        cache = two_way(sets=1)
        cache.insert(0)  # set 0
        cache.insert(64)  # set 0
        cache.lookup(0)  # 0 becomes MRU
        victim = cache.insert(128)
        assert victim.block == 1  # block index of address 64
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_insert_refreshes_recency(self):
        cache = two_way(sets=1)
        cache.insert(0)
        cache.insert(64)
        cache.insert(0)  # refresh
        victim = cache.insert(128)
        assert victim.block == 1

    def test_write_hits_set_dirty(self):
        cache = two_way(sets=1)
        cache.insert(0)
        cache.lookup(0, write=True)
        cache.insert(64)
        victim = cache.insert(128)  # evicts 0
        assert victim.block == 0 and victim.dirty

    def test_clean_eviction_not_counted_as_writeback(self):
        cache = direct_mapped(sets=1)
        cache.insert(0, dirty=False)
        cache.insert(64)
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_counted(self):
        cache = direct_mapped(sets=1)
        cache.insert(0, dirty=True)
        cache.insert(64)
        assert cache.stats.writebacks == 1


class TestInvalidate:
    def test_invalidate_drops_line(self):
        cache = two_way()
        cache.insert(0)
        assert cache.invalidate(0)
        assert not cache.contains(0)
        assert not cache.invalidate(0)

    def test_invalidate_range(self):
        cache = SetAssociativeCache(64 * 1024, 8)
        for block in range(64):
            cache.insert(block * 64)
        dropped = cache.invalidate_range(0, 4096)
        assert dropped == 64
        assert cache.occupied_lines == 0

    def test_flush_returns_dirty_lines(self):
        cache = two_way()
        cache.insert(0, dirty=True)
        cache.insert(64, dirty=False)
        dirty = cache.flush()
        assert [e.block for e in dirty] == [0]
        assert cache.occupied_lines == 0

    def test_flush_counts_writebacks(self):
        """Dirty flush victims hit stats.writebacks exactly like dirty
        LRU evictions on the insert path (regression: flush used to
        return victims without counting them)."""
        cache = two_way()
        cache.insert(0, dirty=True)
        cache.insert(64, dirty=True)
        cache.insert(128, dirty=False)
        assert cache.stats.writebacks == 0
        dirty = cache.flush()
        assert len(dirty) == 2
        assert cache.stats.writebacks == 2
        # A second flush of the now-empty cache adds nothing.
        assert cache.flush() == []
        assert cache.stats.writebacks == 2


class TestClasses:
    def test_class_line_counts(self):
        cache = SetAssociativeCache(4096, 4)
        cache.insert(0, DATA)
        cache.insert(64, MERKLE)
        cache.insert(128, MERKLE)
        assert cache.lines_of_class(DATA) == 1
        assert cache.lines_of_class(MERKLE) == 2

    def test_eviction_decrements_class(self):
        cache = direct_mapped(sets=1)
        cache.insert(0, MERKLE)
        cache.insert(64, DATA)
        assert cache.lines_of_class(MERKLE) == 0
        assert cache.lines_of_class(DATA) == 1

    def test_reinsert_changes_class(self):
        cache = two_way()
        cache.insert(0, DATA)
        cache.insert(0, MERKLE)
        assert cache.lines_of_class(DATA) == 0
        assert cache.lines_of_class(MERKLE) == 1

    def test_occupancy_counts_free_lines_as_data(self):
        cache = SetAssociativeCache(4096, 4)  # 64 lines
        cache.insert(0, MERKLE)
        cache.tick_occupancy()
        assert cache.stats.occupancy_fraction(MERKLE) == pytest.approx(1 / 64)
        assert cache.stats.occupancy_fraction(DATA) == pytest.approx(63 / 64)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=31), st.booleans()), max_size=120))
def test_lru_matches_reference_model(operations):
    """Cross-check against a brute-force per-set LRU list model."""
    cache = SetAssociativeCache(4 * 2 * 64, assoc=2)  # 4 sets, 2-way
    model: dict[int, list] = {s: [] for s in range(4)}

    for block, is_insert in operations:
        address = block * 64
        s = block % 4
        if is_insert:
            cache.insert(address)
            if block in model[s]:
                model[s].remove(block)
            model[s].append(block)
            if len(model[s]) > 2:
                model[s].pop(0)
        else:
            expected = block in model[s]
            assert cache.lookup(address) == expected
            if expected:
                model[s].remove(block)
                model[s].append(block)

    for s, blocks in model.items():
        for block in blocks:
            assert cache.contains(block * 64)
