"""Event tracing: sinks, clock rebasing, spans, phase profiling, ambient API."""

import io
import json

import pytest

import repro.obs as obs
from repro.obs.tracer import (
    Event,
    EventTracer,
    JsonlSink,
    ListSink,
    PhaseProfiler,
    RingSink,
    SpanHandle,
    TeeSink,
)


class TestSinks:
    def test_ring_sink_keeps_last_n(self):
        sink = RingSink(capacity=3)
        tracer = EventTracer(sink)
        for i in range(5):
            tracer.emit("e", ts=float(i))
        assert [e.ts for e in tracer.events()] == [2.0, 3.0, 4.0]

    def test_list_sink_unbounded(self):
        tracer = EventTracer(ListSink())
        for i in range(10):
            tracer.emit("e", ts=float(i))
        assert len(tracer.events()) == 10

    def test_jsonl_sink_streams_sorted_keys(self):
        buf = io.StringIO()
        tracer = EventTracer(JsonlSink(buf))
        tracer.emit("l2_miss", ts=3.5, latency=200.0, addr=64)
        line = buf.getvalue().splitlines()[0]
        assert json.loads(line) == {"ts": 3.5, "event": "l2_miss",
                                    "latency": 200.0, "addr": 64}
        # Deterministic byte form: keys sorted.
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_tee_sink_duplicates(self):
        a, b = ListSink(), ListSink()
        tracer = EventTracer(TeeSink([a, b]))
        tracer.emit("x")
        assert len(a.events) == len(b.events) == 1

    def test_jsonl_sink_clear_warns_and_keeps_output(self):
        # Streamed lines cannot be unwritten: clear() must say so loudly
        # and must not pretend the file shrank.
        buf = io.StringIO()
        sink = JsonlSink(buf)
        tracer = EventTracer(sink)
        tracer.emit("e", ts=1.0)
        with pytest.warns(RuntimeWarning, match="cannot be unwritten"):
            tracer.clear()
        assert len(buf.getvalue().splitlines()) == 1
        assert sink.written == 1  # the lifetime counter survives clear()

    def test_retained_sink_clear_is_silent(self):
        import warnings

        tracer = EventTracer(ListSink())
        tracer.emit("e")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracer.clear()
        assert tracer.events() == []


class TestTracerClock:
    def test_explicit_ts_rebased(self):
        tracer = EventTracer(ListSink())
        tracer.rebase(100.0)
        event = tracer.emit("e", ts=160.0)
        assert event.ts == 60.0
        assert tracer.to_trace_time(100.0) == 0.0

    def test_rebase_resets_logical_ticks(self):
        tracer = EventTracer(ListSink())
        tracer.emit("a")
        tracer.emit("b")
        assert tracer.ticks == 2
        tracer.rebase(0.0)
        assert tracer.ticks == 0
        assert tracer.emit("c").ts == 1  # logical clock restarted

    def test_clear(self):
        tracer = EventTracer(ListSink())
        tracer.emit("a")
        tracer.clear()
        assert tracer.events() == []


class TestSpansAndPhases:
    def test_span_records_event_and_phase(self):
        tracer = EventTracer(ListSink())
        profiler = PhaseProfiler()
        with SpanHandle(tracer, profiler, "verify_bmt"):
            tracer.emit("inner1")
            tracer.emit("inner2")
        events = tracer.events()
        span = events[-1]
        assert span.name == "span"
        assert span.fields["span"] == "verify_bmt"
        assert span.fields["dur"] == 2  # two logical ticks elapsed inside
        assert profiler.snapshot() == {"verify_bmt": {"count": 1, "total": 2.0}}

    def test_profiler_accumulates_and_resets(self):
        p = PhaseProfiler()
        p.add("hit", 2.0)
        p.add("hit", 3.0)
        p.add("miss", 10.0)
        snap = p.snapshot()
        assert snap["hit"] == {"count": 2, "total": 5.0}
        assert list(snap) == ["hit", "miss"]  # sorted
        p.reset()
        assert p.snapshot() == {}


class TestAmbientApi:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        obs.emit("ignored", x=1)  # must be a silent no-op
        with obs.span("ignored"):
            pass

    def test_observed_scopes_enablement(self):
        assert not obs.enabled()
        with obs.observed() as session:
            assert obs.enabled()
            assert obs.session() is session
            obs.emit("e", ts=1.0, k="v")
            with obs.span("phase"):
                pass
        assert not obs.enabled()
        names = [e.name for e in session.tracer.events()]
        assert names == ["e", "span"]
        assert "phase" in session.profiler.snapshot()

    def test_observed_restores_previous_session(self):
        with obs.observed() as outer:
            with obs.observed() as inner:
                assert obs.session() is inner
            assert obs.session() is outer
        assert obs.session() is None

    def test_disabled_span_is_shared_null_object(self):
        assert obs.span("a") is obs.span("b") is obs.NULL_SPAN

    def test_event_to_dict(self):
        e = Event(ts=2.0, name="swap_out", fields={"frame": 3})
        assert e.to_dict() == {"ts": 2.0, "event": "swap_out", "frame": 3}
