"""Engine-selection telemetry: which engine ran a cell, and why.

Every ``TimingSimulator.run`` is attributed to exactly one engine —
compiled trace replay, batched per-event loop, or the instrumented
reference loop — with a fallback *reason* whenever the compiled engine
was passed over. The counters are exposed through pull-model gauges
bound in ``repro.obs.adapters`` (the OBS002 discipline), so fleet
snapshots, Prometheus exposition, and progress records all read the
same attribution.
"""

import pytest

import repro.obs as obs
from repro import fastpath
from repro.core import sanitizer
from repro.evalx.runner import config_named
from repro.fastpath import EngineTelemetry
from repro.sim.simulator import TimingSimulator
from repro.workloads.synthetic import resident_trace


@pytest.fixture(autouse=True)
def _sanitizer_disarmed():
    """The attribution tests assert the compiled path *engages*, which an

    armed sanitizer (``REPRO_SANITIZE=1``) would legitimately prevent —
    that fallback has its own test below.
    """
    previous = sanitizer.active()
    sanitizer.disarm()
    yield
    if previous is not None:
        sanitizer.arm(previous)
    else:
        sanitizer.disarm()


def fresh_sim():
    return TimingSimulator(config_named("aise+bmt"))


class TestEngineTelemetryObject:
    def test_record_tracks_engines_and_reasons(self):
        t = EngineTelemetry()
        t.record(fastpath.ENGINE_COMPILED)
        t.record(fastpath.ENGINE_PER_EVENT, "warm_caches")
        t.record(fastpath.ENGINE_REFERENCE, "obs_session")
        assert (t.compiled, t.per_event, t.reference) == (1, 1, 1)
        assert t.runs == 3
        assert t.fallbacks == {"warm_caches": 1, "obs_session": 1}
        assert t.last_engine == fastpath.ENGINE_REFERENCE
        assert t.last_reason == "obs_session"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            EngineTelemetry().record("interpreter")

    def test_lowering_hit_rate(self):
        t = EngineTelemetry()
        assert t.lowering_hit_rate == 0.0
        t.record_lowering(False)
        t.record_lowering(True)
        assert t.lowering_hits == 1
        assert t.lowering_misses == 1
        assert t.lowering_hit_rate == 0.5


class TestRunAttribution:
    def test_cold_run_uses_compiled_no_reason(self):
        sim = fresh_sim()
        sim.run(resident_trace(3000), label="aise+bmt")
        t = sim.engine_telemetry
        assert t.runs == 1
        assert t.last_engine == fastpath.ENGINE_COMPILED
        assert t.last_reason is None
        assert t.fallbacks == {}

    def test_warm_rerun_falls_back_with_warm_caches(self):
        sim = fresh_sim()
        trace = resident_trace(3000)
        sim.run(trace, label="aise+bmt")
        sim.run(trace, label="aise+bmt")
        t = sim.engine_telemetry
        assert t.runs == 2
        assert t.last_engine == fastpath.ENGINE_PER_EVENT
        assert t.last_reason == "warm_caches"
        assert t.fallbacks == {"warm_caches": 1}

    def test_compiled_gate_off_reason(self):
        sim = fresh_sim()
        with fastpath.forced_compiled(False):
            sim.run(resident_trace(3000), label="aise+bmt")
        t = sim.engine_telemetry
        assert t.last_engine == fastpath.ENGINE_PER_EVENT
        assert t.last_reason == "compiled_gate_off"

    def test_fastpath_gate_off_reason(self):
        sim = fresh_sim()
        with fastpath.forced(False):
            sim.run(resident_trace(3000), label="aise+bmt")
        t = sim.engine_telemetry
        assert t.last_engine == fastpath.ENGINE_REFERENCE
        assert t.last_reason == "fastpath_gate_off"

    def test_obs_session_reason(self):
        sim = fresh_sim()
        with obs.observed():
            sim.run(resident_trace(3000), label="aise+bmt", collect_metrics=True)
        t = sim.engine_telemetry
        assert t.last_engine == fastpath.ENGINE_REFERENCE
        assert t.last_reason == "obs_session"

    def test_every_run_attributed_to_exactly_one_engine(self):
        sim = fresh_sim()
        trace = resident_trace(3000)
        with fastpath.forced(False):
            sim.run(trace, label="aise+bmt")
        sim2 = fresh_sim()
        sim2.run(trace, label="aise+bmt")
        with fastpath.forced_compiled(False):
            sim2.run(trace, label="aise+bmt")
        for t, expected in ((sim.engine_telemetry, 1), (sim2.engine_telemetry, 2)):
            assert t.compiled + t.per_event + t.reference == t.runs == expected

    def test_reasons_come_from_the_published_vocabulary(self):
        sim = fresh_sim()
        trace = resident_trace(3000)
        sim.run(trace, label="aise+bmt")
        sim.run(trace, label="aise+bmt")
        with fastpath.forced(False):
            sim.run(trace, label="aise+bmt")
        for reason in sim.engine_telemetry.fallbacks:
            assert reason in fastpath.FALLBACK_REASONS


class TestLoweringMemo:
    def test_fresh_sim_on_lowered_trace_hits_memo(self):
        trace = resident_trace(3000)
        first = fresh_sim()
        first.run(trace, label="aise+bmt")
        assert first.engine_telemetry.lowering_misses == 1
        second = fresh_sim()
        second.run(trace, label="aise+bmt")
        t = second.engine_telemetry
        assert t.lowering_hits == 1
        assert t.lowering_misses == 0
        assert t.lowering_hit_rate == 1.0


class TestRegistryExposure:
    def test_snapshot_carries_engine_metrics(self):
        sim = fresh_sim()
        sim.run(resident_trace(3000), label="aise+bmt")
        snap = sim.registry.snapshot()
        assert snap["engine.runs.compiled"] == 1
        assert snap["engine.runs.per_event"] == 0
        assert snap["engine.runs.reference"] == 0
        assert snap["engine.fallback_reasons"] == {}
        assert snap["engine.lowering_memo.misses"] + snap["engine.lowering_memo.hits"] == 1
        assert 0.0 <= snap["engine.lowering_memo.hit_rate"] <= 1.0

    def test_telemetry_survives_warmup_stats_reset(self):
        # registry.reset() only zeroes push-model metrics; the telemetry
        # gauges are bound to the simulator-owned object, so the engine
        # attribution of the run that *contains* the reset survives it.
        sim = fresh_sim()
        sim.run(resident_trace(3000), label="aise+bmt", warmup=0.5)
        assert sim.engine_telemetry.runs == 1


class TestResultsUnchanged:
    def test_attribution_never_changes_arithmetic(self):
        trace = resident_trace(3000)
        compiled = fresh_sim().run(trace, label="aise+bmt")
        with fastpath.forced_compiled(False):
            per_event = fresh_sim().run(trace, label="aise+bmt")
        with fastpath.forced(False):
            reference = fresh_sim().run(trace, label="aise+bmt")
        assert compiled.to_dict() == per_event.to_dict() == reference.to_dict()
