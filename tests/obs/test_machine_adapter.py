"""register_machine: pull-model gauges over a functional machine,
with engine-specific metrics supplied by the scheme descriptor."""

from __future__ import annotations

from repro.obs.adapters import register_machine
from repro.obs.registry import MetricsRegistry

from ..conftest import make_machine


class TestRegisterMachine:
    def test_binds_access_counts_and_engine_stats(self):
        machine = make_machine("aise", "bonsai")
        registry = MetricsRegistry()
        register_machine(registry, machine)
        machine.write_block(0, b"x" * 64)
        machine.read_block(0)
        snap = registry.snapshot()
        assert snap["machine.reads"] == 1
        assert snap["machine.writes"] == 1
        assert snap["machine.verifications"] >= 1
        # AISE descriptor publishes its engine's pad counter.
        assert snap["machine.pads_generated"] >= 2

    def test_counter_free_scheme_has_no_engine_gauges(self):
        machine = make_machine("none", "none")
        registry = MetricsRegistry()
        register_machine(registry, machine)
        snap = registry.snapshot()
        assert snap["machine.reads"] == 0
        assert "machine.pads_generated" not in snap
        assert "machine.verifications" not in snap

    def test_global64_publishes_its_own_stat_names(self):
        machine = make_machine("global64", "merkle")
        registry = MetricsRegistry()
        register_machine(registry, machine)
        machine.write_block(0, b"y" * 64)
        snap = registry.snapshot()
        assert snap["machine.pads_generated"] >= 1
        assert "machine.memory_reencryptions" in snap
