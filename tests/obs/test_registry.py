"""The metrics registry: counters, gauges, histograms, scopes, snapshots."""

import json

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_reset(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert reg.read("hits") == 5
        reg.reset()
        assert reg.read("hits") == 0

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("")
        with pytest.raises(ValueError):
            reg.counter("has space")


class TestGauge:
    def test_bound_gauge_pulls_live_value(self):
        reg = MetricsRegistry()
        state = {"n": 1}
        reg.bind("depth", lambda: state["n"])
        assert reg.read("depth") == 1
        state["n"] = 7
        assert reg.read("depth") == 7

    def test_bound_gauge_rejects_set(self):
        g = Gauge("x", fn=lambda: 3)
        with pytest.raises(ValueError):
            g.set(9)

    def test_settable_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(12)
        assert reg.read("level") == 12
        reg.reset()
        assert reg.read("level") == 0

    def test_bound_gauge_survives_registry_reset(self):
        reg = MetricsRegistry()
        state = {"n": 3}
        reg.bind("depth", lambda: state["n"])
        reg.reset()
        assert reg.read("depth") == 3  # pull metrics follow their source

    def test_bound_gauge_tracks_replaced_stats_object(self):
        # The adapter idiom: close over the OWNER, not its stats instance.
        class Owner:
            def __init__(self):
                self.stats = {"hits": 1}

        owner = Owner()
        g = Gauge("hits", fn=lambda: owner.stats["hits"])
        assert g.read() == 1
        owner.stats = {"hits": 0}  # reset swaps the stats object wholesale
        assert g.read() == 0


class TestHistogram:
    def test_bucketing_with_overflow(self):
        h = Histogram("lat", edges=(10, 20))
        for v in (5, 10, 15, 25, 1000):
            h.observe(v)
        # bisect_right: <=10 -> bucket 0, <=20 -> bucket 1, rest overflow.
        assert h.counts == [2, 1, 2]
        assert h.count == 5
        assert h.sum == 1055.0

    def test_requires_sorted_nonempty_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=())
        with pytest.raises(ValueError):
            Histogram("h", edges=(5, 2))

    def test_read_and_reset(self):
        h = Histogram("h", edges=(1.0,))
        h.observe(0.5)
        snap = h.read()
        assert snap == {"edges": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}
        h.reset()
        assert h.read()["count"] == 0


class TestRegistry:
    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc(2)
        reg.bind("a.first", lambda: 1.5)
        reg.histogram("m.hist", (10,)).observe(3)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        # Round-trips through JSON losslessly.
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_copies_dict_values(self):
        reg = MetricsRegistry()
        live = {"data": 1}
        reg.bind("by_kind", lambda: live)
        snap = reg.snapshot()
        live["data"] = 99
        assert snap["by_kind"] == {"data": 1}

    def test_scoped_prefixing_nests(self):
        reg = MetricsRegistry()
        scope = reg.scoped("l2").scoped("inner")
        scope.counter("hits")
        assert "l2.inner.hits" in reg
        assert reg.names() == ["l2.inner.hits"]

    def test_contains_and_len(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.counter("a")
        assert "a" in reg and "b" not in reg
        assert len(reg) == 1
