"""The fleet observability pipeline: merge semantics, progress stream,
report invariants, Prometheus exposition, whole-sweep Chrome trace."""

import io
import json

import pytest

from repro.obs import fleet, prom
from repro.obs.chrome import validate_chrome_trace

HIST = {"edges": [50, 100], "counts": [1, 2, 3], "sum": 400.0, "count": 6}


def cell(bench="gcc", label="aise+bmt", source=fleet.SOURCE_POOL,
         engine="compiled", reason=None, **extra):
    record = {"bench": bench, "label": label, "mac_bits": None,
              "source": source, "engine": engine, "fallback_reason": reason,
              "metrics": {}, "phases": {}, "wall_s": 0.5, "cpu_s": 0.4,
              "t_start": 10.0, "t_end": 10.5, "worker": 1}
    record.update(extra)
    return record


class TestMergeSemantics:
    def test_counters_sum(self):
        agg = fleet.merge_snapshots([{"bus.transfers": 10}, {"bus.transfers": 5}])
        assert agg["bus.transfers"] == 15

    def test_rates_average(self):
        agg = fleet.merge_snapshots([{"l2.miss_rate": 0.2}, {"l2.miss_rate": 0.4}])
        assert agg["l2.miss_rate"] == pytest.approx(0.3)

    def test_occupancy_fractions_average(self):
        agg = fleet.merge_snapshots(
            [{"l2.occupancy.data": 0.25}, {"l2.occupancy.data": 0.75}]
        )
        assert agg["l2.occupancy.data"] == pytest.approx(0.5)

    def test_utilization_averages(self):
        assert fleet.merge_rule("bus.utilization", 0.5) == "mean"

    def test_dict_gauges_sum_keywise(self):
        agg = fleet.merge_snapshots(
            [{"bus.transfers_by_kind": {"data": 5, "mac": 2}},
             {"bus.transfers_by_kind": {"data": 1}}]
        )
        assert agg["bus.transfers_by_kind"] == {"data": 6, "mac": 2}

    def test_histograms_merge_elementwise(self):
        other = {"edges": [50, 100], "counts": [0, 1, 0], "sum": 90.0, "count": 1}
        agg = fleet.merge_snapshots(
            [{"sim.miss_latency": HIST}, {"sim.miss_latency": other}]
        )
        merged = agg["sim.miss_latency"]
        assert merged["counts"] == [1, 3, 3]
        assert merged["sum"] == 490.0
        assert merged["count"] == 7

    def test_mismatched_histogram_edges_refused(self):
        other = dict(HIST, edges=[10, 20])
        with pytest.raises(ValueError, match="edges differ"):
            fleet.merge_snapshots(
                [{"sim.miss_latency": HIST}, {"sim.miss_latency": other}]
            )

    def test_non_numeric_values_skipped(self):
        agg = fleet.merge_snapshots([{"sim.label": "aise+bmt", "sim.x": 1}])
        assert "sim.label" not in agg
        assert agg["sim.x"] == 1

    def test_output_is_sorted_and_json_ready(self):
        agg = fleet.merge_snapshots([{"b": 1, "a": {"k": 1}, "c": HIST}])
        assert list(agg) == sorted(agg)
        json.dumps(agg)


class TestProgressStream:
    def emit_sweep(self, sinks):
        s = fleet.ProgressStream(sinks)
        s.emit("sweep_begin", total=2, workers=2, events=1000)
        s.emit("cell_start", bench="gcc", label="base", worker=11)
        s.emit("cell_done", bench="gcc", label="base", done=1, total=2,
               source="pool", engine="compiled", wall_s=0.5,
               cells_per_sec=2.0, eta_s=0.5, cache_hit_ratio=0.0, worker=11)
        s.emit("cell_done", bench="mcf", label="base", done=2, total=2,
               source="cache", engine="cached", wall_s=0.0,
               cells_per_sec=2.0, eta_s=0.0, cache_hit_ratio=0.5, worker=0)
        s.emit("sweep_end", total=2, simulated=1, cached=1, wall_s=1.0)
        s.close()

    def test_records_validate_and_sequence(self):
        mem = fleet.MemoryProgressSink()
        self.emit_sweep([mem])
        assert fleet.validate_progress_records(mem.records) == []
        assert [r["seq"] for r in mem.records] == list(range(5))

    def test_jsonl_sink_streams_sorted_lines(self):
        buf = io.StringIO()
        sink = fleet.JsonlProgressSink(buf)
        self.emit_sweep([sink])
        lines = buf.getvalue().splitlines()
        assert sink.written == len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)
        assert fleet.validate_progress_jsonl(lines) == []

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        sink = fleet.JsonlProgressSink(path)
        self.emit_sweep([sink])
        assert sink.stream.closed
        assert fleet.validate_progress_jsonl(
            path.read_text().splitlines()) == []

    def test_tty_sink_renders_and_terminates(self):
        buf = io.StringIO()
        self.emit_sweep([fleet.TtyProgressSink(buf)])
        text = buf.getvalue()
        assert "[1/2] gcc/base (compiled)" in text
        assert "1 simulated, 1 cached" in text
        assert text.endswith("\n")

    def test_validator_flags_broken_streams(self):
        mem = fleet.MemoryProgressSink()
        self.emit_sweep([mem])
        assert fleet.validate_progress_records([]) == ["empty stream"]
        # wrong sequence numbering
        reseq = [dict(r, seq=r["seq"] + 1) for r in mem.records]
        assert any("seq" in p for p in fleet.validate_progress_records(reseq))
        # missing required field
        broken = [dict(r) for r in mem.records]
        del broken[2]["eta_s"]
        assert any("eta_s" in p for p in fleet.validate_progress_records(broken))
        # does not open with sweep_begin
        assert any("sweep_begin" in p
                   for p in fleet.validate_progress_records(mem.records[1:]))
        # unknown engine on a done cell
        bad = [dict(r) for r in mem.records]
        bad[2]["engine"] = "warp"
        assert any("warp" in p for p in fleet.validate_progress_records(bad))


class TestFleetCollector:
    def collect(self):
        c = fleet.FleetCollector()
        c.begin(total=3, workers=2, events=1000)
        c.add_cell(cell(metrics={"bus.transfers": 10, "l2.miss_rate": 0.2}))
        c.add_cell(cell(bench="mcf", engine="per_event", reason="warm_caches",
                        worker=2, metrics={"bus.transfers": 5, "l2.miss_rate": 0.4}))
        c.add_cell(cell(bench="art", source=fleet.SOURCE_CACHE,
                        engine="cached", metrics={}))
        c.absorb_cache({"hits": 1, "misses": 2})
        c.absorb_cache({"misses": 1, "worker_writes": 2})
        return c.finish(wall_s=2.0)

    def test_report_attribution_and_aggregate(self):
        report = self.collect()
        assert report.total == 3
        assert report.simulated == 2
        assert report.cached == 1
        assert report.engines == {"compiled": 1, "per_event": 1, "cached": 1}
        assert sum(report.engines.values()) == report.total
        assert report.fallback_reasons == {"warm_caches": 1}
        assert report.aggregate["bus.transfers"] == 15
        assert report.aggregate["l2.miss_rate"] == pytest.approx(0.3)
        assert report.cache == {"hits": 1, "misses": 3, "worker_writes": 2}

    def test_worker_utilization(self):
        report = self.collect()
        assert set(report.workers) == {1, 2}
        for stats in report.workers.values():
            assert stats["cells"] == 1
            assert stats["utilization"] == pytest.approx(0.25)

    def test_payload_validates_and_serializes(self):
        payload = self.collect().to_payload()
        assert fleet.validate_fleet_payload(payload) == []
        json.dumps(payload)

    def test_validator_catches_unattributed_cells(self):
        payload = self.collect().to_payload()
        payload["cells"][0]["engine"] = "warp"
        assert fleet.validate_fleet_payload(payload)

    def test_validator_requires_fallback_reasons(self):
        c = fleet.FleetCollector()
        c.begin(1, 1, 1000)
        c.add_cell(cell(engine="per_event", reason=None))
        payload = c.finish(1.0).to_payload()
        assert any("fallback_reason" in p
                   for p in fleet.validate_fleet_payload(payload))


class TestFleetChromeTrace:
    def test_one_lane_per_worker_plus_cache_lane(self):
        report = TestFleetCollector().collect()
        doc = fleet.fleet_chrome_trace(report)
        assert validate_chrome_trace(doc) == []
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "thread_name"}
        assert names == {"worker 1", "worker 2", "cache"}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == {0, 1}
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1

    def test_accepts_payload_dict(self):
        payload = TestFleetCollector().collect().to_payload()
        assert validate_chrome_trace(fleet.fleet_chrome_trace(payload)) == []


class TestExtractSnapshot:
    def test_fleet_report_aggregate(self):
        report = TestFleetCollector().collect()
        assert fleet.extract_snapshot(report.to_payload()) == report.aggregate

    def test_traced_run_payload(self):
        doc = {"result": {"metrics": {"bus.transfers": 1}}}
        assert fleet.extract_snapshot(doc) == {"bus.transfers": 1}

    def test_bare_snapshot(self):
        snap = {"bus.transfers": 1, "l2.miss_rate": 0.5}
        assert fleet.extract_snapshot(snap) == snap

    def test_rejects_snapshotless_documents(self):
        with pytest.raises(ValueError):
            fleet.extract_snapshot({"cells": [1, 2]})


class TestPrometheusExposition:
    SNAP = {"bus.transfers": 15, "l2.miss_rate": 0.3,
            "bus.transfers_by_kind": {"data": 6, "mac": 2},
            "sim.miss_latency": HIST, "sim.label": "skipped"}

    def test_round_trip_validates(self):
        text = prom.prometheus_exposition(self.SNAP)
        assert prom.validate_prometheus_text(text) == []

    def test_name_sanitization_and_prefix(self):
        text = prom.prometheus_exposition(self.SNAP)
        assert "repro_bus_transfers 15" in text
        assert "." not in text.split("# TYPE ")[1].split()[0]

    def test_labeled_dict_samples(self):
        text = prom.prometheus_exposition(self.SNAP, labels={"sweep": "fig6"})
        assert 'repro_bus_transfers_by_kind{kind="data",sweep="fig6"} 6' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = prom.prometheus_exposition(self.SNAP)
        assert 'repro_sim_miss_latency_bucket{le="50"} 1' in text
        assert 'repro_sim_miss_latency_bucket{le="100"} 3' in text
        assert 'repro_sim_miss_latency_bucket{le="+Inf"} 6' in text
        assert "repro_sim_miss_latency_count 6" in text

    def test_non_numeric_skipped(self):
        assert "sim_label" not in prom.prometheus_exposition(self.SNAP)

    def test_validator_flags_bad_expositions(self):
        assert prom.validate_prometheus_text("9bad{ 1\n")
        assert prom.validate_prometheus_text("metric notanumber\n")
        # non-cumulative buckets
        bad = ('m_bucket{le="50"} 5\nm_bucket{le="100"} 3\n'
               'm_bucket{le="+Inf"} 6\n')
        assert any("cumulative" in p
                   for p in prom.validate_prometheus_text(bad))
        # missing +Inf
        assert any("+Inf" in p for p in prom.validate_prometheus_text(
            'm_bucket{le="50"} 1\n'))


class TestValidatorCli:
    def test_valid_artifacts_pass(self, tmp_path, capsys):
        report = tmp_path / "fleet.json"
        report.write_text(json.dumps(TestFleetCollector().collect().to_payload()))
        progress = tmp_path / "progress.jsonl"
        mem = fleet.MemoryProgressSink()
        TestProgressStream().emit_sweep([mem])
        progress.write_text(
            "".join(json.dumps(r) + "\n" for r in mem.records))
        assert fleet.main(["--report", str(report),
                           "--progress", str(progress)]) == 0
        out = capsys.readouterr().out
        assert "valid fleet report" in out
        assert "valid progress stream" in out

    def test_invalid_report_fails(self, tmp_path):
        report = tmp_path / "fleet.json"
        payload = TestFleetCollector().collect().to_payload()
        payload["engines"] = {"compiled": 3}
        report.write_text(json.dumps(payload))
        assert fleet.main(["--report", str(report)]) == 1
