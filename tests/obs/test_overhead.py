"""Disabled-mode overhead guard: hooks must be near-free when obs is off.

Two complementary checks:

* micro-benchmarks of the exact disabled-path operations the hot loops
  execute (``obs.emit`` early return, ``obs.span`` null object, the
  ``hooks is not None`` guard shape) with deliberately generous bounds —
  they catch an accidental "always build the event dict" regression by an
  order of magnitude, not scheduler noise;
* a structural assertion that a disabled-mode simulation run leaves no
  observability residue (no hooks installed, no events recorded), which
  is what actually guarantees result bit-identity.
"""

import time

import repro.obs as obs
from repro.evalx.runner import config_named
from repro.sim.simulator import TimingSimulator
from repro.workloads.synthetic import resident_trace

ROUNDS = 50_000
# Generous per-call ceiling (seconds). The real disabled path is tens of
# nanoseconds; 5 microseconds only trips if someone makes it do real work.
CEILING = 5e-6


def best_of(fn, repeats=5):
    """Best-of-N timing: immune to one-off scheduler hiccups."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledPathMicrobench:
    def test_emit_is_cheap_when_disabled(self):
        assert not obs.enabled()

        def loop():
            for _ in range(ROUNDS):
                obs.emit("l2_miss", ts=1.0, addr=64)

        assert best_of(loop) / ROUNDS < CEILING

    def test_span_is_cheap_when_disabled(self):
        assert not obs.enabled()

        def loop():
            for _ in range(ROUNDS):
                with obs.span("verify_bmt"):
                    pass

        assert best_of(loop) / ROUNDS < CEILING

    def test_none_guard_is_cheap(self):
        # The shape the simulator's inner loop uses: a local None check.
        hooks = None

        def loop():
            for _ in range(ROUNDS):
                if hooks is not None:
                    raise AssertionError

        assert best_of(loop) / ROUNDS < CEILING


class TestDisabledRunLeavesNoResidue:
    def test_no_hooks_no_events_no_metrics(self):
        assert not obs.enabled()
        sim = TimingSimulator(config_named("aise+bmt"))
        result = sim.run(resident_trace(4000), label="aise+bmt")
        assert sim._hooks is None
        assert sim.bus.tracer is None
        assert result.metrics == {}
        # The registry exists (pull-model, zero hot-path cost) but holds
        # no push-model residue a future enabled run could inherit.
        assert sim.registry.read("sim.miss_latency")["count"] == 0


class TestEngineTelemetryOverhead:
    """The engine-selection counters cost O(runs), never O(events)."""

    def test_counters_scale_with_runs_not_events(self):
        import pytest

        from repro.core import sanitizer

        if sanitizer.active() is not None:
            pytest.skip("armed sanitizer skips the lowering-memo probe")
        sim = TimingSimulator(config_named("aise+bmt"))
        sim.run(resident_trace(8000), label="aise+bmt")
        t = sim.engine_telemetry
        # One engine decision, one memo probe — regardless of how many
        # events the trace carried.
        assert t.runs == 1
        assert t.lowering_hits + t.lowering_misses == 1

    def test_record_is_cheap(self):
        from repro.fastpath import ENGINE_PER_EVENT, EngineTelemetry

        t = EngineTelemetry()

        def loop():
            for _ in range(ROUNDS):
                t.record(ENGINE_PER_EVENT, "warm_caches")

        assert best_of(loop) / ROUNDS < CEILING

    def test_disabled_mode_result_carries_no_telemetry(self):
        # The telemetry lives on the simulator and in fleet captures;
        # the SimResult (the byte-identity surface) never sees it.
        sim = TimingSimulator(config_named("aise+bmt"))
        result = sim.run(resident_trace(4000), label="aise+bmt",
                         collect_metrics=True)
        assert not any(name.startswith("engine.") for name in result.metrics)
        assert "engine.runs.compiled" in sim.registry.snapshot()
