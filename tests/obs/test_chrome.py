"""Chrome trace-event export and schema validation."""

from repro.obs.chrome import (
    TID_BUS,
    TID_CORE,
    chrome_trace,
    validate_chrome_trace,
)
from repro.obs.tracer import Event


def _names(doc):
    return [e["name"] for e in doc["traceEvents"]]


class TestChromeTrace:
    def test_metadata_and_shape(self):
        doc = chrome_trace([], label="unit")
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
        assert validate_chrome_trace(doc) == []

    def test_duration_events_get_ph_x(self):
        doc = chrome_trace([Event(ts=5.0, name="bus_grant",
                                  fields={"kind": "data", "dur": 28,
                                          "queued": 0.0})])
        rec = [e for e in doc["traceEvents"] if e["name"] == "bus_grant"][0]
        assert rec["ph"] == "X" and rec["dur"] == 28.0
        assert rec["tid"] == TID_BUS
        assert validate_chrome_trace(doc) == []

    def test_latency_field_doubles_as_duration(self):
        doc = chrome_trace([Event(ts=1.0, name="l2_miss",
                                  fields={"latency": 200.0, "addr": 64})])
        rec = [e for e in doc["traceEvents"] if e["name"] == "l2_miss"][0]
        assert rec["ph"] == "X" and rec["dur"] == 200.0
        assert rec["tid"] == TID_CORE

    def test_span_events_renamed(self):
        doc = chrome_trace([Event(ts=1, name="span",
                                  fields={"span": "verify_bmt", "dur": 2})])
        assert "verify_bmt" in _names(doc)

    def test_instant_events(self):
        doc = chrome_trace([Event(ts=2.0, name="swap_out", fields={"frame": 1})])
        rec = [e for e in doc["traceEvents"] if e["name"] == "swap_out"][0]
        assert rec["ph"] == "i" and rec["s"] == "t"
        assert validate_chrome_trace(doc) == []

    def test_samples_become_counter_tracks(self):
        sample = {
            "ts": 100.0,
            "l2.lines.data": 30, "l2.lines.merkle": 2, "l2.lines.free": 32,
            "sim.demand_misses": 5, "sim.counter_misses": 1,
            "bus.busy_cycles": 140.0,
        }
        doc = chrome_trace([], samples=[sample])
        counters = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "C"}
        assert counters["l2_occupancy"]["args"] == {"data": 30, "merkle": 2,
                                                    "free": 32}
        assert counters["misses"]["args"] == {"l2_misses": 5, "counter_misses": 1}
        assert counters["bus_busy_cycles"]["args"] == {"busy": 140.0}
        assert validate_chrome_trace(doc) == []

    def test_phase_totals_appended_at_end(self):
        doc = chrome_trace([Event(ts=50.0, name="x", fields={})],
                           phases={"l2_hit": {"count": 3, "total": 30.0}})
        rec = [e for e in doc["traceEvents"] if e["name"] == "phase:l2_hit"][0]
        assert rec["ts"] == 50.0  # pinned at the trace's end
        assert rec["args"] == {"count": 3, "total": 30.0}
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Q", "name": "x", "pid": 0, "tid": 0}]}
        assert any("unknown phase" in p for p in validate_chrome_trace(doc))

    def test_rejects_x_without_dur(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1.0}
        ]}
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_rejects_non_numeric_counter_args(self):
        doc = {"traceEvents": [
            {"ph": "C", "name": "c", "pid": 0, "tid": 0, "ts": 0,
             "args": {"v": "high"}}
        ]}
        assert any("numeric" in p for p in validate_chrome_trace(doc))

    def test_rejects_missing_ts(self):
        doc = {"traceEvents": [
            {"ph": "i", "name": "x", "pid": 0, "tid": 0, "s": "t"}
        ]}
        assert any("ts" in p for p in validate_chrome_trace(doc))
