"""The scheme registry: lookup, registration, and config integration."""

from __future__ import annotations

import pytest

from repro.core.config import ENCRYPTION_SCHEMES, INTEGRITY_SCHEMES, MachineConfig
from repro.core.errors import ConfigurationError
from repro.schemes import (
    EncryptionScheme,
    IntegrityScheme,
    encryption_keys,
    encryption_scheme,
    integrity_keys,
    integrity_scheme,
    register_encryption,
    register_integrity,
    registered_schemes,
    scheme_source_files,
    unregister_encryption,
    unregister_integrity,
)


class TestBuiltinRegistration:
    def test_every_config_constant_has_a_descriptor(self):
        assert set(encryption_keys()) == set(ENCRYPTION_SCHEMES)
        assert set(integrity_keys()) == set(INTEGRITY_SCHEMES)

    def test_lookup_returns_the_same_instance(self):
        assert encryption_scheme("aise") is encryption_scheme("aise")
        assert integrity_scheme("bonsai") is integrity_scheme("bonsai")

    def test_descriptor_keys_match_registry_keys(self):
        for key in encryption_keys():
            assert encryption_scheme(key).key == key
        for key in integrity_keys():
            assert integrity_scheme(key).key == key

    def test_unknown_keys_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown encryption scheme"):
            encryption_scheme("rot13")
        with pytest.raises(ConfigurationError, match="unknown integrity scheme"):
            integrity_scheme("pinky_swear")

    def test_config_validation_routes_through_registry(self):
        with pytest.raises(ConfigurationError, match="unknown encryption scheme"):
            MachineConfig(encryption="rot13")
        with pytest.raises(ConfigurationError, match="unknown integrity scheme"):
            MachineConfig(integrity="pinky_swear")

    def test_source_files_cover_the_package(self):
        files = scheme_source_files()
        assert any(path.endswith("schemes/base.py") for path in files)
        assert any(path.endswith("schemes/encryption.py") for path in files)
        assert any(path.endswith("schemes/integrity.py") for path in files)


class _DummyEncryption(EncryptionScheme):
    key = "test_dummy_enc"

    def build_engine(self, machine, seed_audit=None):
        from repro.core.encryption import NullEncryption

        return NullEncryption()


class _DummyIntegrity(IntegrityScheme):
    key = "test_dummy_int"
    verifies = False

    def build_engine(self, machine, geometry):
        from repro.integrity.null import NullIntegrity

        return NullIntegrity()


class TestDynamicRegistration:
    def test_register_unregister_roundtrip(self):
        scheme = _DummyEncryption()
        register_encryption(scheme)
        try:
            assert encryption_scheme("test_dummy_enc") is scheme
            assert scheme in registered_schemes()
            # A config naming the new scheme now validates.
            config = MachineConfig(encryption="test_dummy_enc", integrity="none")
            assert config.encryption == "test_dummy_enc"
        finally:
            unregister_encryption("test_dummy_enc")
        with pytest.raises(ConfigurationError):
            encryption_scheme("test_dummy_enc")

    def test_integrity_register_unregister_roundtrip(self):
        scheme = _DummyIntegrity()
        register_integrity(scheme)
        try:
            assert integrity_scheme("test_dummy_int") is scheme
        finally:
            unregister_integrity("test_dummy_int")
        with pytest.raises(ConfigurationError):
            integrity_scheme("test_dummy_int")

    def test_duplicate_registration_raises_without_replace(self):
        scheme = _DummyEncryption()
        register_encryption(scheme)
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_encryption(_DummyEncryption())
            register_encryption(_DummyEncryption(), replace=True)  # explicit wins
        finally:
            unregister_encryption("test_dummy_enc")

    def test_builtin_duplicate_also_refused(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_encryption(encryption_scheme("aise"))
