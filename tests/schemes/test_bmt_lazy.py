"""The bmt_lazy scheme: one file, every layer of the stack.

``LazyBonsaiMerkleScheme`` is the worked example of the descriptor
hooks: it swaps the tree implementation (``build_tree``), declares a
deferred update policy (``update_policy``), publishes its engine gauges
(``engine_stats``), and extends the model fingerprint
(``tree_modules``) — without the machine, the kernel, the simulator, or
the obs adapters naming it. These tests pin each of those integration
points, plus functional equivalence with the eager ``bonsai`` scheme.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import fastpath, schemes
from repro.core import IntegrityError, MachineConfig, sanitizer
from repro.core.config import INT_BMT_LAZY
from repro.integrity.incremental import IncrementalMerkleTree
from repro.integrity.merkle import MerkleTree
from repro.obs.adapters import register_machine, register_simulator
from repro.obs.registry import MetricsRegistry
from repro.sim.simulator import TimingSimulator
from repro.workloads.synthetic import WorkloadProfile, generate_trace
from tests.conftest import TINY, make_machine

PAGE = 4096


class TestRegistration:
    def test_registered_under_its_config_constant(self):
        assert INT_BMT_LAZY in schemes.integrity_keys()
        scheme = schemes.integrity_scheme(INT_BMT_LAZY)
        assert scheme.uses_tree
        assert scheme.update_policy.deferred
        assert scheme.update_policy.coalesce

    def test_eager_schemes_keep_the_default_policy(self):
        for key in ("bonsai", "merkle"):
            policy = schemes.integrity_scheme(key).update_policy
            assert not policy.deferred

    def test_tree_modules_feed_the_fingerprint(self):
        scheme = schemes.integrity_scheme(INT_BMT_LAZY)
        assert "repro.integrity.incremental" in scheme.tree_modules()
        files = schemes.scheme_source_files()
        assert any(f.endswith("integrity/incremental.py") for f in files)
        assert any(f.endswith("integrity/merkle.py") for f in files)

    def test_build_tree_hook_selects_the_implementation(self):
        lazy = make_machine(integrity="bmt_lazy", data_bytes=TINY)
        eager = make_machine(integrity="bonsai", data_bytes=TINY)
        assert isinstance(lazy.tree, IncrementalMerkleTree)
        assert type(eager.tree) is MerkleTree


class TestFunctionalMachine:
    def test_write_read_roundtrip(self):
        machine = make_machine(integrity="bmt_lazy", data_bytes=TINY)
        machine.write_bytes(0, b"\x5a" * 64)
        assert machine.read_bytes(0, 64) == b"\x5a" * 64

    def test_matches_eager_bonsai_data_results(self):
        lazy = make_machine(integrity="bmt_lazy", data_bytes=TINY)
        eager = make_machine(integrity="bonsai", data_bytes=TINY)
        for i in range(32):
            addr = (i * 3 % 16) * 256
            data = bytes([i + 1]) * 64
            lazy.write_bytes(addr, data)
            eager.write_bytes(addr, data)
        for i in range(16):
            addr = i * 256
            assert lazy.read_bytes(addr, 64) == eager.read_bytes(addr, 64)

    def test_counter_block_tamper_detected(self):
        machine = make_machine(integrity="bmt_lazy", data_bytes=TINY)
        machine.write_bytes(0, b"\x11" * 64)
        machine.tree.flush_pending()
        cb = machine.encryption.counter_block_address(0)
        machine.memory.corrupt(cb)
        machine.encryption.drop_cached_counters(0)
        machine.tree.clear_volatile()
        with pytest.raises(IntegrityError):
            machine.read_bytes(0, 64)

    def test_hibernate_resume_roundtrip(self):
        machine = make_machine(integrity="bmt_lazy", data_bytes=TINY)
        machine.write_bytes(256, b"\x42" * 64)
        nonvolatile, image = machine.hibernate()
        resumed = type(machine).resume(nonvolatile, image, machine.config)
        assert resumed.read_bytes(256, 64) == b"\x42" * 64

    def test_powered_down_tamper_detected_after_resume(self):
        machine = make_machine(integrity="bmt_lazy", data_bytes=TINY)
        machine.write_bytes(0, b"\x33" * 64)
        nonvolatile, image = machine.hibernate()
        cb = machine.encryption.counter_block_address(0)
        image = dict(image)
        image[cb] = bytes(reversed(image[cb]))
        resumed = type(machine).resume(nonvolatile, image, machine.config)
        with pytest.raises(IntegrityError):
            resumed.read_bytes(0, 64)


class TestKernelSwap:
    def test_swap_roundtrip_under_memory_pressure(self, kernel_factory):
        """Heavy replacement traffic: counter-run installs on swap-in
        must flush the pending paths for the page (the machine's
        ``counter_run_range`` + ``flush_pending`` hook)."""
        k = kernel_factory(integrity="bmt_lazy", frames=16, swap_slots=64)
        p = k.create_process()
        pages = 48  # 3x physical frames
        k.mmap(p.pid, 0, pages * PAGE)
        for page in range(pages):
            k.write(p.pid, page * PAGE, bytes([page + 1]) * 64)
        for page in range(pages):
            assert k.read(p.pid, page * PAGE, 64) == bytes([page + 1]) * 64
        assert k.stats.swap_ins > 0  # pressure was real

    def test_swap_matches_eager_bonsai(self, kernel_factory):
        results = {}
        for integ in ("bonsai", "bmt_lazy"):
            k = kernel_factory(integrity=integ, frames=16, swap_slots=64)
            p = k.create_process()
            k.mmap(p.pid, 0, 40 * PAGE)
            for page in range(40):
                k.write(p.pid, page * PAGE, bytes([page + 7]) * 64)
            results[integ] = [k.read(p.pid, page * PAGE, 64) for page in range(40)]
        assert results["bonsai"] == results["bmt_lazy"]


class TestTimingSimulator:
    _PROFILE = WorkloadProfile("lazy-sweep", hot_bytes=256 * 1024,
                               cold_bytes=24 * 1024 * 1024, hot_fraction=0.3,
                               chunk_blocks=2, write_fraction=0.5, mean_gap=5)

    @pytest.fixture(autouse=True)
    def _sanitizer_disarmed(self):
        # The engine-selection assertions here need the compiled path
        # *available*; an armed sanitizer (REPRO_SANITIZE=1) legitimately
        # pre-empts it with its own fallback reason.
        previous = sanitizer.active()
        sanitizer.disarm()
        yield
        if previous is not None:
            sanitizer.arm(previous)
        else:
            sanitizer.disarm()

    def _trace(self):
        return generate_trace(self._PROFILE, 6000, 5)

    def test_three_engines_are_byte_identical_with_deferral_traffic(self):
        trace = self._trace()
        config = MachineConfig(encryption="aise", integrity="bmt_lazy")
        runs = {}
        sims = {}
        for mode in ("reference", "per_event", "compiled"):
            sim = TimingSimulator(config)
            if mode == "reference":
                with fastpath.forced(False):
                    result = sim.run(trace, warmup=0.3, collect_metrics=True)
            elif mode == "per_event":
                with fastpath.forced(True), fastpath.forced_compiled(False):
                    result = sim.run(trace, warmup=0.3, collect_metrics=True)
            else:
                with fastpath.forced(True), fastpath.forced_compiled(True):
                    result = sim.run(trace, warmup=0.3, collect_metrics=True)
            runs[mode] = dataclasses.asdict(result)
            sims[mode] = sim
        assert runs["per_event"] == runs["reference"]
        assert runs["compiled"] == runs["reference"]
        # The deferral actually happened (this workload thrashes the
        # counter cache) and the queue fully drained at end of run.
        assert sims["reference"].tree_deferred > 0
        assert not sims["reference"]._pending_walks

    def test_compiled_engine_bows_out_with_the_declared_reason(self):
        trace = self._trace()
        sim = TimingSimulator(MachineConfig(encryption="aise", integrity="bmt_lazy"))
        with fastpath.forced(True), fastpath.forced_compiled(True):
            sim.run(trace, warmup=0.3)
        assert sim.engine_telemetry.last_engine == fastpath.ENGINE_PER_EVENT
        assert sim.engine_telemetry.last_reason == "deferred_updates"
        assert "deferred_updates" in fastpath.FALLBACK_REASONS

    def test_eager_schemes_still_compile(self):
        trace = self._trace()
        sim = TimingSimulator(MachineConfig(encryption="aise", integrity="bonsai"))
        with fastpath.forced(True), fastpath.forced_compiled(True):
            sim.run(trace, warmup=0.3)
        assert sim.engine_telemetry.last_engine == fastpath.ENGINE_COMPILED


class TestObservability:
    def test_simulator_gauges_only_appear_for_deferred_schemes(self):
        lazy = TimingSimulator(MachineConfig(encryption="aise", integrity="bmt_lazy"))
        eager = TimingSimulator(MachineConfig(encryption="aise", integrity="bonsai"))
        lazy_snap = register_simulator(MetricsRegistry(), lazy).snapshot()
        eager_snap = register_simulator(MetricsRegistry(), eager).snapshot()
        for name in ("sim.tree_deferred_walks", "sim.tree_drains",
                     "sim.tree_coalesced_walks", "sim.tree_pending_walks"):
            assert name in lazy_snap
            assert name not in eager_snap  # snapshot shape stays stable

    def test_machine_gauges_track_the_live_tree(self):
        machine = make_machine(integrity="bmt_lazy", data_bytes=TINY)
        registry = MetricsRegistry()
        register_machine(registry, machine)
        machine.write_bytes(0, b"\x01" * 64)
        snap = registry.snapshot()
        assert snap["machine.tree_pending_updates"] >= 1
        machine.tree.flush_pending()
        snap = registry.snapshot()
        assert snap["machine.tree_pending_updates"] == 0
        assert 0 < snap["machine.tree_materialized_fraction"] <= 1
        assert snap["machine.tree_drained_nodes"] > 0

    def test_eager_machines_publish_no_tree_gauges(self):
        machine = make_machine(integrity="bonsai", data_bytes=TINY)
        registry = MetricsRegistry()
        register_machine(registry, machine)
        assert "machine.tree_pending_updates" not in registry.snapshot()


class TestStorage:
    def test_overhead_breakdown_matches_bonsai(self):
        """bmt_lazy changes *when* nodes are written, not the layout: the
        Table 2 storage breakdown is identical to eager bonsai."""
        from repro.core.storage import breakdown_for_config

        eager = breakdown_for_config(MachineConfig(encryption="aise", integrity="bonsai"))
        lazy = breakdown_for_config(MachineConfig(encryption="aise", integrity="bmt_lazy"))
        assert lazy == eager
