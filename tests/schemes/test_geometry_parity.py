"""Functional/timing counter-geometry parity, per registered scheme.

The functional engines and the timing simulator both derive "which
counter block covers this data address" — now from the same descriptor.
These tests pin the two sides to each other (and to the descriptor's
arithmetic) for every counter-mode scheme, so a future scheme whose two
halves disagree fails here rather than in a silently wrong figure.
"""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import IMAGE_HEADER, SecureMemorySystem, plan_layout
from repro.mem.layout import BLOCK_SIZE, BLOCKS_PER_PAGE, PAGE_SIZE
from repro.schemes import encryption_keys, encryption_scheme, integrity_keys, integrity_scheme
from repro.sim.simulator import TimingSimulator

DATA_BYTES = 1 << 20  # 1MB: 256 pages, small enough for functional engines

COUNTER_SCHEMES = [k for k in encryption_keys() if encryption_scheme(k).uses_counters]


def _config(enc: str) -> MachineConfig:
    # Integrity choice must tolerate every encryption scheme: bonsai
    # requires counters, which all schemes under test have.
    return MachineConfig(encryption=enc, integrity="bonsai", physical_bytes=DATA_BYTES)


@pytest.mark.parametrize("enc", COUNTER_SCHEMES)
class TestCounterGeometryParity:
    def test_layout_counter_region_matches_descriptor(self, enc):
        scheme = encryption_scheme(enc)
        layout, _ = plan_layout(_config(enc))
        assert layout.counter_bytes == scheme.counter_region_bytes(DATA_BYTES)

    def test_simulator_span_matches_descriptor(self, enc):
        scheme = encryption_scheme(enc)
        sim = TimingSimulator(_config(enc))
        assert sim.uses_counter_cache
        assert sim._cb_span == scheme.counter_block_span

    def test_functional_and_timing_agree_on_counter_block_addresses(self, enc):
        machine = SecureMemorySystem(_config(enc))
        sim = TimingSimulator(_config(enc))
        sample = [
            0,
            BLOCK_SIZE,
            PAGE_SIZE - BLOCK_SIZE,
            PAGE_SIZE,
            17 * PAGE_SIZE + 5 * BLOCK_SIZE,
            DATA_BYTES - BLOCK_SIZE,
        ]
        for addr in sample:
            assert machine.encryption.counter_block_address(addr) == sim._counter_block_addr(addr), (
                f"{enc}: functional and timing models disagree at {addr:#x}"
            )

    def test_page_counter_run_is_block_aligned_and_covers_the_page(self, enc):
        scheme = encryption_scheme(enc)
        run_bytes = scheme.counter_blocks_per_page * BLOCK_SIZE
        # The run must hold every per-block counter of one page...
        span = scheme.counter_block_span
        pages_per_cb = max(1, span // PAGE_SIZE)
        cbs_per_page = max(1, PAGE_SIZE // span)
        assert scheme.counter_blocks_per_page == cbs_per_page
        assert pages_per_cb * cbs_per_page >= 1
        # ...and the swap image reserves exactly that much.
        machine = SecureMemorySystem(_config(enc))
        assert machine.image_bytes == IMAGE_HEADER + PAGE_SIZE + run_bytes
        assert machine.image_blocks * BLOCK_SIZE >= machine.image_bytes


class TestTimingFlagsParity:
    @pytest.mark.parametrize("integ", integrity_keys())
    def test_simulator_integrity_flags_match_descriptor(self, integ):
        scheme = integrity_scheme(integ)
        enc = "aise" if scheme.requires_counters else "none"
        sim = TimingSimulator(
            MachineConfig(encryption=enc, integrity=integ, physical_bytes=DATA_BYTES)
        )
        assert sim._walks_tree == scheme.uses_tree
        assert sim._tree_covers_data == scheme.tree_covers_data
        assert sim._uses_data_macs == scheme.uses_data_macs

    def test_counter_free_schemes_bypass_the_counter_cache(self):
        for enc in encryption_keys():
            scheme = encryption_scheme(enc)
            if scheme.uses_counters:
                continue
            sim = TimingSimulator(
                MachineConfig(encryption=enc, integrity="none", physical_bytes=DATA_BYTES)
            )
            assert not sim.uses_counter_cache
