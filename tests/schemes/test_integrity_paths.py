"""End-to-end coverage of the loghash and page-root integrity paths.

``integrity/loghash.py`` and ``integrity/pageroot.py`` have unit tests
of their own; these tests exercise them the way the stack actually does
— through the scheme descriptors, the machine layout, and the kernel's
swap path — mirroring the geometry-parity structure used for the
counter schemes.
"""

from __future__ import annotations

import pytest

from repro.core import IntegrityError, MachineConfig
from repro.core.machine import plan_layout
from repro.mem.layout import PAGE_SIZE
from repro.schemes import integrity_keys, integrity_scheme
from tests.conftest import TINY, make_machine

TREE_SCHEMES = [k for k in integrity_keys() if integrity_scheme(k).uses_tree]


def _config(integ: str, data_bytes: int = TINY, **overrides) -> MachineConfig:
    enc = "aise" if integrity_scheme(integ).requires_counters else "none"
    return MachineConfig(encryption=enc, integrity=integ,
                         physical_bytes=data_bytes, **overrides)


class TestPageRootGeometryParity:
    """The PRD region: carved by the layout iff the scheme has a tree."""

    @pytest.mark.parametrize("integ", TREE_SCHEMES)
    def test_tree_schemes_carve_a_prd_sized_for_the_swap_space(self, integ):
        config = _config(integ, swap_bytes=64 * PAGE_SIZE)
        layout, _ = plan_layout(config)
        assert layout.prd_bytes > 0
        machine = make_machine(encryption=config.encryption, integrity=integ,
                               data_bytes=TINY, swap_bytes=64 * PAGE_SIZE)
        assert machine.page_roots is not None
        assert machine.page_roots.region_bytes <= layout.prd_bytes
        assert layout.region_of(layout.prd_base) == "page_root"

    @pytest.mark.parametrize("integ", ["none", "mac_only", "loghash"])
    def test_treeless_schemes_carve_no_prd(self, integ):
        layout, _ = plan_layout(_config(integ))
        assert layout.prd_bytes == 0
        machine = make_machine(encryption=_config(integ).encryption,
                               integrity=integ, data_bytes=TINY)
        assert machine.page_roots is None

    @pytest.mark.parametrize("integ", TREE_SCHEMES)
    def test_prd_blocks_are_tree_covered(self, integ):
        """The directory's own blocks verify through the tree: its reads
        and writes flow through the machine's verified-metadata hooks."""
        machine = make_machine(encryption=_config(integ).encryption,
                               integrity=integ, data_bytes=TINY,
                               swap_bytes=64 * PAGE_SIZE)
        assert machine.tree is not None
        assert machine.tree.geometry.covers(machine.layout.prd_base)


class TestPageRootSwapPath:
    def _pressured_kernel(self, kernel_factory, integ: str):
        k = kernel_factory(integrity=integ, frames=16, swap_slots=64)
        p = k.create_process()
        pages = 40
        k.mmap(p.pid, 0, pages * PAGE_SIZE)
        for page in range(pages):
            k.write(p.pid, page * PAGE_SIZE, bytes([page + 1]) * 64)
        return k, p, pages

    @pytest.mark.parametrize("integ", ["bonsai", "bmt_lazy"])
    def test_swap_roundtrip_installs_and_verifies_roots(self, kernel_factory, integ):
        k, p, pages = self._pressured_kernel(kernel_factory, integ)
        assert k.stats.swap_outs > 0
        assert k.machine.page_roots.installs == k.stats.swap_outs
        for page in range(pages):
            assert k.read(p.pid, page * PAGE_SIZE, 64) == bytes([page + 1]) * 64
        assert k.machine.page_roots.lookups >= k.stats.swap_ins

    @pytest.mark.parametrize("integ", ["bonsai", "bmt_lazy"])
    def test_tampered_swap_image_detected_at_fault_in(self, kernel_factory, integ):
        k, p, pages = self._pressured_kernel(kernel_factory, integ)
        victim = next(
            (vpage, pte) for vpage, pte in
            ((e.vpage, e) for e in k.processes[p.pid].page_table.entries())
            if pte.swap_slot is not None
        )
        vpage, pte = victim
        k.swap.storage.corrupt(pte.swap_slot * k.swap.slot_bytes)
        with pytest.raises(IntegrityError) as err:
            k.read(p.pid, vpage * PAGE_SIZE, 64)
        assert err.value.kind == "swap"


class TestLogHashPath:
    """The loghash baseline through the machine: deferred detection."""

    def test_machine_roundtrip_and_epoch_check(self):
        machine = make_machine(encryption="aise", integrity="loghash",
                               data_bytes=TINY)
        machine.write_bytes(0, b"\x5c" * 64)
        assert machine.read_bytes(0, 64) == b"\x5c" * 64
        machine.integrity.check()  # clean epoch passes

    def test_tamper_is_invisible_at_use_caught_at_check(self):
        machine = make_machine(encryption="aise", integrity="loghash",
                               data_bytes=TINY)
        machine.write_bytes(0, b"\x01" * 64)
        machine.memory.corrupt(0)
        machine.read_bytes(0, 64)  # the scheme's weakness: no raise here
        with pytest.raises(IntegrityError):
            machine.integrity.check()

    def test_swap_roundtrip_without_page_roots(self, kernel_factory):
        """Loghash has no PRD; the swap path must still round-trip."""
        k = kernel_factory(integrity="loghash", frames=16, swap_slots=64)
        assert k.machine.page_roots is None
        p = k.create_process()
        pages = 40
        k.mmap(p.pid, 0, pages * PAGE_SIZE)
        for page in range(pages):
            k.write(p.pid, page * PAGE_SIZE, bytes([page + 3]) * 64)
        assert k.stats.swap_outs > 0
        for page in range(pages):
            assert k.read(p.pid, page * PAGE_SIZE, 64) == bytes([page + 3]) * 64
