"""The kernel's software disk cipher (the phys-addr scheme's swap path)."""

import pytest

from repro.osmodel.kernel import DiskCipher


class TestDiskCipher:
    def test_roundtrip(self):
        cipher = DiskCipher(b"disk-key" * 4)
        generation = cipher.next_generation()
        data = bytes(range(64))
        encrypted = cipher.apply(data, generation, block=3)
        assert encrypted != data
        assert cipher.apply(encrypted, generation, block=3) == data

    def test_generations_are_unique_pads(self):
        """Temporal uniqueness on disk: re-swapping the same page uses a
        fresh generation, so equal plaintexts produce different images."""
        cipher = DiskCipher(b"disk-key" * 4)
        g1 = cipher.next_generation()
        g2 = cipher.next_generation()
        assert g1 != g2
        data = b"\x00" * 64
        assert cipher.apply(data, g1, 0) != cipher.apply(data, g2, 0)

    def test_blocks_use_distinct_pads(self):
        cipher = DiskCipher(b"disk-key" * 4)
        g = cipher.next_generation()
        data = b"\x00" * 64
        assert cipher.apply(data, g, 0) != cipher.apply(data, g, 1)

    def test_key_matters(self):
        a = DiskCipher(b"a" * 32)
        b = DiskCipher(b"b" * 32)
        assert a.apply(bytes(64), 1, 0) != b.apply(bytes(64), 1, 0)


class TestSimResult:
    def test_overhead_math(self):
        from repro.sim.results import SimResult

        base = SimResult(name="t", config_label="base", cycles=1000, instructions=3000)
        slow = SimResult(name="t", config_label="x", cycles=1200, instructions=3000)
        assert slow.overhead_vs(base) == pytest.approx(0.2)
        assert base.overhead_vs(base) == 0.0
        assert base.ipc == pytest.approx(3.0)

    def test_degenerate_rates(self):
        from repro.sim.results import SimResult

        empty = SimResult(name="t", config_label="x", cycles=0, instructions=0)
        assert empty.l2_miss_rate == 0.0
        assert empty.counter_miss_rate == 0.0
        assert empty.ipc == 0.0
        assert empty.overhead_vs(empty) == 0.0


class TestRunnerHelpers:
    def test_config_named_mac_override(self):
        from repro.evalx.runner import CONFIGS, config_named

        base = config_named("aise+mt")
        assert base is CONFIGS["aise+mt"]
        wide = config_named("aise+mt", mac_bits=256)
        assert wide.mac_bits == 256
        assert wide.integrity == "merkle"
        # Same-as-default override returns the registered object.
        same = config_named("aise+mt", mac_bits=128)
        assert same is base

    def test_runner_average_helper(self):
        from repro.evalx.runner import Runner

        runner = Runner(events=2000, benchmarks=("gzip", "crafty"))
        avg = runner.average(lambda bench: runner.result(bench, "base").l2_miss_rate)
        individual = [runner.result(b, "base").l2_miss_rate for b in ("gzip", "crafty")]
        assert avg == pytest.approx(sum(individual) / 2)

    def test_runner_trace_cached(self):
        from repro.evalx.runner import Runner

        runner = Runner(events=1000, benchmarks=("gzip",))
        assert runner.trace("gzip") is runner.trace("gzip")
