"""munmap semantics and the PID-reuse hazard of virtual-address seeds."""

import pytest

from repro.core import AccessContext, MachineConfig, SecureMemorySystem
from repro.core.errors import PageFaultError, SeedReuseError
from repro.core.seeds import SeedAudit, VirtualAddressSeedScheme
from repro.mem.layout import PAGE_SIZE
from repro.osmodel import Kernel


class TestMunmap:
    def test_releases_frames(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 2)
        tiny_kernel.write(p.pid, 0x10000, b"x" * PAGE_SIZE * 2)
        used = tiny_kernel.frames.used_frames
        tiny_kernel.munmap(p.pid, 0x10000, 2)
        assert tiny_kernel.frames.used_frames == used - 2

    def test_access_after_munmap_faults(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 1)
        tiny_kernel.write(p.pid, 0x10000, b"y")
        tiny_kernel.munmap(p.pid, 0x10000, 1)
        with pytest.raises(PageFaultError):
            tiny_kernel.read(p.pid, 0x10000, 1)

    def test_remap_after_munmap_is_zeroed(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 1)
        tiny_kernel.write(p.pid, 0x10000, b"old secret")
        tiny_kernel.munmap(p.pid, 0x10000, 1)
        tiny_kernel.mmap(p.pid, 0x10000, 1)
        assert tiny_kernel.read(p.pid, 0x10000, 10) == bytes(10)

    def test_partial_unmap_rejected_atomically(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 1)
        with pytest.raises(PageFaultError):
            tiny_kernel.munmap(p.pid, 0x10000, 2)  # second page unmapped
        tiny_kernel.write(p.pid, 0x10000, b"still mapped")  # nothing was dropped

    def test_unaligned_rejected(self, tiny_kernel):
        p = tiny_kernel.create_process()
        with pytest.raises(ValueError):
            tiny_kernel.munmap(p.pid, 0x10001, 1)

    def test_shared_detach_keeps_segment(self, tiny_kernel):
        tiny_kernel.shm_create("seg", 1)
        a = tiny_kernel.create_process()
        b = tiny_kernel.create_process()
        tiny_kernel.mmap(a.pid, 0x80000, 1, shared_name="seg")
        tiny_kernel.mmap(b.pid, 0x90000, 1, shared_name="seg")
        tiny_kernel.write(a.pid, 0x80000, b"persists")
        tiny_kernel.munmap(a.pid, 0x80000, 1)
        assert tiny_kernel.read(b.pid, 0x90000, 8) == b"persists"

    def test_swapped_page_unmap_frees_slot(self, tiny_kernel):
        victim = tiny_kernel.create_process()
        tiny_kernel.mmap(victim.pid, 0x10000, 1)
        tiny_kernel.write(victim.pid, 0x10000, b"z")
        hog = tiny_kernel.create_process()
        tiny_kernel.mmap(hog.pid, 0x900000, 20)
        for i in range(20):
            tiny_kernel.write(hog.pid, 0x900000 + i * PAGE_SIZE, b"\xaa")
        pte = victim.page_table.lookup(0x10000)
        assert not pte.present
        free_before = tiny_kernel.swap.free_slots
        tiny_kernel.munmap(victim.pid, 0x10000, 1)
        assert tiny_kernel.swap.free_slots == free_before + 1


class TestPidReuseHazard:
    """Table 1: the virtual-address scheme makes PIDs non-reusable —
    recycling a PID recreates (pid | vaddr | counter) seeds."""

    def _kernel_with_audit(self):
        audit = SeedAudit(VirtualAddressSeedScheme(include_pid=True))
        machine = SecureMemorySystem(
            MachineConfig(physical_bytes=16 * PAGE_SIZE, swap_bytes=32 * PAGE_SIZE,
                          encryption="virt_addr", integrity="none"),
            seed_audit=audit,
        )
        return Kernel(machine, swap_slots=32, reuse_pids=True), audit

    def test_reused_pid_reuses_pads(self):
        kernel, audit = self._kernel_with_audit()
        first = kernel.create_process()
        kernel.mmap(first.pid, 0x10000, 1)
        kernel.write(first.pid, 0x10000, b"\x01" * 64)
        kernel.exit_process(first.pid)
        second = kernel.create_process()
        assert second.pid == first.pid  # recycled
        kernel.mmap(second.pid, 0x10000, 1)
        with pytest.raises(SeedReuseError):
            # Fresh frame, fresh counter = 1, same (pid, vaddr): pad reuse.
            kernel.write(second.pid, 0x10000, b"\x02" * 64)

    def test_disabling_pid_reuse_avoids_it_but_burns_the_namespace(self):
        kernel, audit = self._kernel_with_audit()
        kernel.reuse_pids = False
        first = kernel.create_process()
        kernel.mmap(first.pid, 0x10000, 1)
        kernel.write(first.pid, 0x10000, b"\x01" * 64)
        kernel.exit_process(first.pid)
        second = kernel.create_process()
        assert second.pid != first.pid
        kernel.mmap(second.pid, 0x10000, 1)
        kernel.write(second.pid, 0x10000, b"\x02" * 64)  # no reuse...
        assert audit.reuses == 0  # ...at the price of unbounded PIDs

    def test_aise_is_immune_to_pid_recycling(self, kernel_factory):
        kernel = kernel_factory(encryption="aise", integrity="bonsai")
        first = kernel.create_process()
        kernel.mmap(first.pid, 0x10000, 1)
        kernel.write(first.pid, 0x10000, b"\x01" * 64)
        kernel.exit_process(first.pid)
        second = kernel.create_process()
        assert second.pid == first.pid
        kernel.mmap(second.pid, 0x10000, 1)
        kernel.write(second.pid, 0x10000, b"\x02" * 64)
        assert kernel.read(second.pid, 0x10000, 64) == b"\x02" * 64
